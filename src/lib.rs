//! # secure-bp
//!
//! Umbrella crate for the reproduction of *"A Lightweight Isolation
//! Mechanism for Secure Branch Predictors"* (Zhao et al., DAC 2021).
//!
//! Re-exports the workspace crates under stable module names. See the
//! repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

pub use sbp_attack as attack;
pub use sbp_campaign as campaign;
pub use sbp_core as isolation;
pub use sbp_hwcost as hwcost;
pub use sbp_predictors as predictors;
pub use sbp_sim as sim;
pub use sbp_sweep as sweep;
pub use sbp_telemetry as telemetry;
pub use sbp_trace as trace;
pub use sbp_types as types;
