//! Pins the warm-state checkpoint machinery at the simulator level:
//! snapshotting a simulator after warm-up (`try_clone`) and continuing
//! from the snapshot must be **bit-identical** to never having paused —
//! for every predictor × mechanism combination the sweep grids use, on
//! both the single-core and SMT frontends. The interval-retarget path
//! (one warm state serving the whole interval axis) is pinned the same
//! way: a checkpoint taken under one interval and retargeted to another
//! must match a fresh warm-up run entirely under the second interval.
//!
//! These are the invariants that let the sweep engine's checkpoint cache
//! skip re-simulating warm-up without changing a single stored byte.
//! Budgets are pinned small and explicit (never via `SBP_SCALE`, which is
//! process-cached).

use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{CoreConfig, SamplingPlan, SingleCoreSim, SmtSim, SwitchInterval};

/// Every mechanism family the paper grids exercise.
fn mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::PreciseFlush,
        Mechanism::xor_btb(),
        Mechanism::enhanced_xor_pht(),
        Mechanism::noisy_xor_bp(),
    ]
}

const WARM: u64 = 30_000;
const MEASURE: u64 = 40_000;

#[test]
fn single_core_checkpoint_restore_is_bit_identical_per_predictor_and_mechanism() {
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SingleCoreSim::new(
                    CoreConfig::fpga(),
                    predictor,
                    mechanism,
                    SwitchInterval::M8,
                    &["gcc", "calculix"],
                    0xc0de,
                )
                .expect("valid sim")
            };
            // Uninterrupted reference run.
            let mut uninterrupted = fresh();
            let expected = uninterrupted.run_target(WARM, MEASURE);
            // Warm, checkpoint, continue from the restored snapshot.
            let mut warm = fresh();
            warm.warm(WARM);
            let mut restored = warm
                .try_clone()
                .expect("built-in predictors are snapshotable");
            drop(warm);
            let got = restored.run_measure(MEASURE);
            assert_eq!(
                got, expected,
                "{predictor:?}/{mechanism:?}: restored checkpoint diverged"
            );
        }
    }
}

#[test]
fn smt_checkpoint_restore_is_bit_identical_per_predictor_and_mechanism() {
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SmtSim::new(
                    CoreConfig::gem5(),
                    predictor,
                    mechanism,
                    SwitchInterval::M8,
                    &["zeusmp", "lbm"],
                    0xbeef,
                )
                .expect("valid sim")
            };
            let mut uninterrupted = fresh();
            let expected = uninterrupted.run(WARM, MEASURE);
            let mut warm = fresh();
            warm.warm(WARM);
            let mut restored = warm.try_clone().expect("snapshotable");
            drop(warm);
            let got = restored.run_measure(MEASURE);
            assert_eq!(
                got.per_thread, expected.per_thread,
                "{predictor:?}/{mechanism:?}: restored SMT checkpoint diverged"
            );
            assert_eq!(
                got.cycles.to_bits(),
                expected.cycles.to_bits(),
                "{predictor:?}/{mechanism:?}: SMT wall clock diverged"
            );
        }
    }
}

#[test]
fn retargeted_checkpoints_match_fresh_warmups_on_the_new_interval() {
    for mechanism in [Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()] {
        // Warm under M12, retarget the snapshot to M4: identical to a
        // sim that ran under M4 from the start (warm-up fires no timer
        // switch at these budgets, so the warm state is interval-free).
        let build = |interval| {
            SingleCoreSim::new(
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                mechanism,
                interval,
                &["gcc", "calculix"],
                7,
            )
            .expect("valid sim")
        };
        let mut warm = build(SwitchInterval::M12);
        warm.warm(WARM);
        assert_eq!(warm.context_switches(), 0, "warm-up must not switch");
        let mut retargeted = warm.try_clone().expect("snapshotable");
        assert!(retargeted.retarget_interval(SwitchInterval::M4));
        let got = retargeted.run_measure(MEASURE);
        let mut reference = build(SwitchInterval::M4);
        let expected = reference.run_target(WARM, MEASURE);
        assert_eq!(got, expected, "{mechanism:?}: retargeted run diverged");
    }
}

#[test]
fn sampled_measurements_are_deterministic_from_restored_checkpoints() {
    // The window-measurement cache stores one SampledMeasurement per warm
    // state; re-measuring from a second restore of the same checkpoint
    // must reproduce it exactly (this is what makes cache eviction safe).
    let plan = SamplingPlan::quick();
    let mut warm = SingleCoreSim::new(
        CoreConfig::fpga(),
        PredictorKind::TageScL,
        Mechanism::CompleteFlush,
        SwitchInterval::M8,
        &["gcc", "calculix"],
        11,
    )
    .expect("valid sim");
    warm.warm(WARM);
    let mut a = warm.try_clone().expect("snapshotable");
    let mut b = warm.try_clone().expect("snapshotable");
    let ma = a.run_sampled(&plan);
    let mb = b.run_sampled(&plan);
    assert_eq!(ma, mb, "sampled windows diverged across restores");
}
