//! Pins the warm-state checkpoint machinery at the simulator level:
//! snapshotting a simulator after warm-up (`try_clone`) and continuing
//! from the snapshot must be **bit-identical** to never having paused —
//! for every predictor × mechanism combination the sweep grids use, on
//! both the single-core and SMT frontends. The interval-retarget path
//! (one warm state serving the whole interval axis) is pinned the same
//! way: a checkpoint taken under one interval and retargeted to another
//! must match a fresh warm-up run entirely under the second interval.
//!
//! These are the invariants that let the sweep engine's checkpoint cache
//! skip re-simulating warm-up without changing a single stored byte.
//! Budgets are pinned small and explicit (never via `SBP_SCALE`, which is
//! process-cached).

use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{CoreConfig, GapMode, SamplingPlan, SingleCoreSim, SmtSim, SwitchInterval};

/// Every mechanism family the paper grids exercise.
fn mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::PreciseFlush,
        Mechanism::xor_btb(),
        Mechanism::enhanced_xor_pht(),
        Mechanism::noisy_xor_bp(),
    ]
}

const WARM: u64 = 30_000;
const MEASURE: u64 = 40_000;

#[test]
fn single_core_checkpoint_restore_is_bit_identical_per_predictor_and_mechanism() {
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SingleCoreSim::new(
                    CoreConfig::fpga(),
                    predictor,
                    mechanism,
                    SwitchInterval::M8,
                    &["gcc", "calculix"],
                    0xc0de,
                )
                .expect("valid sim")
            };
            // Uninterrupted reference run.
            let mut uninterrupted = fresh();
            let expected = uninterrupted.run_target(WARM, MEASURE);
            // Warm, checkpoint, continue from the restored snapshot.
            let mut warm = fresh();
            warm.warm(WARM);
            let mut restored = warm
                .try_clone()
                .expect("built-in predictors are snapshotable");
            drop(warm);
            let got = restored.run_measure(MEASURE);
            assert_eq!(
                got, expected,
                "{predictor:?}/{mechanism:?}: restored checkpoint diverged"
            );
        }
    }
}

#[test]
fn smt_checkpoint_restore_is_bit_identical_per_predictor_and_mechanism() {
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SmtSim::new(
                    CoreConfig::gem5(),
                    predictor,
                    mechanism,
                    SwitchInterval::M8,
                    &["zeusmp", "lbm"],
                    0xbeef,
                )
                .expect("valid sim")
            };
            let mut uninterrupted = fresh();
            let expected = uninterrupted.run(WARM, MEASURE);
            let mut warm = fresh();
            warm.warm(WARM);
            let mut restored = warm.try_clone().expect("snapshotable");
            drop(warm);
            let got = restored.run_measure(MEASURE);
            assert_eq!(
                got.per_thread, expected.per_thread,
                "{predictor:?}/{mechanism:?}: restored SMT checkpoint diverged"
            );
            assert_eq!(
                got.cycles.to_bits(),
                expected.cycles.to_bits(),
                "{predictor:?}/{mechanism:?}: SMT wall clock diverged"
            );
        }
    }
}

/// Gap region length for the functional-vs-timed equivalence tests.
const REGION: u64 = 20_000;

#[test]
fn single_core_functional_gap_execution_matches_timed_per_predictor_and_mechanism() {
    // The hybrid sampling plans execute gap regions through the
    // timing-free trainer. That is only sound if functional execution
    // leaves predictor/BTB/generator state *bit-identical* to full timed
    // execution — pinned here through the public API for every
    // predictor × mechanism: a timed probe window after a functional
    // gap must reproduce the timed-gap reference byte for byte
    // (`PredictionStats` equality includes the probe's cycle count).
    let plan = SamplingPlan {
        steady_windows: 1,
        window: MEASURE,
        gap: REGION,
        rewarm: 0,
        event_windows: 0,
        event_window: 0,
        burst: 0,
        gap_mode: GapMode::Functional,
        phase_windows: 0,
    };
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SingleCoreSim::new(
                    CoreConfig::fpga(),
                    predictor,
                    mechanism,
                    SwitchInterval::M12,
                    &["gcc", "calculix"],
                    0xc0de,
                )
                .expect("valid sim")
            };
            // Reference: warm-up, then the region executed *timed*
            // (unmeasured), then the timed probe. No timer fires at
            // these budgets, so the M12 interval is inert.
            let mut timed = fresh();
            timed.warm(WARM);
            timed.warm(REGION);
            let expected = timed.run_measure(MEASURE);
            // Hybrid: same warm-up, region executed *functionally* as
            // the plan's gap, then the same probe as the plan's window.
            let mut hybrid = fresh();
            hybrid.warm(WARM);
            let (cycles, got) = hybrid.run_sampled_window(&plan, 0);
            assert_eq!(
                got, expected,
                "{predictor:?}/{mechanism:?}: functional gap diverged from timed execution"
            );
            assert_eq!(
                cycles as u64, expected.cycles,
                "{predictor:?}/{mechanism:?}: probe cycles diverged after functional gap"
            );
        }
    }
}

#[test]
fn smt_functional_gap_execution_matches_timed_per_predictor_and_mechanism() {
    // The SMT functional stepper keeps per-thread clocks (the scheduler
    // is clock-driven), so a functional gap must leave shared-predictor
    // state, generator cursors *and* every thread clock bit-identical
    // to timed execution — the timed probe after it reproduces the
    // reference's per-thread stats, final clocks and wall-clock delta
    // exactly (`to_bits`, not approximately).
    let plan = SamplingPlan {
        steady_windows: 1,
        window: MEASURE,
        gap: REGION,
        rewarm: 0,
        event_windows: 0,
        event_window: 0,
        burst: 0,
        gap_mode: GapMode::Functional,
        phase_windows: 0,
    };
    for predictor in PredictorKind::ALL {
        for mechanism in mechanisms() {
            let fresh = || {
                SmtSim::new(
                    CoreConfig::gem5(),
                    predictor,
                    mechanism,
                    SwitchInterval::M12,
                    &["zeusmp", "lbm"],
                    0xbeef,
                )
                .expect("valid sim")
            };
            let mut timed = fresh();
            timed.warm(WARM);
            timed.warm(REGION);
            let expected = timed.run_measure(MEASURE);
            let mut hybrid = fresh();
            hybrid.warm(WARM);
            let (cycles, mut per_thread) = hybrid.run_sampled_window(&plan, 0);
            // The windowed path leaves per-thread `cycles` unset (the
            // serial assembler stamps them from the final clocks);
            // stamp them the same way before comparing.
            for (stats, clock) in per_thread.iter_mut().zip(hybrid.thread_clocks()) {
                stats.cycles = clock;
            }
            assert_eq!(
                per_thread, expected.per_thread,
                "{predictor:?}/{mechanism:?}: SMT functional gap diverged from timed execution"
            );
            assert_eq!(
                cycles.to_bits(),
                expected.cycles.to_bits(),
                "{predictor:?}/{mechanism:?}: SMT probe wall clock diverged after functional gap"
            );
        }
    }
}

#[test]
fn retargeted_checkpoints_match_fresh_warmups_on_the_new_interval() {
    for mechanism in [Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()] {
        // Warm under M12, retarget the snapshot to M4: identical to a
        // sim that ran under M4 from the start (warm-up fires no timer
        // switch at these budgets, so the warm state is interval-free).
        let build = |interval| {
            SingleCoreSim::new(
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                mechanism,
                interval,
                &["gcc", "calculix"],
                7,
            )
            .expect("valid sim")
        };
        let mut warm = build(SwitchInterval::M12);
        warm.warm(WARM);
        assert_eq!(warm.context_switches(), 0, "warm-up must not switch");
        let mut retargeted = warm.try_clone().expect("snapshotable");
        assert!(retargeted.retarget_interval(SwitchInterval::M4));
        let got = retargeted.run_measure(MEASURE);
        let mut reference = build(SwitchInterval::M4);
        let expected = reference.run_target(WARM, MEASURE);
        assert_eq!(got, expected, "{mechanism:?}: retargeted run diverged");
    }
}

#[test]
fn sampled_measurements_are_deterministic_from_restored_checkpoints() {
    // The window-measurement cache stores one SampledMeasurement per warm
    // state; re-measuring from a second restore of the same checkpoint
    // must reproduce it exactly (this is what makes cache eviction safe).
    let plan = SamplingPlan::quick();
    let mut warm = SingleCoreSim::new(
        CoreConfig::fpga(),
        PredictorKind::TageScL,
        Mechanism::CompleteFlush,
        SwitchInterval::M8,
        &["gcc", "calculix"],
        11,
    )
    .expect("valid sim");
    warm.warm(WARM);
    let mut a = warm.try_clone().expect("snapshotable");
    let mut b = warm.try_clone().expect("snapshotable");
    let ma = a.run_sampled(&plan);
    let mb = b.run_sampled(&plan);
    assert_eq!(ma, mb, "sampled windows diverged across restores");
}
