//! The paper-expectation oracle, end-to-end: catalog entries run at smoke
//! scale and judged by the same `check_report` pipeline `campaign --check`
//! uses, plus the directional paper claims that must hold at *any*
//! `SBP_SCALE` — a regression can shrink every overhead toward zero, but
//! it must never invert a conclusion.
//!
//! Directional claims pinned here (ties pass, so reduced-scale runs where
//! an effect degenerates to zero still conform):
//!
//! 1. flush cost grows with flush frequency (CF at 4M ≥ 8M ≥ 12M);
//! 2. index encoding is a standing cost: Noisy-XOR-BP ≥ CF at the
//!    rarest flush interval;
//! 3. Precise Flush never costs more than Complete Flush under SMT;
//! 4. under SMT, XOR beats whole-table flushing on *security*: CF loses
//!    SpectreV2 while Noisy-XOR-BP defends it;
//! 5. BranchScope is defeated by every PHT-protecting XOR variant while
//!    the baseline is broken;
//! 6. XOR-BTB's SMT-contention hole is closed by the noisy variant.
//!
//! Sim claims pin their work budgets explicitly (the catalog budgets
//! scale with `SBP_SCALE`; a pinned budget makes the claim independent of
//! the ambient environment), and attack claims carry explicit trial
//! counts, so every test here passes unchanged at any scale.

use secure_bp::attack::AttackKind;
use secure_bp::campaign::{expect, Catalog};
use secure_bp::isolation::Mechanism;
use secure_bp::sim::{SwitchInterval, WorkBudget};
use secure_bp::sweep::{
    check_report, check_report_at, CaseSpec, CheckStatus, Expectation, SweepMode, SweepSpec,
};

/// Asserts a verdict table passed, printing it on failure.
fn assert_conforms(table: &expect::VerdictTable) {
    assert!(table.passed(), "conformance failed:\n{}", table.to_table());
}

#[test]
fn smoke_entries_conform_end_to_end() {
    // The CI smoke entries exactly as cataloged, judged under the
    // ambient scale — the same oracle invocation `campaign --check`
    // ends with, including the scale-aware tolerance widening.
    for name in ["smoke_single", "smoke_attack"] {
        let entry = Catalog::get(name).expect("registered");
        let report = entry.spec().run().expect("sweep");
        let table = check_report(&report, &entry.expectations(), entry.name);
        assert_conforms(&table);
        assert_eq!(table.rows.len(), entry.expectations().len());
    }
}

#[test]
fn tolerances_widen_at_reduced_scale() {
    // The widening rule that loosens smoke-scale expectations: a check
    // that is out of tolerance at full scale passes at SBP_SCALE=0.02,
    // where sqrt(1/0.02) ≈ 7.07 widens the band.
    let entry = Catalog::get("smoke_attack").expect("registered");
    let report = entry.spec().run().expect("sweep");
    let tight = [Expectation::mean_within(
        "Baseline",
        "Gshare",
        "single-core",
        0.90,
        0.01,
    )];
    let strict = check_report_at(&report, &tight, "strict", 1.0);
    assert_eq!(strict.rows[0].status, CheckStatus::Fail, "{:?}", strict);
    let widened = check_report_at(&report, &tight, "widened", 0.02);
    assert_eq!(widened.rows[0].status, CheckStatus::Pass, "{:?}", widened);
    assert!(widened.widen > 7.0 && widened.widen < 7.2);
}

/// Claims 1 and 2: the fig01/fig09 single-core slice with a pinned
/// budget — CF's cost rises as the switch interval shrinks, and the XOR
/// family's standing encoding cost exceeds CF's rare-flush cost.
#[test]
fn flush_cost_grows_with_flush_frequency_and_xor_cost_stands() {
    let spec = Catalog::get("fig01")
        .expect("registered")
        .spec()
        .with_cases(vec![CaseSpec::pair("gcc+calculix", "gcc", "calculix")])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_seeds(1)
        .with_budget(WorkBudget {
            warmup: 200_000,
            measure: 6_000_000,
        });
    let report = spec.run().expect("sweep");
    let claims = [
        Expectation::order("Gshare", "CF", "4M", "CF", "8M"),
        Expectation::order("Gshare", "CF", "8M", "CF", "12M"),
        Expectation::order("Gshare", "Noisy-XOR-BP", "12M", "CF", "12M"),
        Expectation::at_most("CF", "Gshare", "4M", 0.05),
    ];
    assert_conforms(&check_report_at(&report, &claims, "fig01-slice", 1.0));
    // At this budget the effect is real, not a tie: two flushes more per
    // run must cost something.
    let cf4 = report.series_mean("CF", "Gshare", "4M").expect("CF-4M");
    let cf12 = report.series_mean("CF", "Gshare", "12M").expect("CF-12M");
    assert!(
        cf4 > cf12,
        "flush-frequency effect degenerated: {cf4} vs {cf12}"
    );
}

/// Claim 3: the fig03 SMT slice with a pinned budget — Precise Flush
/// only drops the switching thread's entries, so it never costs more
/// than a whole-table flush.
#[test]
fn precise_flush_never_costs_more_than_complete_flush_on_smt() {
    let spec = Catalog::get("fig03")
        .expect("registered")
        .spec()
        .with_cases(vec![CaseSpec::pair("zeusmp+lbm", "zeusmp", "lbm")])
        .with_intervals(vec![SwitchInterval::M4])
        .with_seeds(1)
        .with_budget(WorkBudget {
            warmup: 400_000,
            measure: 12_000_000,
        });
    let report = spec.run().expect("sweep");
    let claims = [
        Expectation::order("Tournament", "CF", "4M", "PF", "4M"),
        Expectation::at_most("PF", "Tournament", "4M", 0.20),
    ];
    assert_conforms(&check_report_at(&report, &claims, "fig03-slice", 1.0));
}

/// Claim 4: under SMT the flush trigger never fires between concurrent
/// threads — CF loses SpectreV2 outright while Noisy-XOR-BP defends it.
/// This is the sense in which XOR mechanisms beat whole-table flushing
/// under SMT, and it holds at any scale (trials are explicit).
#[test]
fn xor_defends_smt_where_whole_table_flush_does_not() {
    let spec = SweepSpec::attack("smt security slice")
        .with_attacks(vec![AttackKind::SpectreV2])
        .with_attack_modes(vec![SweepMode::Smt])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_trials(500);
    let report = spec.run().expect("attack sweep");
    let claims = [
        Expectation::verdict("SpectreV2", "CF", "Gshare", "smt", "No Protection"),
        Expectation::verdict("SpectreV2", "Noisy-XOR-BP", "Gshare", "smt", "Defend"),
    ];
    assert_conforms(&check_report_at(&report, &claims, "smt-security", 1.0));
}

/// Claim 5: BranchScope breaks the baseline and is defeated by every
/// PHT-protecting XOR variant, in both core modes.
#[test]
fn branchscope_is_defeated_by_all_xor_pht_variants() {
    let spec = SweepSpec::attack("branchscope slice")
        .with_attacks(vec![AttackKind::BranchScope])
        .with_mechanisms(vec![
            Mechanism::Baseline,
            Mechanism::xor_pht(),
            Mechanism::enhanced_xor_pht(),
            Mechanism::noisy_xor_pht(),
        ])
        .with_trials(500);
    let report = spec.run().expect("attack sweep");
    let mut claims = vec![Expectation::verdict(
        "BranchScope",
        "Baseline",
        "Gshare",
        "single-core",
        "No Protection",
    )];
    for mech in ["XOR-PHT", "Enhanced-XOR-PHT", "Noisy-XOR-PHT"] {
        for mode in ["single-core", "smt"] {
            claims.push(Expectation::verdict(
                "BranchScope",
                mech,
                "Gshare",
                mode,
                "Defend",
            ));
        }
    }
    assert_conforms(&check_report_at(&report, &claims, "branchscope", 1.0));
}

/// Claim 6: plain XOR-BTB leaves the SMT-contention hole (evictions are
/// content-independent) and the noisy index encoding closes it.
#[test]
fn noisy_index_encoding_closes_the_smt_contention_hole() {
    let spec = SweepSpec::attack("sbpa slice")
        .with_attacks(vec![AttackKind::Sbpa])
        .with_attack_modes(vec![SweepMode::Smt])
        .with_mechanisms(vec![Mechanism::xor_btb(), Mechanism::noisy_xor_btb()])
        .with_trials(500);
    let report = spec.run().expect("attack sweep");
    let claims = [
        Expectation::verdict("SBPA", "XOR-BTB", "Gshare", "smt", "No Protection"),
        Expectation::verdict("SBPA", "Noisy-XOR-BTB", "Gshare", "smt", "Defend"),
    ];
    assert_conforms(&check_report_at(&report, &claims, "sbpa-smt", 1.0));
}

#[test]
fn every_catalog_entry_carries_expectations_and_they_resolve() {
    // The acceptance bar: all 16 paper entries plus the two trace-replay
    // twins are machine-checkable, and a perturbed oracle still
    // describes the same cells (no Missing rows masquerading as
    // failures).
    assert_eq!(Catalog::entries().len(), 18);
    for entry in Catalog::entries() {
        let exps = entry.expectations();
        assert!(!exps.is_empty(), "{} has no expectations", entry.name);
        for (original, mutated) in exps.iter().zip(expect::maybe_perturbed(exps.clone())) {
            // Without the env knob this is the identity.
            assert_eq!(original, &mutated);
        }
    }
}
