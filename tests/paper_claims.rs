//! The paper's headline claims, asserted end-to-end with fast budgets.
//! (The full-fidelity versions are the bench harnesses; these tests pin
//! the *directions* so a regression cannot silently invert a conclusion.)

use secure_bp::attack::{SpectreV2, Verdict};
use secure_bp::hwcost::{table5_btb_rows, table5_pht_rows};
use secure_bp::isolation::{FrontendConfig, Mechanism, SecureFrontend};
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{run_single_case, CoreConfig, SwitchInterval, WorkBudget};
use secure_bp::trace::cases_single;
use secure_bp::types::{CoreEvent, Privilege, ThreadId};

/// "Overall, the average performance loss is less than 1.3%" (Fig. 9) and
/// the conclusion's "less than 5% slowdown on average": Noisy-XOR-BP must
/// stay a small-single-digit cost on the single-threaded core.
#[test]
fn noisy_xor_bp_average_cost_is_small() {
    let budget = WorkBudget {
        warmup: 80_000,
        measure: 900_000,
    };
    let mut overheads = Vec::new();
    for (i, case) in cases_single().iter().enumerate().step_by(3) {
        let base = run_single_case(
            case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            budget,
            40 + i as u64,
        )
        .expect("run");
        let mech = run_single_case(
            case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            SwitchInterval::M8,
            budget,
            40 + i as u64,
        )
        .expect("run");
        overheads.push(mech.cycles as f64 / base.cycles as f64 - 1.0);
    }
    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    assert!(
        avg < 0.05,
        "Noisy-XOR-BP average overhead {avg} breaks the <5% claim"
    );
    assert!(
        avg > -0.01,
        "Noisy-XOR-BP cannot be a speedup on average: {avg}"
    );
}

/// The rekey operation is strictly per-thread: one thread's context switch
/// must never disturb another hardware thread's key (the SMT advantage
/// over Complete Flush, Observation 2 inverted).
#[test]
fn rekey_blast_radius_is_one_thread() {
    use secure_bp::types::{BranchInfo, BranchKind, Pc};
    let mut fe = SecureFrontend::new(FrontendConfig::paper_gem5(
        PredictorKind::Gshare,
        Mechanism::noisy_xor_bp(),
        4,
    ));
    // Plant one BTB entry per hardware thread.
    let entries: Vec<BranchInfo> = (0..4)
        .map(|t| {
            BranchInfo::new(
                ThreadId::new(t),
                Pc::new(0x10_0000 + t as u64 * 0x1000),
                BranchKind::IndirectJump,
            )
        })
        .collect();
    for (t, info) in entries.iter().enumerate() {
        fe.update_target(*info, Pc::new(0xaaaa_0000 + t as u64 * 0x100));
    }
    // Rekey thread 2 only.
    fe.handle_event(CoreEvent::ContextSwitch {
        hw_thread: ThreadId::new(2),
    });
    for (t, info) in entries.iter().enumerate() {
        let expected = Some(Pc::new(0xaaaa_0000 + t as u64 * 0x100));
        let got = fe.predict_target(*info);
        if t == 2 {
            assert_ne!(
                got, expected,
                "thread 2's state must be unreadable after its rekey"
            );
        } else {
            assert_eq!(
                got, expected,
                "thread {t}'s state must survive thread 2's rekey"
            );
        }
    }
}

/// Privilege switches rekey XOR mechanisms in both directions (user→kernel
/// and kernel→user), so a syscall round trip costs two key refreshes.
#[test]
fn syscall_round_trip_rekeys_twice() {
    let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
        PredictorKind::Gshare,
        Mechanism::xor_bp(),
    ));
    let t = ThreadId::new(0);
    fe.handle_event(CoreEvent::PrivilegeSwitch {
        hw_thread: t,
        to: Privilege::Kernel,
    });
    fe.handle_event(CoreEvent::PrivilegeSwitch {
        hw_thread: t,
        to: Privilege::User,
    });
    assert_eq!(fe.stats().rekeys, 2);
}

/// Table 5's headline: the hardware overlay is sub-2.5% timing and
/// sub-0.5% area everywhere.
#[test]
fn hardware_overlay_is_lightweight() {
    for row in table5_btb_rows().iter().chain(table5_pht_rows().iter()) {
        assert!(row.timing < 0.025, "{}", row.format());
        assert!(row.area < 0.005, "{}", row.format());
    }
}

/// The abstract's security claim in one line: the same mechanism that
/// costs almost nothing stops the flagship attack cold.
#[test]
fn flagship_attack_is_defended_at_negligible_cost() {
    let attack = SpectreV2::new(Mechanism::noisy_xor_bp(), false).run(800, 99);
    assert_eq!(
        attack.verdict(),
        Verdict::Defend,
        "rate {}",
        attack.success_rate
    );
}

/// Storage sanity across the Table 2 configurations: the four predictors
/// instantiate at their paper-scale sizes and order by size.
#[test]
fn predictor_sizes_scale_as_in_table_2() {
    let sizes: Vec<u64> = PredictorKind::ALL
        .iter()
        .map(|k| k.build(1).storage_bits())
        .collect();
    // Gshare (2KB) < Tournament (~7KB) < LTAGE (~30KB class).
    assert!(sizes[0] < sizes[1], "{sizes:?}");
    assert!(sizes[1] < sizes[2], "{sizes:?}");
    assert_eq!(sizes[0], 16384, "gshare must be exactly 2 KB of counters");
}
