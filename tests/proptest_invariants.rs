//! Property-based tests over the public API: encoding bijectivity, index
//! scrambling, table storage, trace format, and counter arithmetic.

use proptest::prelude::*;

use secure_bp::predictors::{counter, Ras};
use secure_bp::trace::format::{decode_trace, encode_trace};
use secure_bp::trace::TraceEvent;
use secure_bp::types::{
    BranchKind, BranchRecord, Codec, KeyCtx, KeyPair, PackedTable, Pc, Privilege, ThreadId,
};

fn any_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![
        Just(Codec::Xor),
        Just(Codec::ShiftScramble),
        Just(Codec::Lut)
    ]
}

fn any_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::DirectJump),
        Just(BranchKind::IndirectJump),
        Just(BranchKind::Call),
        Just(BranchKind::IndirectCall),
        Just(BranchKind::Return),
    ]
}

fn any_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            any::<u64>(),
            any_kind(),
            any::<bool>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(|(pc, kind, taken, target, gap)| {
                TraceEvent::Branch(BranchRecord {
                    pc: Pc::new(pc),
                    kind,
                    taken,
                    target: Pc::new(target),
                    gap,
                })
            }),
        any::<bool>().prop_map(|k| TraceEvent::PrivilegeSwitch(if k {
            Privilege::Kernel
        } else {
            Privilege::User
        })),
    ]
}

proptest! {
    /// Every codec is a bijection on the width-bit space for any key.
    #[test]
    fn codec_round_trips(codec in any_codec(), word in any::<u64>(), key in any::<u64>(), width in 1u32..=64) {
        let w = word & secure_bp::types::ids::mask_u64(width);
        let enc = codec.encode(w, key, width);
        prop_assert!(enc <= secure_bp::types::ids::mask_u64(width));
        prop_assert_eq!(codec.decode(enc, key, width), w);
    }

    /// Two distinct codewords never collide (injectivity spot check).
    #[test]
    fn codec_is_injective(codec in any_codec(), a in any::<u64>(), b in any::<u64>(), key in any::<u64>(), width in 1u32..=16) {
        let m = secure_bp::types::ids::mask_u64(width);
        let (a, b) = (a & m, b & m);
        prop_assume!(a != b);
        prop_assert_ne!(codec.encode(a, key, width), codec.encode(b, key, width));
    }

    /// Index scrambling is an involution that stays within range.
    #[test]
    fn scramble_is_involution(content in any::<u64>(), index_key in any::<u64>(), bits in 1u32..=16, idx in any::<u64>()) {
        let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::new(content, index_key));
        let idx = (idx & secure_bp::types::ids::mask_u64(bits)) as usize;
        let s = ctx.scramble_index(idx, bits);
        prop_assert!(s < (1usize << bits));
        prop_assert_eq!(ctx.scramble_index(s, bits), idx);
    }

    /// A keyed table read returns exactly what the same context wrote.
    #[test]
    fn packed_table_roundtrip(seed in any::<u64>(), log_len in 2u32..=10, width in 1u32..=32, writes in prop::collection::vec((any::<u64>(), any::<u64>()), 1..50)) {
        let mut table = PackedTable::new(1 << log_len, width, 0);
        let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(seed));
        let m = secure_bp::types::ids::mask_u64(width);
        let mut model = std::collections::HashMap::new();
        for (idx, val) in writes {
            let idx = (idx % (1 << log_len)) as usize;
            let val = val & m;
            table.set(idx, val, &ctx);
            model.insert(idx, val);
        }
        for (idx, val) in model {
            prop_assert_eq!(table.get(idx, &ctx), val);
        }
    }

    /// The binary trace format is lossless for arbitrary event sequences.
    #[test]
    fn trace_format_roundtrip(events in prop::collection::vec(any_event(), 0..200)) {
        let bytes = encode_trace(&events);
        prop_assert_eq!(decode_trace(&bytes).unwrap(), events);
    }

    /// Arbitrary single-byte corruption of a valid trace must decode to
    /// *something* or error — never panic, and never allocate from a
    /// lying header (the capacity hint is bounded by the body size).
    #[test]
    fn trace_format_mutations_never_panic(
        events in prop::collection::vec(any_event(), 1..60),
        offset in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = encode_trace(&events).to_vec();
        let at = offset % bytes.len();
        bytes[at] = byte;
        if let Ok(decoded) = decode_trace(&bytes) {
            // A surviving decode must account for every event the
            // (possibly corrupted) header declares.
            prop_assert!(decoded.len() <= events.len());
        }
    }

    /// Arbitrary truncations of a valid trace error or decode — never
    /// panic on a half-delivered event.
    #[test]
    fn trace_format_truncations_never_panic(
        events in prop::collection::vec(any_event(), 1..60),
        cut in any::<usize>(),
    ) {
        let bytes = encode_trace(&events);
        let cut = cut % (bytes.len() + 1);
        let _ = decode_trace(&bytes[..cut]);
    }

    /// Unsigned saturating counters stay in range and are monotone.
    #[test]
    fn saturating_counter_invariants(width in 1u32..=8, ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let max = secure_bp::types::ids::mask_u64(width);
        let mut value = 0u64;
        for taken in ops {
            let next = counter::sat_update(value, width, taken);
            prop_assert!(next <= max);
            if taken {
                prop_assert!(next >= value);
            } else {
                prop_assert!(next <= value);
            }
            value = next;
        }
    }

    /// Signed counter round trip and saturation bounds.
    #[test]
    fn signed_counter_invariants(width in 2u32..=8, ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let min = -(1i64 << (width - 1));
        let max = (1i64 << (width - 1)) - 1;
        let mut value = counter::from_signed(0, width);
        for taken in ops {
            value = counter::signed_update(value, width, taken);
            let v = counter::to_signed(value, width);
            prop_assert!((min..=max).contains(&v));
        }
    }

    /// The RAS behaves like an unbounded stack truncated to its depth.
    #[test]
    fn ras_matches_model_stack(depth in 1usize..=32, ops in prop::collection::vec(any::<Option<u32>>(), 1..200)) {
        let mut ras = Ras::new(depth, 1);
        let mut model: Vec<u64> = Vec::new();
        let t = ThreadId::new(0);
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(t, Pc::new(addr as u64));
                    model.push(addr as u64);
                    if model.len() > depth {
                        let keep = model.len() - depth;
                        model.drain(..keep);
                    }
                }
                None => {
                    let got = ras.pop(t);
                    let want = model.pop().map(Pc::new);
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// Cross-key reads never equal a write made under a different content
    /// key for wide words (probability 2^-32 of false positive).
    #[test]
    fn wide_words_do_not_leak_across_keys(a in any::<u64>(), b in any::<u64>(), val in any::<u64>()) {
        prop_assume!(a != b);
        let ka = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(a));
        let kb = KeyCtx::xor(ThreadId::new(1), KeyPair::from_random(b));
        let mut table = PackedTable::new(16, 32, 0);
        let val = val & 0xffff_ffff;
        table.set(3, val, &ka);
        // The foreign read is decorrelated; equality would require a
        // 32-bit key-slice collision.
        if table.get(3, &kb) == val {
            // Astronomically unlikely; treat as a real failure.
            prop_assert!(false, "cross-key read matched the plaintext");
        }
    }
}
