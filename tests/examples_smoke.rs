//! Smoke tests over the `examples/` binaries.
//!
//! Each example file is compiled into this test via `#[path]` inclusion and
//! its `run` entry point is driven at reduced scale, so an example that
//! stops compiling or panics on its main path fails `cargo test` instead of
//! rotting silently. (`#[allow(dead_code)]` covers each example's `main`,
//! which is unused in the test build.)

use secure_bp::sim::WorkBudget;

#[allow(dead_code)]
#[path = "../examples/quickstart.rs"]
mod quickstart;

#[allow(dead_code)]
#[path = "../examples/overhead_sweep.rs"]
mod overhead_sweep;

#[allow(dead_code)]
#[path = "../examples/attack_lab.rs"]
mod attack_lab;

#[allow(dead_code)]
#[path = "../examples/attack_sweep.rs"]
mod attack_sweep;

#[allow(dead_code)]
#[path = "../examples/trace_tools.rs"]
mod trace_tools;

#[allow(dead_code)]
#[path = "../examples/campaign_catalog.rs"]
mod campaign_catalog;

#[test]
fn quickstart_runs() {
    quickstart::run(20_000).expect("quickstart main path");
}

#[test]
fn overhead_sweep_runs() {
    overhead_sweep::run(
        "gcc",
        "calculix",
        WorkBudget {
            warmup: 10_000,
            measure: 100_000,
        },
        WorkBudget {
            warmup: 20_000,
            measure: 200_000,
        },
    )
    .expect("overhead_sweep main path");
}

#[test]
fn attack_lab_runs() {
    attack_lab::run(200, 5);
}

#[test]
fn attack_sweep_runs() {
    // Unique per process so concurrent test runs on one host don't race.
    let store = std::env::temp_dir().join(format!(
        "sbp_examples_smoke_attack_sweep_{}.jsonl",
        std::process::id()
    ));
    attack_sweep::run(150, &store).expect("attack_sweep main path");
    assert!(!store.exists(), "attack_sweep cleans up its store");
}

#[test]
fn trace_tools_runs() {
    // Unique per process so concurrent test runs on one host don't race.
    let path = std::env::temp_dir().join(format!(
        "sbp_examples_smoke_trace_{}.sbpt",
        std::process::id()
    ));
    trace_tools::run(20_000, &path).expect("trace_tools main path");
    assert!(!path.exists(), "trace_tools cleans up its capture file");
}

#[test]
fn campaign_catalog_runs() {
    campaign_catalog::run(100).expect("campaign_catalog main path");
}
