//! Property tests over the telemetry JSONL schema: every representable
//! event must survive the `to_line` → `parse_line` round trip exactly
//! (including escapes, unicode and extreme numbers), generated
//! well-formed streams must validate, and the canonical projection must
//! be idempotent — projecting twice changes nothing.

use proptest::prelude::*;

use secure_bp::telemetry::{canonical_projection, span_id, validate, Event, Kind};

fn any_kind() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Begin),
        Just(Kind::End),
        Just(Kind::Counter),
        Just(Kind::Gauge),
        Just(Kind::Mark),
    ]
}

/// Strings that exercise the escape paths: quotes, backslashes, control
/// characters, multi-byte unicode and plain ASCII.
fn any_text(min: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('9'),
            Just('_'),
            Just(' '),
            Just('/'),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just('\u{8}'),
            Just('µ'),
            Just('中'),
            Just('𝕊'),
        ],
        min..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Finite values only: the emitter collapses non-finite numbers to `0`,
/// which is deliberately not a round trip.
fn any_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<i64>().prop_map(|x| x as f64),
        any::<i32>().prop_map(|x| f64::from(x) * 0.125),
        Just(0.0),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
    ]
}

fn any_event() -> impl Strategy<Value = Event> {
    (
        (any_text(0), any::<u32>(), any::<Option<u64>>()),
        (any::<u32>(), any::<u64>(), any::<bool>(), any::<u64>()),
        (any_kind(), any_text(1), any_value(), any_text(0)),
    )
        .prop_map(
            |((entry, shard, job), (seq, id, det, ts_us), (kind, name, value, detail))| Event {
                entry,
                shard,
                job,
                seq,
                id,
                det,
                ts_us,
                kind,
                name,
                value,
                detail,
            },
        )
}

/// A well-formed single-lane stream: `names` become properly nested
/// spans (opened in order, closed in reverse), `leaves` become
/// counter/gauge/mark events inside the innermost span.
fn well_formed_lane(
    entry: String,
    shard: u32,
    job: Option<u64>,
    names: Vec<String>,
    leaves: Vec<(String, f64)>,
) -> Vec<Event> {
    let mut events: Vec<Event> = Vec::new();
    let push = |events: &mut Vec<Event>, kind: Kind, id: u64, name: &str, value: f64| {
        let seq = events.len() as u32;
        events.push(Event {
            entry: entry.clone(),
            shard,
            job,
            seq,
            id,
            det: true,
            ts_us: u64::from(seq) * 3,
            kind,
            name: name.to_string(),
            value,
            detail: String::new(),
        });
    };
    let mut open = Vec::new();
    for name in &names {
        let id = span_id(shard, job, events.len() as u32);
        push(&mut events, Kind::Begin, id, name, 0.0);
        open.push((id, name.clone()));
    }
    for (i, (name, value)) in leaves.iter().enumerate() {
        let kind = [Kind::Counter, Kind::Gauge, Kind::Mark][i % 3];
        push(&mut events, kind, 0, name, *value);
    }
    while let Some((id, name)) = open.pop() {
        push(&mut events, Kind::End, id, &name, 1.5);
    }
    events
}

proptest! {
    #[test]
    fn every_event_round_trips_through_its_line(event in any_event()) {
        let line = event.to_line();
        prop_assert!(!line.contains('\n'), "line breaks corrupt JSONL: {line:?}");
        let parsed = Event::parse_line(&line);
        prop_assert_eq!(parsed, Ok(event));
    }

    #[test]
    fn well_formed_streams_validate_and_project_idempotently(
        names in prop::collection::vec(any_text(1), 0..5),
        leaves in prop::collection::vec((any_text(1), any_value()), 0..6),
        shard in 0u32..5,
        job in any::<Option<u64>>(),
    ) {
        let lane = well_formed_lane("entry".to_string(), shard, job, names, leaves);
        let stats = validate(&lane);
        prop_assert!(stats.is_ok(), "well-formed lane rejected: {stats:?}");

        let projected = canonical_projection(&lane);
        validate(&projected).expect("projection stays valid");
        let twice = canonical_projection(&projected);
        prop_assert_eq!(projected, twice, "projection is not idempotent");
    }

    #[test]
    fn truncated_lines_never_parse(event in any_event()) {
        let line = event.to_line();
        // Any strict prefix is rejected, not silently defaulted.
        for cut in 1..line.len().min(12) {
            let end = line.len() - cut;
            if line.is_char_boundary(end) {
                let truncated = &line[..end];
                prop_assert!(Event::parse_line(truncated).is_err(), "{truncated:?}");
            }
        }
    }
}
