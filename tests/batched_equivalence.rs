//! Pins the batched hot-loop rewrite at the *report* level: the sweep
//! engine (which runs every sim job through the batched
//! `SingleCoreSim::run_target` / `SmtSim::run` path) must produce a
//! `SweepReport` byte-identical to one built by re-executing the same
//! plan through the uncached scalar reference path
//! (`run_target_scalar` / `run_scalar`) — and both must match the
//! checked-in golden JSONL, so any drift in the rewrite or the emitters
//! is caught in tier-1.
//!
//! Specs are smoke-sized variants of the paper grids — fig01 (single-core
//! sim jobs, where the batched drain loop actually runs) and tab01's BTB
//! half (attack jobs, pinning that the rewrite left the attack payload
//! untouched) — with work budgets pinned via `with_budget`, NOT
//! `SBP_SCALE` (the scale variable is process-cached, so tests must not
//! depend on it). Regenerate the goldens with `SBP_UPDATE_GOLDEN=1` after
//! an intentional emitter change.

use std::path::PathBuf;

use secure_bp::campaign::Catalog;
use secure_bp::sim::{SingleCoreSim, SmtSim, WorkBudget};
use secure_bp::sweep::{
    build_report, execute, plan, Job, RawResult, RawRun, SweepMode, SweepPlan, SweepSpec,
};
use secure_bp::types::{PredictionStats, SweepReport};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SBP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with SBP_UPDATE_GOLDEN=1 to (re)generate",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden file; if the change is intentional, \
         regenerate with SBP_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Executes one planned job through the scalar reference front-end path.
/// Attack jobs have no batched/scalar split and run as in the engine.
fn run_job_scalar(spec: &SweepSpec, plan: &SweepPlan, job: &Job) -> RawResult {
    let (group, mechanism) = match job {
        Job::Attack(a) => {
            return RawResult::Attack(a.attack.run(
                a.mechanism,
                a.predictor,
                a.smt,
                a.trials,
                a.seed,
            ))
        }
        Job::Sim { group, mechanism } => (&plan.groups[*group], *mechanism),
    };
    let case = &spec.cases[group.case_index];
    let workloads: Vec<&str> = case.workloads.iter().map(String::as_str).collect();
    match spec.mode {
        SweepMode::SingleCore => {
            let mut sim = SingleCoreSim::new(
                spec.core,
                group.predictor,
                mechanism,
                group.interval,
                &workloads,
                group.seed,
            )
            .expect("plan jobs are valid");
            let stats = sim.run_target_scalar(spec.budget.warmup, spec.budget.measure);
            RawResult::Sim(RawRun {
                cycles: stats.cycles as f64,
                stats,
                per_thread: Vec::new(),
                stderr: None,
            })
        }
        SweepMode::Smt => {
            let mut sim = SmtSim::new(
                spec.core,
                group.predictor,
                mechanism,
                group.interval,
                &workloads,
                group.seed,
            )
            .expect("plan jobs are valid");
            let result = sim.run_scalar(spec.budget.warmup, spec.budget.measure);
            let mut stats = PredictionStats::new();
            for t in &result.per_thread {
                stats += *t;
            }
            stats.cycles = result.cycles as u64;
            RawResult::Sim(RawRun {
                cycles: result.cycles,
                stats,
                per_thread: result.per_thread,
                stderr: None,
            })
        }
    }
}

/// Runs `spec` through the engine (batched) and through the scalar
/// reference path, asserts the reports are byte-identical, and returns
/// the report.
fn batched_equals_scalar(spec: &SweepSpec) -> SweepReport {
    let plan = plan(spec);
    let batched_raw = execute(spec, &plan).expect("engine run");
    let scalar_raw: Vec<RawResult> = plan
        .jobs
        .iter()
        .map(|j| run_job_scalar(spec, &plan, j))
        .collect();
    assert_eq!(
        batched_raw, scalar_raw,
        "batched engine results diverged from the scalar reference path"
    );
    let batched = build_report(spec, &plan, &batched_raw);
    let scalar = build_report(spec, &plan, &scalar_raw);
    assert_eq!(
        batched.to_jsonl(),
        scalar.to_jsonl(),
        "reports are not byte-identical"
    );
    batched
}

#[test]
fn fig01_smoke_report_is_scalar_identical_and_matches_golden() {
    // Figure 1's grid, smoke-sized: one seed replica and a pinned quick
    // budget instead of the catalog's SBP_SCALE-derived sizes.
    let spec = Catalog::get("fig01")
        .expect("registered")
        .spec()
        .with_seeds(1)
        .with_budget(WorkBudget::quick());
    let report = batched_equals_scalar(&spec);
    assert_golden("fig01_smoke.report.jsonl", &report.to_jsonl());
}

#[test]
fn tab01_btb_report_is_scalar_identical_and_matches_golden() {
    // Table 1's BTB half verbatim: attack grids carry explicit trial
    // counts, so the cataloged spec is already scale-independent.
    let spec = Catalog::get("tab01_btb").expect("registered").spec();
    let report = batched_equals_scalar(&spec);
    assert_golden("tab01_btb.report.jsonl", &report.to_jsonl());
}
