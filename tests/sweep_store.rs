//! Integration tests over the persistent sweep store: resume skips
//! exactly the completed cells, shards partition the job list, merged
//! shard stores rebuild a report byte-identical to an unsharded run, and
//! the JSONL layers degrade recoverably — malformed lines fail loudly,
//! crash-truncated tails are skipped, and verdict tables round-trip
//! exactly.

use std::path::PathBuf;

use proptest::prelude::*;

use secure_bp::attack::AttackKind;
use secure_bp::isolation::Mechanism;
use secure_bp::sim::WorkBudget;
use secure_bp::sweep::{
    cases_from, merge_stores, plan, CheckRow, CheckStatus, RunOptions, Shard, SweepSpec,
    SweepStore, VerdictTable,
};
use secure_bp::trace::cases_single;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sbp_sweep_store_{}_{name}.jsonl",
        std::process::id()
    ))
}

fn quick_sim_spec() -> SweepSpec {
    SweepSpec::single("store test")
        .with_cases(cases_from(&cases_single()[..2]))
        .with_intervals(vec![secure_bp::sim::SwitchInterval::M8])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_budget(WorkBudget::quick())
        .with_master_seed(0xeeee)
}

fn quick_attack_spec() -> SweepSpec {
    SweepSpec::attack("store attack test")
        .with_attacks(vec![AttackKind::SpectreV2, AttackKind::BranchScope])
        .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
        .with_trials(150)
}

#[test]
fn second_run_against_a_store_executes_zero_jobs() {
    let path = tmp("resume_zero");
    let _ = std::fs::remove_file(&path);
    let spec = quick_sim_spec();
    let jobs = plan(&spec).jobs.len();
    let opts = RunOptions {
        store: Some(path.clone()),
        shard: None,
    };
    let first = spec.run_with(&opts).expect("first run");
    assert_eq!((first.executed, first.skipped, first.pending), (jobs, 0, 0));
    let second = spec.run_with(&opts).expect("second run");
    assert_eq!(
        (second.executed, second.skipped, second.pending),
        (0, jobs, 0)
    );
    // Resume produced the byte-identical report.
    let (a, b) = (
        first.report.expect("report"),
        second.report.expect("report"),
    );
    assert_eq!(a, b);
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_table(), b.to_table());
    // And matches a storeless run of the same spec.
    assert_eq!(a, spec.run().expect("plain run"));
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn interrupted_run_resumes_with_exactly_the_missing_cells() {
    let path = tmp("resume_partial");
    let _ = std::fs::remove_file(&path);
    let spec = quick_sim_spec();
    let jobs = plan(&spec).jobs.len();
    let opts = RunOptions {
        store: Some(path.clone()),
        shard: None,
    };
    spec.run_with(&opts).expect("full run");
    // Simulate a run killed after k cells: keep only the first k store
    // lines (append order = completion order; any k lines work).
    let k = 2;
    let text = std::fs::read_to_string(&path).expect("store text");
    let truncated: String = text.lines().take(k).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, truncated).expect("truncate");
    let resumed = spec.run_with(&opts).expect("resumed run");
    assert_eq!(resumed.executed, jobs - k, "resume executes jobs − k");
    assert_eq!(resumed.skipped, k);
    assert_eq!(resumed.pending, 0);
    assert_eq!(
        resumed.report.expect("report"),
        spec.run().expect("plain run")
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn sharded_stores_merge_into_a_byte_identical_report() {
    let spec = quick_sim_spec().with_seeds(2);
    let jobs = plan(&spec).jobs.len();
    let unsharded = spec.run().expect("unsharded run");
    let n = 3;
    let mut shard_paths = Vec::new();
    let mut executed_total = 0;
    for k in 1..=n {
        let path = tmp(&format!("shard_{k}_of_{n}"));
        let _ = std::fs::remove_file(&path);
        let outcome = spec
            .run_with(&RunOptions {
                store: Some(path.clone()),
                shard: Some(Shard::parse(&format!("{k}/{n}")).expect("shard")),
            })
            .expect("shard run");
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.pending, jobs - outcome.executed);
        if outcome.pending > 0 {
            assert!(outcome.report.is_none(), "incomplete shard has no report");
        }
        executed_total += outcome.executed;
        shard_paths.push(path);
    }
    assert_eq!(executed_total, jobs, "shards partition the job list");

    let merged_path = tmp("merged");
    let _ = std::fs::remove_file(&merged_path);
    let merged = merge_stores(&spec, &shard_paths, Some(&merged_path)).expect("merge");
    assert_eq!(merged, unsharded);
    assert_eq!(merged.to_jsonl(), unsharded.to_jsonl());
    assert_eq!(merged.to_csv(), unsharded.to_csv());
    assert_eq!(merged.to_table(), unsharded.to_table());

    // The canonical merged store resumes as complete.
    let resumed = spec
        .run_with(&RunOptions {
            store: Some(merged_path.clone()),
            shard: None,
        })
        .expect("resume from merged");
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.report.expect("report"), unsharded);

    // Merging an incomplete subset fails loudly.
    assert!(merge_stores(&spec, &shard_paths[..n - 1], None).is_err());

    for p in shard_paths.iter().chain([&merged_path]) {
        std::fs::remove_file(p).expect("cleanup");
    }
}

#[test]
fn attack_sweeps_resume_and_merge_like_sim_sweeps() {
    let spec = quick_attack_spec();
    let jobs = plan(&spec).jobs.len();
    let unsharded = spec.run().expect("unsharded");
    let (p1, p2) = (tmp("attack_1_2"), tmp("attack_2_2"));
    let _ = (std::fs::remove_file(&p1), std::fs::remove_file(&p2));
    for (k, path) in [(1, &p1), (2, &p2)] {
        let outcome = spec
            .run_with(&RunOptions {
                store: Some(path.clone()),
                shard: Some(Shard::parse(&format!("{k}/2")).expect("shard")),
            })
            .expect("shard run");
        assert!(outcome.executed > 0);
    }
    let merged = merge_stores(&spec, &[p1.clone(), p2.clone()], None).expect("merge");
    assert_eq!(merged, unsharded);
    assert_eq!(merged.to_jsonl(), unsharded.to_jsonl());
    // Attack re-runs resume to zero executions too.
    let resume = spec
        .run_with(&RunOptions {
            store: Some(p1.clone()),
            shard: None,
        })
        .expect("resume");
    assert!(resume.executed < jobs && resume.skipped > 0);
    std::fs::remove_file(&p1).expect("cleanup");
    std::fs::remove_file(&p2).expect("cleanup");
}

#[test]
fn malformed_store_lines_are_recoverable_errors_not_panics() {
    let path = tmp("json_errors");
    for body in [
        "not json\n",
        "[1,2,3]\n",
        "{\"fp\":\"nothex\",\"kind\":\"attack\"}\n",
        "{\"kind\":\"attack\"}\n",
        "{\"fp\":\"10\",\"kind\":\"warp\"}\n",
        "{\"fp\":\"10\",\"kind\":\"attack\",\"success_rate\":\"high\"}\n",
        // Truncated line in the *middle* of a store is corruption, not
        // crash wreckage.
        "{\"fp\":\"10\",\"kind\":\"at\n{\"fp\":\"11\",\"kind\":\"attack\",\
         \"success_rate\":0.5,\"chance\":0.5,\"trials\":10}\n",
    ] {
        std::fs::write(&path, body).expect("write");
        let err = SweepStore::open(&path).expect_err(body);
        assert!(
            err.to_string().contains("sweep store"),
            "recoverable store error for {body:?}, got {err}"
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn crash_truncated_final_line_resumes_with_the_cell_missing() {
    let path = tmp("crash_tail");
    let _ = std::fs::remove_file(&path);
    let spec = quick_attack_spec();
    let jobs = plan(&spec).jobs.len();
    let opts = RunOptions {
        store: Some(path.clone()),
        shard: None,
    };
    spec.run_with(&opts).expect("full run");
    // Chop the final line mid-value, newline lost — a kill mid-append.
    let text = std::fs::read_to_string(&path).expect("read");
    std::fs::write(&path, &text[..text.len() - 9]).expect("truncate");
    let resumed = spec.run_with(&opts).expect("resume over the wreckage");
    assert_eq!(
        (resumed.executed, resumed.skipped),
        (1, jobs - 1),
        "exactly the in-flight cell re-executes"
    );
    assert_eq!(
        resumed.report.expect("report"),
        spec.run().expect("plain run"),
        "the healed store rebuilds the byte-identical report"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn conflicting_duplicate_fingerprints_fail_loudly() {
    let path = tmp("conflict");
    let _ = std::fs::remove_file(&path);
    let spec = quick_attack_spec();
    spec.run_with(&RunOptions {
        store: Some(path.clone()),
        shard: None,
    })
    .expect("full run");
    let text = std::fs::read_to_string(&path).expect("read");
    let first = text.lines().next().expect("line").to_string();
    let forged = first.replace("\"trials\":150", "\"trials\":151");
    assert_ne!(first, forged);
    // An identical duplicate is collapsed; a conflicting one is corrupt.
    std::fs::write(&path, format!("{text}{first}\n")).expect("write dup");
    assert!(SweepStore::open(&path).is_ok());
    std::fs::write(&path, format!("{text}{forged}\n")).expect("write forged");
    assert!(SweepStore::open(&path).is_err());
    std::fs::remove_file(&path).expect("cleanup");
}

/// JSON-hostile strings: quotes, backslashes, control characters,
/// multi-byte UTF-8 — everything the emitters must escape.
const TRICKY: [&str; 8] = [
    "",
    "plain",
    "with \"quotes\" and \\backslash\\",
    "line\nbreak\tand\rreturn",
    "order CF/Gshare/4M >= CF/Gshare/8M",
    "±σ — naïve ✓",
    "\u{1} control \u{1f} bytes",
    "trailing space ",
];

fn any_string() -> impl Strategy<Value = String> {
    (any::<u8>(), any::<u16>())
        .prop_map(|(pick, salt)| format!("{}{salt}", TRICKY[pick as usize % TRICKY.len()]))
}

/// Finite floats spanning magnitudes, signs and awkward fractions (the
/// vendored proptest stub has no f64 Arbitrary).
fn any_finite_f64() -> impl Strategy<Value = f64> {
    (any::<i64>(), 0u32..60).prop_map(|(mantissa, shift)| {
        let x = mantissa as f64 / (1u64 << shift) as f64;
        if x.is_finite() {
            x
        } else {
            0.5
        }
    })
}

fn any_status() -> impl Strategy<Value = CheckStatus> {
    prop_oneof![
        Just(CheckStatus::Pass),
        Just(CheckStatus::Fail),
        Just(CheckStatus::Missing),
    ]
}

fn any_row() -> impl Strategy<Value = CheckRow> {
    (
        any_string(),
        any_string(),
        any_string(),
        any_finite_f64(),
        any_finite_f64(),
        any_status(),
    )
        .prop_map(
            |(check, expected, actual, delta, tolerance, status)| CheckRow {
                check,
                expected,
                actual,
                delta,
                tolerance,
                status,
            },
        )
}

proptest! {
    /// Shard filters partition the job list: every job fingerprint is
    /// owned by exactly one of the n shards, for any shard count and any
    /// fingerprint value.
    #[test]
    fn shard_filters_partition_the_job_list(n in 1usize..=8, fp in any::<u64>()) {
        let shards: Vec<Shard> = (1..=n)
            .map(|k| Shard::parse(&format!("{k}/{n}")).expect("parse"))
            .collect();
        let owners = shards.iter().filter(|s| s.owns(fp)).count();
        prop_assert_eq!(owners, 1, "fingerprint {} owned by {} shards", fp, owners);
    }

    /// Any verdict table — arbitrary strings (escapes included), finite
    /// floats, every status — round-trips through its JSONL form exactly.
    #[test]
    fn verdict_tables_roundtrip_through_jsonl(
        entry in any_string(),
        scale in any_finite_f64(),
        widen in any_finite_f64(),
        rows in prop::collection::vec(any_row(), 0..8),
    ) {
        let table = VerdictTable { entry, scale, widen, rows };
        let text = table.to_jsonl();
        let back = VerdictTable::from_jsonl(&text).expect("parse back");
        prop_assert_eq!(&back, &table);
        prop_assert_eq!(back.to_jsonl(), text, "emit is a fixpoint");
    }
}
