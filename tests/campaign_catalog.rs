//! Campaign-layer coverage through the umbrella crate: the catalog is the
//! single source of truth for every figure/table grid, manifests resolve
//! against it, and the store garbage collector only drops cells no live
//! spec still plans.
//!
//! (The multi-process coordinator/worker paths are exercised end-to-end
//! in `crates/campaign/tests/orchestrator.rs`, which drives the real
//! `campaign` binary.)

use std::path::PathBuf;

use secure_bp::campaign::{Catalog, Manifest};
use secure_bp::sweep::{gc_store, plan, RunOptions};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sbp_campaign_root_{}_{name}.jsonl",
        std::process::id()
    ))
}

#[test]
fn catalog_covers_every_figure_and_table_harness() {
    for name in [
        "fig01",
        "fig02_smt2",
        "fig02_smt4",
        "fig03",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "tab01_btb",
        "tab01_pht",
        "tab01_predictors",
        "tab04",
        "sec55_btb",
        "sec55_pht",
    ] {
        let entry = Catalog::get(name).unwrap_or_else(|| panic!("{name} not registered"));
        assert!(entry.spec().validate().is_ok(), "{name} spec invalid");
    }
}

#[test]
fn every_entry_is_machine_checkable_against_the_paper() {
    for entry in Catalog::entries() {
        assert!(
            !entry.expectations().is_empty(),
            "{} carries no paper expectations — the catalog is the \
             oracle's source of truth",
            entry.name
        );
    }
    // The Table 1 halves encode the complete verdict matrix.
    let btb = Catalog::get("tab01_btb").expect("entry").expectations();
    assert_eq!(btb.len(), 24, "3 attacks x 4 mechanisms x 2 modes");
    let pht = Catalog::get("tab01_pht").expect("entry").expectations();
    assert_eq!(pht.len(), 20, "2 attacks x 5 mechanisms x 2 modes");
}

#[test]
fn manifest_resolves_catalog_entries_through_the_umbrella() {
    let manifest = Manifest::parse(r#"{"entries":["tab01_btb","fig10"],"workers":3,"seeds":4}"#)
        .expect("parse");
    let specs = manifest.specs().expect("resolve");
    assert_eq!(specs.len(), 2);
    assert!(specs.iter().all(|(_, s)| s.seeds == 4));
    // The resolved spec is the catalog spec (plus the override): same
    // plan shape as building it directly.
    let direct = Catalog::get("tab01_btb")
        .expect("entry")
        .spec()
        .with_seeds(4);
    assert_eq!(specs[0].1, direct);
}

#[test]
fn gc_drops_exactly_the_cells_no_live_spec_plans() {
    let store = tmp("gc");
    let _ = std::fs::remove_file(&store);
    // Populate the store from the full smoke_attack grid (attack cells
    // ignore SBP_SCALE, so this is fast and scale-independent).
    let full = Catalog::get("smoke_attack").expect("entry").spec();
    let opts = RunOptions {
        store: Some(store.clone()),
        shard: None,
    };
    let outcome = full.run_with(&opts).expect("run");
    let total = plan(&full).jobs.len();
    assert_eq!(outcome.executed, total);

    // GC against the live spec is a no-op, byte for byte.
    let before = std::fs::read(&store).expect("read");
    assert_eq!(
        gc_store(&store, std::slice::from_ref(&full)).expect("gc"),
        0
    );
    assert_eq!(std::fs::read(&store).expect("read"), before);

    // Narrow the grid: the dropped mechanism's cells are garbage now.
    let narrowed = full.with_mechanisms(vec![secure_bp::isolation::Mechanism::Baseline]);
    let kept = plan(&narrowed).jobs.len();
    assert_eq!(
        gc_store(&store, std::slice::from_ref(&narrowed)).expect("gc"),
        total - kept
    );
    // The surviving store still resumes the narrowed spec completely.
    let resumed = narrowed.run_with(&opts).expect("resume");
    assert_eq!((resumed.executed, resumed.skipped), (0, kept));
    std::fs::remove_file(&store).expect("cleanup");
}
