//! Integration tests over the sweep engine: plan dedup, determinism,
//! equivalence with the direct overhead helpers, and seed derivation.

use proptest::prelude::*;

use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{single_overhead, smt_overhead, CoreConfig, SwitchInterval, WorkBudget};
use secure_bp::sweep::{cases_from, plan, CaseSpec, SweepSpec};
use secure_bp::trace::{cases_single, cases_smt2};

fn quick_single_spec() -> SweepSpec {
    SweepSpec::single("engine test")
        .with_cases(cases_from(&cases_single()[..2]))
        .with_intervals(vec![SwitchInterval::M8])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_budget(WorkBudget::quick())
        .with_master_seed(0xeeee)
}

#[test]
fn fig07_grid_plans_m_plus_one_jobs_per_group() {
    // M = 2 mechanisms, I = 3 intervals, C = 12 cases, S = 1 seed: the old
    // runners simulated 2·M·I·C·S = 144 runs, the planner schedules
    // (M+1)·I·C·S = 108 with exactly one baseline per group.
    let spec = SweepSpec::single("fig07 grid")
        .with_mechanisms(vec![Mechanism::xor_btb(), Mechanism::noisy_xor_btb()]);
    let p = plan(&spec);
    assert_eq!(p.jobs.len(), (2 + 1) * 3 * 12);
    assert_eq!(p.baseline_jobs(), 3 * 12);
}

#[test]
fn same_spec_and_seed_give_byte_identical_reports() {
    let spec = quick_single_spec().with_seeds(2);
    let a = spec.run().expect("first run");
    let b = spec.run().expect("second run");
    assert_eq!(a, b);
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_table(), b.to_table());
}

#[test]
fn engine_reproduces_the_direct_single_core_overhead_path() {
    // The engine's per-cell overheads must equal single_overhead() run with
    // the same derived group seed — same sims, shared baseline.
    let spec = quick_single_spec();
    let p = plan(&spec);
    let report = spec.run().expect("sweep");
    for (ci, case) in cases_single()[..2].iter().enumerate() {
        // One interval and one seed replica: group index == case index.
        let seed = p.groups[ci].seed;
        for mech in [Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()] {
            let direct = single_overhead(
                case,
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                mech,
                SwitchInterval::M8,
                WorkBudget::quick(),
                seed,
            )
            .expect("direct run");
            let cell = report
                .cell(mech.label(), "Gshare", "8M", case.id)
                .expect("cell present");
            assert_eq!(
                cell.mean,
                direct,
                "{} {} engine vs direct",
                mech.label(),
                case.id
            );
        }
    }
}

#[test]
fn engine_reproduces_the_direct_smt_overhead_path() {
    let case = &cases_smt2()[0];
    let spec = SweepSpec::smt("smt equivalence")
        .with_cases(vec![CaseSpec::from(case)])
        .with_mechanisms(vec![Mechanism::CompleteFlush])
        .with_budget(WorkBudget::quick())
        .with_master_seed(9);
    let p = plan(&spec);
    let report = spec.run().expect("sweep");
    let direct = smt_overhead(
        &[case.target, case.background],
        CoreConfig::gem5(),
        PredictorKind::Tournament,
        Mechanism::CompleteFlush,
        SwitchInterval::M8,
        WorkBudget::quick(),
        p.groups[0].seed,
    )
    .expect("direct run");
    let cell = report
        .cell("CF", "Tournament", "8M", case.id)
        .expect("cell present");
    assert_eq!(cell.mean, direct);
}

#[test]
fn baseline_vs_itself_is_zero_through_the_engine() {
    // A mechanisms list holding only Baseline plans the baselines alone;
    // adding CF compares against them. Baseline records carry no overhead.
    let report = quick_single_spec().run().expect("sweep");
    for rec in report.records_for("Baseline") {
        assert!(rec.overhead.is_none());
        assert!(rec.cycles > 0.0);
    }
}

proptest! {
    /// Derived per-group seeds are pairwise distinct across the
    /// (case, seed replica) grid for arbitrary master seeds and grid
    /// shapes — and shared across the interval/predictor axes, so those
    /// columns compare identical workload streams.
    #[test]
    fn derived_group_seeds_are_pairwise_distinct(
        master in any::<u64>(),
        np in 1usize..=2,
        ni in 1usize..=3,
        nc in 1usize..=4,
        ns in 1u32..=3,
    ) {
        let spec = SweepSpec::single("prop")
            .with_predictors(PredictorKind::ALL[..np].to_vec())
            .with_intervals(SwitchInterval::ALL[..ni].to_vec())
            .with_cases(cases_from(&cases_single()[..nc]))
            .with_seeds(ns)
            .with_master_seed(master);
        let p = plan(&spec);
        let mut by_stream = std::collections::HashMap::new();
        for g in &p.groups {
            let seed = *by_stream.entry((g.case_index, g.seed_index)).or_insert(g.seed);
            prop_assert_eq!(g.seed, seed, "same (case, replica) must share a stream");
        }
        let distinct: std::collections::HashSet<u64> = by_stream.values().copied().collect();
        prop_assert_eq!(distinct.len(), nc * ns as usize, "streams must be pairwise distinct");
        prop_assert_eq!(p.groups.len(), np * ni * nc * ns as usize);
    }
}
