//! Pins the telemetry hard invariant: recording is **observation-only**.
//! Every artifact the pipeline produces — report tables, JSONL records,
//! persisted sweep stores — must be byte-identical with telemetry on,
//! off, or at any parallelism, and the deterministic projection of the
//! recorded timeline must itself be byte-identical across
//! window-threads settings (span ids derive from (shard, job, seq),
//! never wall clock).
//!
//! The telemetry sink is process-global, so every test serializes on
//! one lock and leaves the sink disabled behind itself.

use std::path::PathBuf;
use std::sync::Mutex;

use secure_bp::isolation::Mechanism;
use secure_bp::sim::{SamplingPlan, SwitchInterval, WorkBudget};
use secure_bp::sweep::{CaseSpec, RunOptions, SweepSpec};
use secure_bp::telemetry;

/// Serializes sink access across the test threads of this binary.
static SINK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in another test poisons the lock; the sink
    // state is still fine to reuse after `disable()`.
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sbp_tel_eq_{}_{name}", std::process::id()))
}

/// A small exact-simulation grid (one baseline + two mechanism cells).
fn quick_spec() -> SweepSpec {
    SweepSpec::single("telemetry equivalence")
        .with_cases(vec![CaseSpec::pair("c1", "gcc", "calculix")])
        .with_intervals(vec![SwitchInterval::M8])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_budget(WorkBudget::quick())
}

/// The same grid under the sampled functional-gap estimator — the path
/// with warm/window caches and per-window telemetry.
fn sampled_spec() -> SweepSpec {
    quick_spec().with_sampling(Some(SamplingPlan::quick_functional()))
}

#[test]
fn reports_are_byte_identical_with_telemetry_on_and_off() {
    let _guard = lock();
    telemetry::disable();
    let plain = quick_spec().run().expect("plain run");

    telemetry::enable("equivalence", 1, None);
    let observed = quick_spec().run().expect("observed run");
    let events = telemetry::take_events();
    telemetry::disable();

    assert!(!events.is_empty(), "telemetry recorded nothing");
    assert_eq!(
        observed.to_table(),
        plain.to_table(),
        "telemetry changed the report table"
    );
    assert_eq!(
        observed.to_jsonl(),
        plain.to_jsonl(),
        "telemetry changed the JSONL records"
    );
    assert_eq!(
        observed.to_csv(),
        plain.to_csv(),
        "telemetry changed the CSV emitter"
    );
}

#[test]
fn sweep_stores_are_byte_identical_with_telemetry_on_and_off() {
    let _guard = lock();
    telemetry::disable();
    let plain_store = tmp("store_plain.jsonl");
    let observed_store = tmp("store_observed.jsonl");
    let sidecar = tmp("store_sidecar.jsonl");
    for p in [&plain_store, &observed_store, &sidecar] {
        let _ = std::fs::remove_file(p);
    }

    quick_spec()
        .run_with(&RunOptions {
            store: Some(plain_store.clone()),
            shard: None,
        })
        .expect("plain store run");

    telemetry::enable("equivalence", 1, Some(&sidecar));
    quick_spec()
        .run_with(&RunOptions {
            store: Some(observed_store.clone()),
            shard: None,
        })
        .expect("observed store run");
    telemetry::disable();

    let plain = std::fs::read(&plain_store).expect("plain store bytes");
    let observed = std::fs::read(&observed_store).expect("observed store bytes");
    assert_eq!(plain, observed, "telemetry changed the persisted store");
    assert!(
        std::fs::metadata(&sidecar)
            .map(|m| m.len() > 0)
            .unwrap_or(false),
        "sidecar stream was written"
    );
    let events = telemetry::read_events(&sidecar).expect("sidecar parses");
    telemetry::validate(&events).expect("sidecar validates");

    for p in [&plain_store, &observed_store, &sidecar] {
        std::fs::remove_file(p).expect("cleanup");
    }
}

#[test]
fn deterministic_projection_is_invariant_across_window_threads() {
    let _guard = lock();
    telemetry::disable();

    let mut projections = Vec::new();
    for threads in [1usize, 3] {
        secure_bp::sweep::set_window_threads(threads);
        telemetry::enable("equivalence", 1, None);
        let report = sampled_spec().run().expect("sampled run");
        let events = telemetry::take_events();
        telemetry::disable();
        let lines: Vec<String> = telemetry::canonical_projection(&events)
            .iter()
            .map(telemetry::Event::to_line)
            .collect();
        assert!(!lines.is_empty(), "projection empty at {threads} threads");
        projections.push((report.to_jsonl(), lines.join("\n")));
    }
    secure_bp::sweep::set_window_threads(1);

    let (report_1, proj_1) = &projections[0];
    let (report_3, proj_3) = &projections[1];
    assert_eq!(report_1, report_3, "window threads changed the report");
    assert_eq!(
        proj_1, proj_3,
        "window threads changed the deterministic projection"
    );
    // The projection keeps only deterministic events, renumbered.
    for line in proj_1.lines() {
        let event = telemetry::Event::parse_line(line).expect("projection line parses");
        assert!(event.det, "advisory event survived the projection");
        assert_eq!(event.ts_us, 0, "timestamp survived the projection");
    }
}
