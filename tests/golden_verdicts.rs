//! Golden-file regression tests for the conformance emitters: the
//! smoke-entry report + verdict tables are checked in under
//! `tests/golden/` and byte-compared against fresh runs, so any drift in
//! the table/JSONL emitters (column widths, float formatting, status
//! labels, summary wording) is caught in tier-1 rather than discovered
//! downstream.
//!
//! The inputs are pinned to be `SBP_SCALE`-independent: the attack slice
//! carries an explicit trial count, and the sim slice's work budget is
//! overridden with a fixed value (the catalog's own budget scales with
//! the environment). The oracle is evaluated at an explicit scale of 1.0
//! for the same reason. To regenerate after an intentional emitter
//! change, run with `SBP_UPDATE_GOLDEN=1` and review the diff.

use std::path::PathBuf;

use secure_bp::campaign::{expect, Catalog, CatalogEntry};
use secure_bp::sim::WorkBudget;
use secure_bp::sweep::check_report_at;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against the checked-in golden file, rewriting
/// it instead when `SBP_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SBP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with SBP_UPDATE_GOLDEN=1 to (re)generate",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden file; if the emitter change is \
         intentional, regenerate with SBP_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Report table + verdict table of one entry's report, evaluated at a
/// pinned scale of 1.0 (what the golden files store).
fn rendered(entry: &CatalogEntry, report: &secure_bp::types::SweepReport) -> String {
    let table = check_report_at(report, &entry.expectations(), entry.name, 1.0);
    format!("{}{}", report.to_table(), table.to_table())
}

#[test]
fn smoke_attack_tables_match_the_golden_file() {
    let entry = Catalog::get("smoke_attack").expect("registered");
    // The catalog spec verbatim: attack grids are scale-independent.
    let report = entry.spec().run().expect("attack sweep");
    assert_golden("smoke_attack.txt", &rendered(entry, &report));
}

#[test]
fn smoke_attack_verdict_jsonl_matches_the_golden_file() {
    let entry = Catalog::get("smoke_attack").expect("registered");
    let report = entry.spec().run().expect("attack sweep");
    let table = check_report_at(&report, &entry.expectations(), entry.name, 1.0);
    let jsonl = table.to_jsonl();
    // The emitters must agree with the parser before they earn a golden.
    assert_eq!(
        expect::VerdictTable::from_jsonl(&jsonl).expect("roundtrip"),
        table
    );
    assert_golden("smoke_attack.verdict.jsonl", &jsonl);
}

#[test]
fn smoke_single_tables_match_the_golden_file() {
    let entry = Catalog::get("smoke_single").expect("registered");
    // Pin the work budget: the catalog constructor scales it with
    // SBP_SCALE, and golden bytes must not depend on the environment.
    let spec = entry.spec().with_budget(WorkBudget {
        warmup: 20_000,
        measure: 1_000_000,
    });
    let report = spec.run().expect("sim sweep");
    assert_golden("smoke_single.txt", &rendered(entry, &report));
}
