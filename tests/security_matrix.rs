//! End-to-end security assertions: the load-bearing cells of the paper's
//! Table 1, verified with the PoC attack campaigns (reduced trial counts
//! for test speed; the full matrix is the `tab01_security_matrix` bench).

use secure_bp::attack::{
    BranchScope, BranchShadowing, ReferenceBranchScope, Sbpa, SpectreV2, Verdict,
};
use secure_bp::isolation::Mechanism;

const TRIALS: u64 = 700;

#[test]
fn baseline_is_broken_everywhere() {
    assert_eq!(
        SpectreV2::new(Mechanism::Baseline, false)
            .run(TRIALS, 1)
            .verdict(),
        Verdict::NoProtection
    );
    assert_eq!(
        BranchScope::new(Mechanism::Baseline, false)
            .run(TRIALS, 2)
            .verdict(),
        Verdict::NoProtection
    );
    assert_eq!(
        Sbpa::new(Mechanism::Baseline, false)
            .run(TRIALS, 3)
            .verdict(),
        Verdict::NoProtection
    );
    assert_eq!(
        BranchShadowing::new(Mechanism::Baseline, true)
            .run(TRIALS, 4)
            .verdict(),
        Verdict::NoProtection
    );
}

#[test]
fn noisy_xor_bp_defends_the_paper_cells() {
    // Single-threaded: everything defended.
    assert_eq!(
        SpectreV2::new(Mechanism::noisy_xor_bp(), false)
            .run(TRIALS, 5)
            .verdict(),
        Verdict::Defend
    );
    assert_eq!(
        BranchScope::new(Mechanism::noisy_xor_bp(), false)
            .run(TRIALS, 6)
            .verdict(),
        Verdict::Defend
    );
    assert_eq!(
        Sbpa::new(Mechanism::noisy_xor_bp(), false)
            .run(TRIALS, 7)
            .verdict(),
        Verdict::Defend
    );
    // SMT reuse: defended; SMT contention: at most Mitigate.
    assert_eq!(
        SpectreV2::new(Mechanism::noisy_xor_bp(), true)
            .run(TRIALS, 8)
            .verdict(),
        Verdict::Defend
    );
    let smt_contention = Sbpa::new(Mechanism::noisy_xor_bp(), true).run(TRIALS, 9);
    assert_ne!(
        smt_contention.verdict(),
        Verdict::NoProtection,
        "rate {}",
        smt_contention.success_rate
    );
}

#[test]
fn flush_mechanisms_lose_protection_on_smt() {
    // The paper's core criticism of flushing: no trigger fires between
    // concurrent SMT threads.
    assert_eq!(
        SpectreV2::new(Mechanism::CompleteFlush, true)
            .run(TRIALS, 10)
            .verdict(),
        Verdict::NoProtection
    );
    assert_eq!(
        BranchScope::new(Mechanism::CompleteFlush, true)
            .run(TRIALS, 11)
            .verdict(),
        Verdict::NoProtection
    );
    assert_eq!(
        Sbpa::new(Mechanism::PreciseFlush, true)
            .run(TRIALS, 12)
            .verdict(),
        Verdict::NoProtection
    );
}

#[test]
fn xor_btb_contention_gap_between_single_thread_and_smt() {
    // Table 1: XOR-BTB defends single-threaded contention (keys rotate
    // between prime and probe) but not SMT contention (evictions are
    // content-independent).
    assert_eq!(
        Sbpa::new(Mechanism::xor_btb(), false)
            .run(TRIALS, 13)
            .verdict(),
        Verdict::Defend
    );
    assert_eq!(
        Sbpa::new(Mechanism::xor_btb(), true)
            .run(TRIALS, 14)
            .verdict(),
        Verdict::NoProtection
    );
}

#[test]
fn enhanced_slices_close_the_reference_branch_hole() {
    // Scenario 4: plain XOR-PHT leaks through fixed-slice cancellation;
    // Enhanced-XOR-PHT does not.
    let plain = ReferenceBranchScope::new(Mechanism::xor_pht(), false).run(TRIALS, 15);
    let enhanced = ReferenceBranchScope::new(Mechanism::enhanced_xor_pht(), false).run(TRIALS, 16);
    assert!(
        plain.success_rate > 0.9,
        "plain XOR-PHT should leak, rate {}",
        plain.success_rate
    );
    assert_eq!(
        enhanced.verdict(),
        Verdict::Defend,
        "rate {}",
        enhanced.success_rate
    );
}

#[test]
fn poc_accuracy_bands_match_section_5_5() {
    // Baseline ≈ 96-97 %, defended < 2 %.
    let btb = SpectreV2::new(Mechanism::Baseline, false).run(2_000, 17);
    assert!(
        (0.92..=1.0).contains(&btb.success_rate),
        "{}",
        btb.success_rate
    );
    let btb_x = SpectreV2::new(Mechanism::xor_bp(), false).run(2_000, 17);
    assert!(btb_x.success_rate < 0.02, "{}", btb_x.success_rate);
    let pht = BranchScope::new(Mechanism::Baseline, false).run(2_000, 18);
    assert!(
        (0.92..=1.0).contains(&pht.success_rate),
        "{}",
        pht.success_rate
    );
}
