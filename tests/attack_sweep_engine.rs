//! Equivalence of the engine-driven attack sweeps with the direct PoC
//! campaign APIs, and reproduction of the pre-engine Table 1 / §5.5
//! results through the declarative specs.

use secure_bp::attack::{AttackKind, Verdict};
use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sweep::{attack_cell_outcome, plan, SweepMode, SweepSpec};

/// Every engine record must equal a direct `AttackKind::run` call with
/// the job's own parameters — the engine adds planning and aggregation,
/// never a different experiment.
#[test]
fn engine_reproduces_the_direct_attack_path_exactly() {
    let spec = SweepSpec::attack("equivalence")
        .with_attacks(vec![
            AttackKind::SpectreV2,
            AttackKind::BranchScope,
            AttackKind::Sbpa,
        ])
        .with_mechanisms(vec![
            Mechanism::Baseline,
            Mechanism::CompleteFlush,
            Mechanism::noisy_xor_bp(),
        ])
        .with_trials(250)
        .with_seeds(2);
    let p = plan(&spec);
    let report = spec.run().expect("attack sweep");
    assert_eq!(report.records.len(), p.jobs.len());
    for (job, rec) in p.jobs.iter().zip(&report.records) {
        let a = job.attack().expect("attack job");
        let direct = a
            .attack
            .run(a.mechanism, a.predictor, a.smt, a.trials, a.seed);
        let engine = rec.attack.as_ref().expect("attack record");
        assert_eq!(engine.success_rate, direct.success_rate, "{:?}", a);
        assert_eq!(engine.chance, direct.chance);
        assert_eq!(engine.trials, direct.trials);
        assert_eq!(engine.verdict, direct.verdict().label());
        assert_eq!(rec.seed, a.seed);
    }
}

/// The engine shares one trial stream per campaign cell across all
/// mechanism series — the attack-side analog of the sim planner's shared
/// baseline streams (and of the old harness's one-seed-per-attack rows).
#[test]
fn mechanism_series_of_one_campaign_share_the_trial_stream() {
    let spec = SweepSpec::attack("stream sharing")
        .with_attacks(vec![AttackKind::BranchScope])
        .with_mechanisms(vec![Mechanism::Baseline, Mechanism::CompleteFlush])
        .with_attack_modes(vec![SweepMode::SingleCore])
        .with_trials(100);
    let report = spec.run().expect("sweep");
    let seeds: Vec<u64> = report.records.iter().map(|r| r.seed).collect();
    assert_eq!(seeds.len(), 2);
    assert_eq!(seeds[0], seeds[1], "same campaign cell, same stream");
}

/// The load-bearing Table 1 verdicts, through the engine grid at the
/// bench's own trial count — the pre-refactor `tab01_security_matrix`
/// expectations, now produced by `SweepSpec::attack` construction.
#[test]
fn table1_verdicts_reproduce_through_the_engine() {
    let btb = SweepSpec::attack("tab01 btb")
        .with_attacks(vec![
            AttackKind::BranchShadowing,
            AttackKind::SpectreV2,
            AttackKind::Sbpa,
        ])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_btb()])
        .with_trials(1500)
        .run()
        .expect("BTB sweep");
    let v = |mech: Mechanism, mode: &str, attack: AttackKind| {
        attack_cell_outcome(&btb, mech.label(), "Gshare", mode, attack.label())
            .expect("cell")
            .verdict()
    };
    // CF: defends the time-sliced core, collapses on SMT (no switches).
    assert_eq!(
        v(
            Mechanism::CompleteFlush,
            "single-core",
            AttackKind::SpectreV2
        ),
        Verdict::Defend
    );
    assert_eq!(
        v(Mechanism::CompleteFlush, "smt", AttackKind::SpectreV2),
        Verdict::NoProtection
    );
    assert_eq!(
        v(Mechanism::CompleteFlush, "smt", AttackKind::BranchShadowing),
        Verdict::NoProtection
    );
    // Noisy-XOR-BTB: defends SMT reuse, at worst mitigates SMT contention.
    assert_eq!(
        v(Mechanism::noisy_xor_btb(), "smt", AttackKind::SpectreV2),
        Verdict::Defend
    );
    assert_ne!(
        v(Mechanism::noisy_xor_btb(), "smt", AttackKind::Sbpa),
        Verdict::NoProtection
    );
}

/// §5.5's accuracy bands through the engine: baseline training ≈ 96-97 %,
/// XOR isolation < 2 % (the paper's "<1 %" at 10 000 iterations; wider
/// band here for the reduced trial count).
#[test]
fn sec55_accuracy_bands_reproduce_through_the_engine() {
    let report = SweepSpec::attack("sec55")
        .with_attacks(vec![AttackKind::SpectreV2])
        .with_attack_modes(vec![SweepMode::SingleCore])
        .with_mechanisms(vec![Mechanism::Baseline, Mechanism::xor_bp()])
        .with_trials(2_000)
        .with_master_seed(13)
        .run()
        .expect("sweep");
    let base = report
        .cell("Baseline", "Gshare", "single-core", "SpectreV2")
        .expect("cell");
    let xor = report
        .cell("XOR-BP", "Gshare", "single-core", "SpectreV2")
        .expect("cell");
    assert!((0.92..=1.0).contains(&base.mean), "{}", base.mean);
    assert!(xor.mean < 0.02, "{}", xor.mean);
}

/// Attack sweeps ignore the predictor for the bimodal-harness campaigns
/// and honor it for the front-end campaigns.
#[test]
fn predictor_axis_reaches_the_harness() {
    let outcome =
        |p: PredictorKind| AttackKind::BranchScope.run(Mechanism::Baseline, p, false, 300, 5);
    assert_eq!(
        outcome(PredictorKind::Gshare),
        outcome(PredictorKind::TageScL),
        "BranchScope attacks the bimodal harness regardless of predictor"
    );
}
