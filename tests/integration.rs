//! Cross-crate integration tests: mechanism semantics observed through the
//! full stack (trace generator → timing model → secure front-end).

use secure_bp::isolation::{FrontendConfig, Mechanism, SecureFrontend};
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{
    run_single_case, run_smt, CoreConfig, SingleCoreSim, SmtSim, SwitchInterval, WorkBudget,
};
use secure_bp::trace::{cases_single, cases_smt2, BenchmarkCase};
use secure_bp::types::{BranchInfo, BranchKind, CoreEvent, Pc, ThreadId};

const QUICK: WorkBudget = WorkBudget {
    warmup: 30_000,
    measure: 250_000,
};

#[test]
fn single_core_runs_are_deterministic_across_mechanisms() {
    let case = cases_single()[3]; // namd+sphinx3
    for mech in [
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::noisy_xor_bp(),
    ] {
        let a = run_single_case(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mech,
            SwitchInterval::M8,
            QUICK,
            1234,
        )
        .expect("run");
        let b = run_single_case(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mech,
            SwitchInterval::M8,
            QUICK,
            1234,
        )
        .expect("run");
        assert_eq!(a, b, "{mech} must be deterministic");
    }
}

#[test]
fn mechanisms_preserve_functional_behaviour() {
    // Security must not change *what* executes — only the cycle count.
    // The measured instruction stream is identical across mechanisms.
    let case = cases_single()[5];
    let mut counts = Vec::new();
    for mech in [
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::PreciseFlush,
        Mechanism::xor_bp(),
        Mechanism::noisy_xor_bp(),
    ] {
        let s = run_single_case(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Tournament,
            mech,
            SwitchInterval::M8,
            QUICK,
            77,
        )
        .expect("run");
        counts.push((s.instructions, s.cond_branches));
    }
    for w in counts.windows(2) {
        assert_eq!(
            w[0], w[1],
            "instruction stream must not depend on the mechanism"
        );
    }
}

#[test]
fn baseline_is_never_slower_than_itself_with_protection_on_average() {
    // Sanity: protections cost cycles (allowing small negative noise).
    let case = cases_single()[0]; // gcc+calculix, the sensitive pair
    let base = run_single_case(
        &case,
        CoreConfig::fpga(),
        PredictorKind::Gshare,
        Mechanism::Baseline,
        SwitchInterval::M4,
        WorkBudget {
            warmup: 50_000,
            measure: 600_000,
        },
        5,
    )
    .expect("run");
    let xor = run_single_case(
        &case,
        CoreConfig::fpga(),
        PredictorKind::Gshare,
        Mechanism::noisy_xor_bp(),
        SwitchInterval::M4,
        WorkBudget {
            warmup: 50_000,
            measure: 600_000,
        },
        5,
    )
    .expect("run");
    let overhead = xor.cycles as f64 / base.cycles as f64 - 1.0;
    assert!(overhead > -0.01, "Noisy-XOR-BP helped?! {overhead}");
    assert!(
        overhead < 0.15,
        "Noisy-XOR-BP overhead implausible: {overhead}"
    );
}

#[test]
fn smt_complete_flush_destroys_cross_thread_state_noisy_xor_does_not() {
    // The paper's central SMT argument, end-to-end.
    for (mech, expect_survives) in [
        (Mechanism::CompleteFlush, false),
        (Mechanism::noisy_xor_bp(), true),
    ] {
        let mut fe =
            SecureFrontend::new(FrontendConfig::paper_gem5(PredictorKind::Gshare, mech, 2));
        let t1_branch = BranchInfo::new(
            ThreadId::new(1),
            Pc::new(0x9_0000),
            BranchKind::IndirectJump,
        );
        fe.update_target(t1_branch, Pc::new(0xaa00));
        // Timer fires on hardware thread 0 only.
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        let survived = fe.predict_target(t1_branch) == Some(Pc::new(0xaa00));
        assert_eq!(
            survived, expect_survives,
            "{mech}: thread-1 state survival should be {expect_survives}"
        );
    }
}

#[test]
fn smt_throughput_is_sane_for_all_predictors() {
    let c = cases_smt2()[0];
    for kind in PredictorKind::ALL {
        let r = run_smt(
            &[c.target, c.background],
            CoreConfig::gem5(),
            kind,
            Mechanism::Baseline,
            SwitchInterval::M8,
            WorkBudget {
                warmup: 100_000,
                measure: 1_000_000,
            },
            3,
        )
        .expect("run");
        let ipc = r.instructions as f64 / r.cycles;
        assert!(ipc > 0.5 && ipc < 6.0, "{kind} SMT IPC {ipc}");
    }
}

#[test]
fn predictor_accuracy_ordering_holds_end_to_end() {
    // Gshare must be the least accurate of the four on a real workload mix
    // (the full MPKI ordering is a statistical property checked by the
    // calibration binary; here we pin the coarse relation).
    let c = BenchmarkCase {
        id: "t",
        target: "gcc",
        background: "namd",
    };
    let budget = WorkBudget {
        warmup: 150_000,
        measure: 800_000,
    };
    let mpki = |kind: PredictorKind| {
        run_single_case(
            &c,
            CoreConfig::fpga(),
            kind,
            Mechanism::Baseline,
            SwitchInterval::M8,
            budget,
            9,
        )
        .expect("run")
        .mpki()
    };
    let gshare = mpki(PredictorKind::Gshare);
    let tage_sc_l = mpki(PredictorKind::TageScL);
    assert!(
        gshare > tage_sc_l,
        "gshare ({gshare:.2}) must trail TAGE-SC-L ({tage_sc_l:.2})"
    );
}

#[test]
fn switch_interval_off_disables_the_timer() {
    let mut sim = SingleCoreSim::new(
        CoreConfig::fpga(),
        PredictorKind::Gshare,
        Mechanism::CompleteFlush,
        SwitchInterval::Off,
        &["gcc", "calculix"],
        3,
    )
    .expect("sim");
    let stats = sim.run_target(10_000, 100_000);
    assert_eq!(stats.context_switches, 0, "Off interval must never switch");
}

#[test]
fn smt_sim_uses_se_mode() {
    // gem5 SE mode: syscalls are emulated, so SMT threads never see
    // privilege switches.
    let mut sim = SmtSim::new(
        CoreConfig::gem5(),
        PredictorKind::Gshare,
        Mechanism::noisy_xor_bp(),
        SwitchInterval::M8,
        &["povray", "gcc"], // the two highest syscall-rate profiles
        11,
    )
    .expect("sim");
    let r = sim.run(10_000, 300_000);
    let priv_switches: u64 = r.per_thread.iter().map(|t| t.privilege_switches).sum();
    assert_eq!(
        priv_switches, 0,
        "SE mode must not produce privilege switches"
    );
}
