//! The analytical SRAM + XOR-overlay cost model.
//!
//! All quantities are in normalized technology units (gate equivalents for
//! area, FO4-ish delays for timing); only *ratios* are meaningful, which
//! is also all the paper reports.

use serde::{Deserialize, Serialize};

// --- Calibrated technology constants (normalized units) ---------------

/// Area of one SRAM bit cell.
const A_CELL: f64 = 1.0;
/// Area per decoder row driver.
const A_DECODE_ROW: f64 = 4.0;
/// Area per sense amplifier (one per read-port data bit).
const A_SENSE: f64 = 10.0;
/// Area per tag comparator bit.
const A_CMP: f64 = 6.0;
/// Area of one 2-input XOR gate (read-port overlay).
const A_XOR: f64 = 0.25;
/// Area of one key-register flip-flop bit.
const A_FF: f64 = 0.9;

/// Delay per decoder level (log2 of rows).
const D_DECODE: f64 = 30.0;
/// Wire/RC delay coefficient (∝ √(rows × width)).
const D_WIRE: f64 = 1.0;
/// Sense amplifier resolution time.
const D_SENSE: f64 = 50.0;
/// Tag compare delay.
const D_CMP: f64 = 40.0;
/// Intrinsic delay of the added XOR stage.
const D_XOR: f64 = 1.0;
/// Extra drive delay of the index-XOR stage, growing with the decoder
/// fan-out it must drive (∝ √rows).
const D_XOR_DRIVE: f64 = 3.5 / 16.0;

/// Geometry of a BTB macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BtbGeometry {
    /// Entries per way (rows).
    pub entries_per_way: usize,
    /// Associativity.
    pub ways: usize,
    /// Partial tag bits per entry.
    pub tag_bits: u32,
    /// Stored target bits per entry.
    pub target_bits: u32,
}

impl BtbGeometry {
    /// The paper's `2wN` geometries.
    pub fn two_way(entries_per_way: usize) -> Self {
        BtbGeometry {
            entries_per_way,
            ways: 2,
            tag_bits: 12,
            target_bits: 32,
        }
    }

    fn entry_bits(&self) -> u32 {
        self.tag_bits + self.target_bits
    }

    /// Total SRAM storage of the macro in bits.
    pub fn storage_bits(&self) -> u64 {
        self.entries_per_way as u64 * self.ways as u64 * self.entry_bits() as u64
    }
}

/// Geometry of one TAGE prediction table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhtGeometry {
    /// Entries (rows).
    pub entries: usize,
    /// Bits per entry (ctr + tag + u for a TAGE table).
    pub entry_bits: u32,
}

impl PhtGeometry {
    /// A TAGE tagged-table row of Table 5 (13-bit entries: 3-bit counter,
    /// 8-bit tag, 2-bit useful).
    pub fn tage(entries: usize) -> Self {
        PhtGeometry {
            entries,
            entry_bits: 13,
        }
    }

    /// Total SRAM storage of the macro in bits.
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * self.entry_bits as u64
    }
}

/// Base-macro vs. overlay cost decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Base macro area (normalized units).
    pub base_area: f64,
    /// Added overlay area.
    pub added_area: f64,
    /// Base critical-path delay (normalized units).
    pub base_delay: f64,
    /// Added overlay delay.
    pub added_delay: f64,
}

impl CostBreakdown {
    /// Relative area overhead (`added/base`).
    pub fn area_overhead(&self) -> f64 {
        self.added_area / self.base_area
    }

    /// Relative timing overhead.
    pub fn timing_overhead(&self) -> f64 {
        self.added_delay / self.base_delay
    }
}

/// The Noisy-XOR-BP overlay: content XOR per read-port bit, index XOR per
/// index bit, and the two 64-bit key registers per hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XorOverlay {
    /// Hardware thread contexts (key register pairs).
    pub threads: usize,
    /// Whether index encoding (Noisy) is included.
    pub index_encoding: bool,
}

impl XorOverlay {
    /// The single-thread Noisy-XOR-BP overlay of Table 5.
    pub fn noisy(threads: usize) -> Self {
        XorOverlay {
            threads,
            index_encoding: true,
        }
    }

    /// Storage bits of the per-thread key register pairs (two 64-bit keys
    /// per hardware thread).
    pub fn key_register_bits(&self) -> u64 {
        self.threads as u64 * 128
    }

    fn key_register_area(&self) -> f64 {
        self.key_register_bits() as f64 * A_FF
    }

    /// The key registers are a per-core resource shared by every predictor
    /// structure; each macro is charged an amortized share (the paper's
    /// per-macro percentages imply the same accounting).
    fn amortized_keys(&self, share: f64) -> f64 {
        self.key_register_area() * share
    }

    /// Costs of overlaying a BTB macro.
    pub fn btb_cost(&self, g: &BtbGeometry) -> CostBreakdown {
        let rows = g.entries_per_way as f64;
        let width = (g.entry_bits() * g.ways as u32) as f64;
        let bits = rows * width;
        let index_bits = (g.entries_per_way as f64).log2();

        let base_area = bits * A_CELL
            + rows * A_DECODE_ROW
            + width * A_SENSE
            + (g.tag_bits * g.ways as u32) as f64 * A_CMP;
        // Content XOR on each read-port bit + index XOR + key registers
        // (amortized over ~8 predictor structures sharing them).
        let mut added_area = width * A_XOR + index_bits * A_XOR + self.amortized_keys(1.0 / 8.0);
        if !self.index_encoding {
            added_area -= index_bits * A_XOR;
        }

        let base_delay = D_DECODE * index_bits + D_WIRE * bits.sqrt() + D_SENSE + D_CMP;
        let mut added_delay = D_XOR + D_XOR_DRIVE * rows.sqrt();
        if !self.index_encoding {
            added_delay = D_XOR;
        }
        CostBreakdown {
            base_area,
            added_area,
            base_delay,
            added_delay,
        }
    }

    /// Costs of overlaying one PHT/TAGE table macro.
    pub fn pht_cost(&self, g: &PhtGeometry) -> CostBreakdown {
        let rows = g.entries as f64;
        let width = g.entry_bits as f64;
        let bits = rows * width;
        let index_bits = rows.log2();

        let base_area = bits * A_CELL + rows * A_DECODE_ROW + width * A_SENSE;
        // Key registers are shared across the predictor's tables; charge
        // an amortized 1/6th (six tables in the paper's TAGE) here.
        let mut added_area = width * A_XOR + index_bits * A_XOR + self.amortized_keys(1.0 / 5.0);
        if !self.index_encoding {
            added_area -= index_bits * A_XOR;
        }

        let base_delay = D_DECODE * index_bits + D_WIRE * bits.sqrt() + D_SENSE;
        let mut added_delay = D_XOR + D_XOR_DRIVE * rows.sqrt();
        if !self.index_encoding {
            added_delay = D_XOR;
        }
        CostBreakdown {
            base_area,
            added_area,
            base_delay,
            added_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_area_overhead_shrinks_with_size() {
        let overlay = XorOverlay::noisy(1);
        let a128 = overlay.btb_cost(&BtbGeometry::two_way(128)).area_overhead();
        let a256 = overlay.btb_cost(&BtbGeometry::two_way(256)).area_overhead();
        let a512 = overlay.btb_cost(&BtbGeometry::two_way(512)).area_overhead();
        assert!(a128 > a256 && a256 > a512, "{a128} {a256} {a512}");
        // Paper band: 0.13 % – 0.24 %.
        for a in [a128, a256, a512] {
            assert!((0.0005..0.005).contains(&a), "area overhead {a}");
        }
    }

    #[test]
    fn btb_timing_overhead_grows_with_size() {
        let overlay = XorOverlay::noisy(1);
        let t128 = overlay
            .btb_cost(&BtbGeometry::two_way(128))
            .timing_overhead();
        let t256 = overlay
            .btb_cost(&BtbGeometry::two_way(256))
            .timing_overhead();
        let t512 = overlay
            .btb_cost(&BtbGeometry::two_way(512))
            .timing_overhead();
        assert!(t128 < t256 && t256 < t512, "{t128} {t256} {t512}");
        // Paper band: 0.70 % – 1.46 %.
        for t in [t128, t256, t512] {
            assert!((0.004..0.02).contains(&t), "timing overhead {t}");
        }
    }

    #[test]
    fn pht_timing_is_about_two_percent() {
        let overlay = XorOverlay::noisy(1);
        for entries in [1024, 2048, 4096] {
            let t = overlay
                .pht_cost(&PhtGeometry::tage(entries))
                .timing_overhead();
            assert!(
                (0.01..0.035).contains(&t),
                "PHT timing overhead {t} @{entries}"
            );
        }
    }

    #[test]
    fn pht_area_overhead_shrinks_with_size() {
        let overlay = XorOverlay::noisy(1);
        let a1k = overlay.pht_cost(&PhtGeometry::tage(1024)).area_overhead();
        let a4k = overlay.pht_cost(&PhtGeometry::tage(4096)).area_overhead();
        assert!(a1k > a4k, "{a1k} vs {a4k}");
        assert!((0.0001..0.01).contains(&a1k));
    }

    #[test]
    fn content_only_overlay_is_cheaper() {
        let noisy = XorOverlay::noisy(1);
        let plain = XorOverlay {
            threads: 1,
            index_encoding: false,
        };
        let g = BtbGeometry::two_way(256);
        assert!(plain.btb_cost(&g).added_delay < noisy.btb_cost(&g).added_delay);
        assert!(plain.btb_cost(&g).added_area < noisy.btb_cost(&g).added_area);
    }

    #[test]
    fn storage_bits_match_geometry() {
        assert_eq!(BtbGeometry::two_way(256).storage_bits(), 256 * 2 * 44);
        assert_eq!(PhtGeometry::tage(2048).storage_bits(), 2048 * 13);
        assert_eq!(XorOverlay::noisy(2).key_register_bits(), 256);
    }

    #[test]
    fn more_threads_cost_more_key_registers() {
        let g = BtbGeometry::two_way(256);
        let one = XorOverlay::noisy(1).btb_cost(&g).added_area;
        let four = XorOverlay::noisy(4).btb_cost(&g).added_area;
        assert!(four > one);
    }
}
