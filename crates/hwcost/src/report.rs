//! Table 5 row generation.

use serde::{Deserialize, Serialize};

use crate::model::{BtbGeometry, PhtGeometry, XorOverlay};

/// One row of the Table 5 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Configuration label ("2w256", "2048 entries/table", ...).
    pub config: String,
    /// Measured timing overhead (fraction).
    pub timing: f64,
    /// Measured area overhead (fraction).
    pub area: f64,
    /// The paper's reported timing overhead (fraction).
    pub paper_timing: f64,
    /// The paper's reported area overhead (fraction).
    pub paper_area: f64,
}

impl Table5Row {
    /// Formats the row for the harness output.
    pub fn format(&self) -> String {
        format!(
            "{:<22} timing {:>5.2}% (paper {:>5.2}%)   area {:>5.3}% (paper {:>5.3}%)",
            self.config,
            self.timing * 100.0,
            self.paper_timing * 100.0,
            self.area * 100.0,
            self.paper_area * 100.0
        )
    }
}

/// The BTB half of Table 5 (2-way BTBs of 128/256/512 entries per way).
pub fn table5_btb_rows() -> Vec<Table5Row> {
    let overlay = XorOverlay::noisy(1);
    let paper = [
        (128usize, 0.0070, 0.0024),
        (256, 0.0094, 0.0015),
        (512, 0.0146, 0.0013),
    ];
    paper
        .iter()
        .map(|&(entries, pt, pa)| {
            let c = overlay.btb_cost(&BtbGeometry::two_way(entries));
            Table5Row {
                config: format!("BTB 2w{entries}"),
                timing: c.timing_overhead(),
                area: c.area_overhead(),
                paper_timing: pt,
                paper_area: pa,
            }
        })
        .collect()
}

/// The PHT (TAGE) half of Table 5 (1K/2K/4K entries per table).
pub fn table5_pht_rows() -> Vec<Table5Row> {
    let overlay = XorOverlay::noisy(1);
    let paper = [
        (1024usize, 0.0210, 0.0011),
        (2048, 0.0198, 0.0009),
        (4096, 0.0201, 0.0003),
    ];
    paper
        .iter()
        .map(|&(entries, pt, pa)| {
            let c = overlay.pht_cost(&PhtGeometry::tage(entries));
            Table5Row {
                config: format!("PHT {entries}/table"),
                timing: c.timing_overhead(),
                area: c.area_overhead(),
                paper_timing: pt,
                paper_area: pa,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_configs() {
        assert_eq!(table5_btb_rows().len(), 3);
        assert_eq!(table5_pht_rows().len(), 3);
    }

    #[test]
    fn measured_values_are_within_the_papers_band() {
        for row in table5_btb_rows() {
            assert!(row.timing > 0.0 && row.timing < 0.03, "{}", row.format());
            assert!(row.area > 0.0 && row.area < 0.006, "{}", row.format());
        }
        for row in table5_pht_rows() {
            assert!(row.timing > 0.005 && row.timing < 0.04, "{}", row.format());
            assert!(row.area > 0.0 && row.area < 0.012, "{}", row.format());
        }
    }

    #[test]
    fn formatting_contains_both_values() {
        let row = &table5_btb_rows()[1];
        let s = row.format();
        assert!(s.contains("BTB 2w256"));
        assert!(s.contains("paper"));
    }
}
