//! # sbp-hwcost
//!
//! Analytical area and critical-path timing model for the Noisy-XOR-BP
//! hardware additions (the paper's Table 5, synthesized on TSMC 28 nm).
//!
//! The paper reports *relative* overheads of adding the XOR stages and key
//! registers to a BTB or TAGE PHT macro. We reproduce those ratios with a
//! standard analytical SRAM model (logic-gate units):
//!
//! * **area**: bit cells + row decoder + sense amplifiers vs. the added
//!   XOR gates (one per read-port data bit plus index bits) and the two
//!   64-bit key registers;
//! * **timing**: decoder depth, wordline/bitline RC (∝ √entries), sense
//!   and compare, vs. one added XOR stage whose drive requirement grows
//!   with the decoded fan-out (the index XOR feeds the decoder's full
//!   input load, which is why the paper's timing overhead *grows* with
//!   table size).
//!
//! Constants are in normalized gate-equivalent units, calibrated once
//! against Table 5's BTB `2w256` row; everything else is model output and
//! compared against the paper in `EXPERIMENTS.md`.

pub mod model;
pub mod report;

pub use model::{BtbGeometry, CostBreakdown, PhtGeometry, XorOverlay};
pub use report::{table5_btb_rows, table5_pht_rows, Table5Row};
