//! Deterministic pseudo random number generators.
//!
//! The paper assumes a dedicated hardware true random number generator
//! (Intel DRNG / POWER7+ style) feeding the thread-private key registers.
//! For reproducible simulation we model it with [`SplitMix64`] (seeding /
//! key derivation) and [`Xoshiro256`] (bulk stream generation). Both are
//! tiny, fast, well-studied generators; no cryptographic strength is claimed
//! or needed — the *simulation* only requires statistically uniform keys.

use serde::{Deserialize, Serialize};

/// SplitMix64: a 64-bit mixing generator, ideal for seeding and for
/// deriving independent sub-seeds from a master seed.
///
/// ```
/// use sbp_types::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Derives an independent sub-seed labeled by `stream`.
    ///
    /// Two different stream labels produce decorrelated seeds from the same
    /// master seed, so experiment components can be re-ordered or run in
    /// parallel without perturbing each other's randomness.
    pub fn derive(master: u64, stream: u64) -> u64 {
        let mut s = SplitMix64::new(master ^ stream.wrapping_mul(0xa076_1d64_78bd_642f));
        s.next_u64()
    }
}

impl Iterator for SplitMix64 {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_u64())
    }
}

/// xoshiro256++: the workhorse generator used by trace generation and the
/// modeled hardware key RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed with SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // use 128-bit multiply for negligible bias.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Draws from a geometric-ish distribution with the given mean, clamped
    /// to `[min, max]`; used for instruction gaps between branches.
    pub fn gap(&mut self, mean: f64, min: u32, max: u32) -> u32 {
        let u = self.next_f64().max(1e-12);
        let val = -mean * u.ln();
        (val as u32).clamp(min, max)
    }
}

impl Iterator for Xoshiro256 {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = SplitMix64::new(123).take(8).collect();
        let b: Vec<u64> = SplitMix64::new(123).take(8).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = SplitMix64::new(124).take(8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_known_value() {
        // Reference value for seed 0 from the canonical splitmix64.c.
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next_u64(), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn derive_streams_are_decorrelated() {
        let a = SplitMix64::derive(99, 0);
        let b = SplitMix64::derive(99, 1);
        assert_ne!(a, b);
        assert_eq!(a, SplitMix64::derive(99, 0));
    }

    #[test]
    fn xoshiro_uniformity_smoke() {
        let mut r = Xoshiro256::new(7);
        let n = 100_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += r.next_u64().count_ones() as u64;
        }
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 32.0).abs() < 0.2, "mean bits {mean_bits}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::new(11);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256::new(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn gap_respects_clamp() {
        let mut r = Xoshiro256::new(9);
        for _ in 0..5_000 {
            let g = r.gap(10.0, 2, 40);
            assert!((2..=40).contains(&g));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::new(1).next_below(0);
    }

    #[test]
    fn zero_seed_state_is_valid() {
        // Ensure the all-zero escape hatch produces a working generator.
        let mut r = Xoshiro256::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(a != 0 || b != 0);
    }
}
