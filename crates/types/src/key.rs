//! Thread-private keys and the content/index encoding mechanics.
//!
//! The paper's mechanism hinges on two thread-private random numbers:
//!
//! * the **content key** encodes every word written to a predictor table and
//!   decodes every word read back (XOR-BP);
//! * the **index key** is XORed into the table index on every lookup
//!   (Noisy-XOR-BP), disrupting the PC-to-entry correspondence.
//!
//! [`KeyCtx`] bundles the active hardware thread's keys with the enabled
//! feature set; it is threaded through every table access of every
//! predictor. A *disabled* context is the baseline: it performs no
//! transformation at all, so the unprotected predictors are bit-identical to
//! conventional designs.
//!
//! The encoding operation only needs to be cheaply reversible (paper §5.4);
//! [`Codec`] offers plain XOR plus the shift-scrambling and small-LUT
//! alternatives the paper mentions.

use serde::{Deserialize, Serialize};

use crate::ids::{mask_u64, ThreadId};

/// A content/index key register pair, one per hardware thread context.
///
/// In hardware these are software-invisible registers refreshed from a
/// dedicated RNG on every context switch and privilege switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KeyPair {
    /// Key used to encode table contents (tags, targets, counters).
    pub content: u64,
    /// Key used to randomize table indices.
    pub index: u64,
}

impl KeyPair {
    /// Creates a key pair from explicit values.
    pub const fn new(content: u64, index: u64) -> Self {
        KeyPair { content, index }
    }

    /// Derives both keys from a single hardware random number, as the paper
    /// suggests ("different (possibly overlapping) portions" of one random
    /// number). The word is mixed first so that even low-entropy inputs
    /// (e.g. counters in tests) yield full-width keys.
    pub fn from_random(word: u64) -> Self {
        let mut sm = crate::rng::SplitMix64::new(word);
        let content = sm.next_u64();
        let index = sm.next_u64();
        KeyPair { content, index }
    }

    /// The all-zero pair used by the baseline (encoding with zero keys is
    /// the identity for every codec).
    pub const fn zero() -> Self {
        KeyPair {
            content: 0,
            index: 0,
        }
    }
}

/// Reversible encoding operation applied to table contents.
///
/// All codecs are bijective on the `width`-bit value space for any fixed
/// key, which is the only property the mechanism requires (paper §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Plain XOR with the key slice (the paper's main proposal).
    #[default]
    Xor,
    /// XOR followed by a key-dependent bit rotation within the word.
    ShiftScramble,
    /// XOR followed by a fixed 4-bit S-box substitution per nibble.
    Lut,
}

/// PRESENT cipher S-box: a well-studied 4-bit bijection.
const SBOX: [u8; 16] = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2];
/// Inverse of [`SBOX`].
const SBOX_INV: [u8; 16] = [5, 0xE, 0xF, 8, 0xC, 1, 2, 0xD, 0xB, 4, 6, 3, 0, 7, 9, 0xA];

impl Codec {
    /// Encodes a `width`-bit word with the given key slice.
    pub fn encode(self, word: u64, key: u64, width: u32) -> u64 {
        let m = mask_u64(width);
        let x = (word ^ key) & m;
        match self {
            Codec::Xor => x,
            Codec::ShiftScramble => rotate_within(x, rot_amount(key, width), width),
            Codec::Lut => substitute(x, width, &SBOX),
        }
    }

    /// Decodes a `width`-bit word with the given key slice.
    pub fn decode(self, word: u64, key: u64, width: u32) -> u64 {
        let m = mask_u64(width);
        let x = word & m;
        match self {
            Codec::Xor => (x ^ key) & m,
            Codec::ShiftScramble => {
                let r = rot_amount(key, width);
                (rotate_within(x, width - (r % width.max(1)), width) ^ key) & m
            }
            Codec::Lut => (substitute(x, width, &SBOX_INV) ^ key) & m,
        }
    }
}

/// Key-derived rotation amount in `[0, width)`.
fn rot_amount(key: u64, width: u32) -> u32 {
    if width <= 1 {
        return 0;
    }
    ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58) as u32) % width
}

/// Rotates the low `width` bits of `x` left by `r` (bits above `width` are
/// zeroed).
fn rotate_within(x: u64, r: u32, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let r = r % width;
    let m = mask_u64(width);
    if r == 0 {
        x & m
    } else {
        ((x << r) | ((x & m) >> (width - r))) & m
    }
}

/// Applies a 4-bit S-box to every full nibble of the low `width` bits; a
/// partial top nibble is left as-is (it was already XOR-whitened).
fn substitute(x: u64, width: u32, sbox: &[u8; 16]) -> u64 {
    let full_nibbles = width / 4;
    let mut out = x;
    for n in 0..full_nibbles {
        let shift = n * 4;
        let nib = ((x >> shift) & 0xf) as usize;
        out = (out & !(0xfu64 << shift)) | ((sbox[nib] as u64) << shift);
    }
    out & mask_u64(width)
}

/// The per-access encoding context: the active thread's keys plus the
/// enabled transformations.
///
/// Every table access in every predictor receives a `&KeyCtx`. The baseline
/// uses [`KeyCtx::disabled`], which performs no work.
///
/// ```
/// use sbp_types::{KeyCtx, KeyPair, ThreadId};
///
/// let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::new(0xAA55, 0x3C));
/// // Index scrambling is an involution: applying it twice returns the index.
/// let idx = ctx.scramble_index(0x12, 8);
/// assert_eq!(ctx.scramble_index(idx, 8), 0x12);
/// // Content encoding round-trips.
/// let enc = ctx.encode_word(0x2, 7, 2);
/// assert_eq!(ctx.decode_word(enc, 7, 2), 0x2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyCtx {
    /// Hardware thread performing the access (used for owner tagging).
    pub thread: ThreadId,
    /// The thread's current key registers.
    pub keys: KeyPair,
    /// Whether table contents are encoded (XOR-BP).
    pub content_enabled: bool,
    /// Whether table indices are scrambled (Noisy-XOR-BP).
    pub index_enabled: bool,
    /// Enhanced mode: each entry derives its own key slice from the key
    /// register (Enhanced-XOR-PHT). Plain mode uses one fixed slice, which
    /// is weaker for narrow entries (paper §5.5 scenario 4).
    pub enhanced: bool,
    /// The reversible encoding operation.
    pub codec: Codec,
    /// Whether tables should record per-entry owner tags (Precise Flush).
    pub owner_tracking: bool,
    /// Whether reads of entries owned by another thread return the reset
    /// value. This is the thread-ID *tag-extension* semantic; feasible for
    /// tagged structures (BTB), impractically expensive for 2-bit PHT
    /// entries (paper Table 1, footnote 2).
    pub owner_read_filter: bool,
}

impl KeyCtx {
    /// Baseline context: no encoding, no scrambling, no owner tracking.
    pub const fn disabled(thread: ThreadId) -> Self {
        KeyCtx {
            thread,
            keys: KeyPair::zero(),
            content_enabled: false,
            index_enabled: false,
            enhanced: false,
            codec: Codec::Xor,
            owner_tracking: false,
            owner_read_filter: false,
        }
    }

    /// XOR-BP context: content encoding only (enhanced per-entry slices).
    pub const fn xor(thread: ThreadId, keys: KeyPair) -> Self {
        KeyCtx {
            thread,
            keys,
            content_enabled: true,
            index_enabled: false,
            enhanced: true,
            codec: Codec::Xor,
            owner_tracking: false,
            owner_read_filter: false,
        }
    }

    /// Noisy-XOR-BP context: content *and* index encoding.
    pub const fn noisy_xor(thread: ThreadId, keys: KeyPair) -> Self {
        KeyCtx {
            thread,
            keys,
            content_enabled: true,
            index_enabled: true,
            enhanced: true,
            codec: Codec::Xor,
            owner_tracking: false,
            owner_read_filter: false,
        }
    }

    /// Scrambles a table index with the index key (an involution).
    ///
    /// `index_bits` is the table's index width; the result stays in range.
    #[inline]
    pub fn scramble_index(&self, index: usize, index_bits: u32) -> usize {
        if self.index_enabled {
            index ^ (self.keys.index as usize & mask_u64(index_bits) as usize)
        } else {
            index
        }
    }

    /// The key slice used for a `width`-bit entry at physical index
    /// `entry_index`.
    #[inline]
    pub fn key_slice(&self, entry_index: usize, width: u32) -> u64 {
        if !self.content_enabled {
            return 0;
        }
        if self.enhanced {
            let rot = ((entry_index as u32).wrapping_mul(width.max(1))) % 64;
            self.keys.content.rotate_left(rot) & mask_u64(width)
        } else {
            self.keys.content & mask_u64(width)
        }
    }

    /// Encodes a `width`-bit word for storage at physical index
    /// `entry_index`.
    #[inline]
    pub fn encode_word(&self, word: u64, entry_index: usize, width: u32) -> u64 {
        if !self.content_enabled {
            return word & mask_u64(width);
        }
        self.codec
            .encode(word, self.key_slice(entry_index, width), width)
    }

    /// Decodes a `width`-bit word read from physical index `entry_index`.
    #[inline]
    pub fn decode_word(&self, word: u64, entry_index: usize, width: u32) -> u64 {
        if !self.content_enabled {
            return word & mask_u64(width);
        }
        self.codec
            .decode(word, self.key_slice(entry_index, width), width)
    }

    /// Returns a copy with fresh keys (the rekey operation performed by
    /// hardware on context/privilege switches).
    #[must_use]
    pub fn rekeyed(mut self, keys: KeyPair) -> Self {
        self.keys = keys;
        self
    }

    /// Returns a copy bound to a different hardware thread.
    #[must_use]
    pub fn for_thread(mut self, thread: ThreadId) -> Self {
        self.thread = thread;
        self
    }
}

impl Default for KeyCtx {
    fn default() -> Self {
        KeyCtx::disabled(ThreadId::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDTHS: [u32; 8] = [1, 2, 3, 4, 8, 12, 32, 64];

    #[test]
    fn sbox_tables_are_inverse() {
        for i in 0..16u8 {
            assert_eq!(SBOX_INV[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn codecs_round_trip() {
        let mut rng = crate::rng::Xoshiro256::new(42);
        for codec in [Codec::Xor, Codec::ShiftScramble, Codec::Lut] {
            for &w in &WIDTHS {
                for _ in 0..200 {
                    let word = rng.next_u64() & mask_u64(w);
                    let key = rng.next_u64();
                    let enc = codec.encode(word, key, w);
                    assert!(enc <= mask_u64(w));
                    assert_eq!(codec.decode(enc, key, w), word, "{codec:?} w={w}");
                }
            }
        }
    }

    #[test]
    fn zero_key_xor_is_identity() {
        for &w in &WIDTHS {
            assert_eq!(
                Codec::Xor.encode(0x5a5a_5a5a & mask_u64(w), 0, w),
                0x5a5a_5a5a & mask_u64(w)
            );
        }
    }

    #[test]
    fn wrong_key_does_not_round_trip() {
        // Decoding with a different key must (almost always) give garbage —
        // this is the content-isolation property.
        let mut mismatches = 0;
        for i in 0..64u64 {
            let enc = Codec::Xor.encode(0x3, 0xdead ^ i, 8);
            if Codec::Xor.decode(enc, 0xbeef, 8) != 0x3 {
                mismatches += 1;
            }
        }
        assert!(mismatches > 60);
    }

    #[test]
    fn disabled_ctx_is_identity() {
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        assert_eq!(ctx.scramble_index(123, 10), 123);
        assert_eq!(ctx.encode_word(0xabcd, 5, 16), 0xabcd);
        assert_eq!(ctx.decode_word(0xabcd, 5, 16), 0xabcd);
        assert_eq!(ctx.key_slice(9, 16), 0);
    }

    #[test]
    fn scramble_index_is_involution_and_in_range() {
        let ctx = KeyCtx::noisy_xor(ThreadId::new(1), KeyPair::new(1, 0xffff_ffff));
        for bits in [4u32, 8, 10, 12] {
            for idx in 0..(1usize << bits.min(8)) {
                let s = ctx.scramble_index(idx, bits);
                assert!(s < (1 << bits));
                assert_eq!(ctx.scramble_index(s, bits), idx);
            }
        }
    }

    #[test]
    fn enhanced_slices_differ_per_entry() {
        let ctx = KeyCtx::xor(ThreadId::new(0), KeyPair::new(0x0123_4567_89ab_cdef, 0));
        let slices: Vec<u64> = (0..16).map(|i| ctx.key_slice(i, 2)).collect();
        // With a non-degenerate key, not all 2-bit slices can be equal.
        assert!(slices.windows(2).any(|w| w[0] != w[1]), "{slices:?}");
    }

    #[test]
    fn plain_mode_uses_fixed_slice() {
        let mut ctx = KeyCtx::xor(ThreadId::new(0), KeyPair::new(0x0123_4567_89ab_cdef, 0));
        ctx.enhanced = false;
        for i in 0..32 {
            assert_eq!(ctx.key_slice(i, 2), 0x0123_4567_89ab_cdef & 0x3);
        }
    }

    #[test]
    fn different_keys_decode_to_garbage() {
        let a = KeyCtx::xor(ThreadId::new(0), KeyPair::new(0x1111_2222_3333_4444, 0));
        let b = KeyCtx::xor(ThreadId::new(1), KeyPair::new(0x5555_6666_7777_8888, 0));
        let enc = a.encode_word(0x2, 3, 2);
        // b's decode differs from the true value for this key pair.
        assert_ne!(b.decode_word(enc, 3, 2), 0x2);
    }

    #[test]
    fn from_random_spreads_keys() {
        let kp = KeyPair::from_random(0xdead_beef_cafe_f00d);
        assert_ne!(kp.content, kp.index);
        assert_eq!(KeyPair::zero(), KeyPair::default());
    }

    #[test]
    fn rekeyed_and_for_thread() {
        let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::new(1, 2));
        let ctx2 = ctx.rekeyed(KeyPair::new(3, 4)).for_thread(ThreadId::new(1));
        assert_eq!(ctx2.keys, KeyPair::new(3, 4));
        assert_eq!(ctx2.thread, ThreadId::new(1));
        assert!(ctx2.content_enabled && ctx2.index_enabled);
    }

    #[test]
    fn shift_scramble_differs_from_xor_for_wide_words() {
        // For >1-bit words the scramble usually permutes bits differently.
        let mut diffs = 0;
        for key in 1..64u64 {
            let x = Codec::Xor.encode(0x00ff, key, 16);
            let s = Codec::ShiftScramble.encode(0x00ff, key, 16);
            if x != s {
                diffs += 1;
            }
        }
        assert!(diffs > 32, "{diffs}");
    }
}
