//! Branch records: the unit of work consumed by the trace-driven simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Pc;

/// The control-flow class of a branch instruction.
///
/// The class determines which predictor structures are consulted:
/// conditional branches use the direction predictor (PHT) and, when
/// predicted taken, the BTB; indirect jumps/calls use the BTB; returns use
/// the RAS; direct jumps/calls only need the BTB for zero-bubble fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// A conditional direct branch (`beq`, `bne`, ...).
    Conditional,
    /// An unconditional direct jump (`j`).
    DirectJump,
    /// An unconditional indirect jump (`jr`), e.g. through a function pointer.
    IndirectJump,
    /// A direct call (`jal`). Pushes a return address.
    Call,
    /// An indirect call (`jalr`). Pushes a return address.
    IndirectCall,
    /// A function return (`ret`). Pops the RAS.
    Return,
}

impl BranchKind {
    /// Whether the branch direction is data dependent (needs the PHT).
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Whether the branch target is data dependent (needs the BTB or RAS).
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// Whether this branch pushes a return address onto the RAS.
    pub const fn pushes_ras(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// Whether this branch pops the RAS.
    pub const fn pops_ras(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// A short lowercase mnemonic for reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jump",
            BranchKind::IndirectJump => "ijump",
            BranchKind::Call => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One dynamic branch instance in a trace.
///
/// `gap` is the number of non-branch instructions *preceding* this branch
/// since the previous branch; the timing model converts gaps into base
/// execution cycles.
///
/// ```
/// use sbp_types::{BranchKind, BranchRecord, Pc};
///
/// let b = BranchRecord::taken(Pc::new(0x400), BranchKind::Conditional, Pc::new(0x800), 7);
/// assert!(b.taken);
/// assert_eq!(b.gap, 7);
/// assert_eq!(b.next_pc(), Pc::new(0x800));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: Pc,
    /// Control-flow class.
    pub kind: BranchKind,
    /// Actual direction (always `true` for unconditional branches).
    pub taken: bool,
    /// Actual target address when taken.
    pub target: Pc,
    /// Non-branch instructions executed since the previous branch.
    pub gap: u32,
}

impl BranchRecord {
    /// Creates a taken branch record.
    pub const fn taken(pc: Pc, kind: BranchKind, target: Pc, gap: u32) -> Self {
        BranchRecord {
            pc,
            kind,
            taken: true,
            target,
            gap,
        }
    }

    /// Creates a not-taken conditional branch record.
    pub const fn not_taken(pc: Pc, gap: u32) -> Self {
        BranchRecord {
            pc,
            kind: BranchKind::Conditional,
            taken: false,
            target: pc.fall_through(),
            gap,
        }
    }

    /// The address control flow actually continues at.
    pub const fn next_pc(&self) -> Pc {
        if self.taken {
            self.target
        } else {
            self.pc.fall_through()
        }
    }

    /// Total instructions this record accounts for (gap + the branch itself).
    pub const fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(BranchKind::Conditional.is_conditional());
        assert!(!BranchKind::Call.is_conditional());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(BranchKind::Return.is_indirect());
        assert!(!BranchKind::DirectJump.is_indirect());
        assert!(BranchKind::Call.pushes_ras());
        assert!(BranchKind::IndirectCall.pushes_ras());
        assert!(!BranchKind::Return.pushes_ras());
        assert!(BranchKind::Return.pops_ras());
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            BranchKind::Conditional,
            BranchKind::DirectJump,
            BranchKind::IndirectJump,
            BranchKind::Call,
            BranchKind::IndirectCall,
            BranchKind::Return,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }

    #[test]
    fn not_taken_falls_through() {
        let b = BranchRecord::not_taken(Pc::new(0x100), 3);
        assert!(!b.taken);
        assert_eq!(b.next_pc(), Pc::new(0x104));
        assert_eq!(b.instructions(), 4);
    }

    #[test]
    fn taken_goes_to_target() {
        let b = BranchRecord::taken(Pc::new(0x100), BranchKind::Call, Pc::new(0x9000), 0);
        assert_eq!(b.next_pc(), Pc::new(0x9000));
        assert_eq!(b.instructions(), 1);
    }
}
