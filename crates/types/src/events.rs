//! Core events that trigger isolation actions.

use serde::{Deserialize, Serialize};

use crate::ids::{Privilege, ThreadId};

/// An event observed by the predictor front-end that the isolation
/// mechanism may react to (rekey, flush, ...).
///
/// The paper's trigger set is exactly: a context switch (a new software
/// context is scheduled onto a hardware thread) and a privilege switch
/// (syscall/exception entry or exit on a hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreEvent {
    /// A new software context was switched onto `hw_thread` (timer tick,
    /// scheduler decision). The previous context's predictor state becomes
    /// residual.
    ContextSwitch {
        /// Hardware thread the switch happened on.
        hw_thread: ThreadId,
    },
    /// `hw_thread` transitioned to privilege level `to` (syscall entry,
    /// exception, or return to user).
    PrivilegeSwitch {
        /// Hardware thread the transition happened on.
        hw_thread: ThreadId,
        /// The privilege level after the transition.
        to: Privilege,
    },
}

impl CoreEvent {
    /// The hardware thread this event concerns.
    pub const fn hw_thread(&self) -> ThreadId {
        match self {
            CoreEvent::ContextSwitch { hw_thread } => *hw_thread,
            CoreEvent::PrivilegeSwitch { hw_thread, .. } => *hw_thread,
        }
    }

    /// Whether this is a context switch.
    pub const fn is_context_switch(&self) -> bool {
        matches!(self, CoreEvent::ContextSwitch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let cs = CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(1),
        };
        assert_eq!(cs.hw_thread(), ThreadId::new(1));
        assert!(cs.is_context_switch());
        let ps = CoreEvent::PrivilegeSwitch {
            hw_thread: ThreadId::new(0),
            to: Privilege::Kernel,
        };
        assert_eq!(ps.hw_thread(), ThreadId::new(0));
        assert!(!ps.is_context_switch());
    }
}
