//! # sbp-types
//!
//! Common vocabulary for the `secure-bp` workspace: hardware thread and
//! privilege identifiers, branch records, a deterministic pseudo random
//! number generator (modeling the paper's dedicated hardware RNG), the
//! per-thread key context consumed by every predictor table, packed table
//! storage with content/index encoding hooks, predictor traits, and
//! prediction statistics.
//!
//! This crate is the bottom of the dependency stack; it has no dependency on
//! the predictor implementations or the isolation mechanism policy layer.
//!
//! ```
//! use sbp_types::{Pc, ThreadId, KeyCtx, rng::SplitMix64};
//!
//! let pc = Pc::new(0x8000_4000);
//! assert_eq!(pc.btb_index(8), (0x8000_4000u64 >> 2) as usize & 0xff);
//!
//! // A disabled key context leaves indices and contents untouched.
//! let ctx = KeyCtx::disabled(ThreadId::new(0));
//! assert_eq!(ctx.scramble_index(42, 10), 42);
//! assert_eq!(ctx.encode_word(0xdead, 0, 16), 0xdead);
//! let _ = SplitMix64::new(7).next_u64();
//! ```

pub mod branch;
pub mod error;
pub mod events;
pub mod ids;
pub mod key;
pub mod metrics;
pub mod predictor;
pub mod report;
pub mod rng;
pub mod table;

pub use branch::{BranchKind, BranchRecord};
pub use error::SbpError;
pub use events::CoreEvent;
pub use ids::{Pc, Privilege, ThreadId};
pub use key::{Codec, KeyCtx, KeyPair};
pub use metrics::PredictionStats;
pub use predictor::{BranchInfo, DirectionPredictor, TargetPredictor};
pub use report::{AttackRecord, CellSummary, HwCell, RunRecord, SeriesSummary, SweepReport};
pub use table::{OwnerTags, PackedTable};
