//! Prediction statistics collected by the simulator.

use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

/// Aggregate prediction statistics for one simulation run (or one thread of
/// a run).
///
/// ```
/// use sbp_types::PredictionStats;
///
/// let mut s = PredictionStats::default();
/// s.instructions = 1_000_000;
/// s.cond_branches = 100_000;
/// s.cond_mispredicts = 5_000;
/// assert!((s.cond_accuracy() - 0.95).abs() < 1e-9);
/// assert!((s.mpki() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Total committed instructions (branches + gaps).
    pub instructions: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// BTB lookups performed.
    pub btb_lookups: u64,
    /// BTB lookups that missed.
    pub btb_misses: u64,
    /// BTB hits that supplied a wrong target.
    pub btb_wrong_target: u64,
    /// Indirect branches (jumps + calls, excluding returns).
    pub indirect_branches: u64,
    /// Indirect branch target mispredictions.
    pub indirect_mispredicts: u64,
    /// Return instructions.
    pub returns: u64,
    /// Return address mispredictions.
    pub ras_mispredicts: u64,
    /// Context switches observed.
    pub context_switches: u64,
    /// Privilege switches observed.
    pub privilege_switches: u64,
    /// Total cycles charged by the timing model.
    pub cycles: u64,
}

impl PredictionStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Conditional direction prediction accuracy in `[0, 1]` (1.0 when no
    /// conditional branches were seen).
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Conditional mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// BTB hit rate in `[0, 1]` (1.0 when no lookups were performed).
    pub fn btb_hit_rate(&self) -> f64 {
        if self.btb_lookups == 0 {
            1.0
        } else {
            1.0 - self.btb_misses as f64 / self.btb_lookups as f64
        }
    }

    /// Instructions per cycle under the timing model.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Privilege switches per million cycles (Table 4's metric).
    pub fn priv_switches_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.privilege_switches as f64 * 1.0e6 / self.cycles as f64
        }
    }

    /// Context switches per million cycles.
    pub fn ctx_switches_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.context_switches as f64 * 1.0e6 / self.cycles as f64
        }
    }
}

impl AddAssign for PredictionStats {
    fn add_assign(&mut self, rhs: Self) {
        self.instructions += rhs.instructions;
        self.cond_branches += rhs.cond_branches;
        self.cond_mispredicts += rhs.cond_mispredicts;
        self.btb_lookups += rhs.btb_lookups;
        self.btb_misses += rhs.btb_misses;
        self.btb_wrong_target += rhs.btb_wrong_target;
        self.indirect_branches += rhs.indirect_branches;
        self.indirect_mispredicts += rhs.indirect_mispredicts;
        self.returns += rhs.returns;
        self.ras_mispredicts += rhs.ras_mispredicts;
        self.context_switches += rhs.context_switches;
        self.privilege_switches += rhs.privilege_switches;
        self.cycles += rhs.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_safe_ratios() {
        let s = PredictionStats::new();
        assert_eq!(s.cond_accuracy(), 1.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.btb_hit_rate(), 1.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.priv_switches_per_mcycle(), 0.0);
        assert_eq!(s.ctx_switches_per_mcycle(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = PredictionStats {
            instructions: 2_000_000,
            cond_branches: 200_000,
            cond_mispredicts: 10_000,
            btb_lookups: 50_000,
            btb_misses: 5_000,
            cycles: 1_000_000,
            privilege_switches: 5,
            context_switches: 2,
            ..Default::default()
        };
        assert!((s.cond_accuracy() - 0.95).abs() < 1e-12);
        assert!((s.mpki() - 5.0).abs() < 1e-12);
        assert!((s.btb_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.priv_switches_per_mcycle() - 5.0).abs() < 1e-12);
        assert!((s.ctx_switches_per_mcycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = PredictionStats {
            instructions: 10,
            cond_branches: 2,
            ..Default::default()
        };
        let b = PredictionStats {
            instructions: 5,
            cond_mispredicts: 1,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.instructions, 15);
        assert_eq!(a.cond_branches, 2);
        assert_eq!(a.cond_mispredicts, 1);
    }
}
