//! Predictor traits implemented by the substrate crates.

use crate::branch::BranchKind;
use crate::ids::{Pc, ThreadId};
use crate::key::KeyCtx;

/// Static information about the branch being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Hardware thread executing the branch.
    pub thread: ThreadId,
    /// Branch instruction address.
    pub pc: Pc,
    /// Control-flow class.
    pub kind: BranchKind,
}

impl BranchInfo {
    /// Creates branch info.
    pub const fn new(thread: ThreadId, pc: Pc, kind: BranchKind) -> Self {
        BranchInfo { thread, pc, kind }
    }
}

/// A conditional-branch direction predictor (PHT family).
///
/// # Contract
///
/// For every dynamic branch the simulator calls [`predict`] and then
/// [`update`] with the actual outcome *before* the next `predict` on the
/// same predictor. Implementations may cache lookup metadata (e.g. TAGE's
/// provider component) between the paired calls.
///
/// All table accesses must flow through the supplied [`KeyCtx`], which makes
/// every implementation automatically support content and index encoding.
///
/// [`predict`]: DirectionPredictor::predict
/// [`update`]: DirectionPredictor::update
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `info.pc`.
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool;

    /// Trains the predictor with the actual outcome. `predicted` is the
    /// value returned by the paired `predict` call.
    fn update(&mut self, info: BranchInfo, taken: bool, predicted: bool, ctx: &KeyCtx);

    /// Fused predict-then-update for functional (timing-free) stepping.
    ///
    /// Must leave the predictor in a state bit-identical to
    /// `let p = self.predict(info, ctx); self.update(info, taken, p, ctx)`
    /// and return the prediction. The default does exactly that;
    /// implementations override it to share index/hash computation
    /// between the two halves.
    fn train(&mut self, info: BranchInfo, taken: bool, ctx: &KeyCtx) -> bool {
        let predicted = self.predict(info, ctx);
        self.update(info, taken, predicted, ctx);
        predicted
    }

    /// Complete Flush: clears all prediction state (all threads).
    fn flush_all(&mut self);

    /// Precise Flush: clears state attributable to `thread` (no-op unless
    /// owner tags are enabled).
    fn flush_thread(&mut self, thread: ThreadId);

    /// Total storage in bits (used by the hardware cost model).
    fn storage_bits(&self) -> u64;

    /// Short predictor name for reports ("gshare", "tage_sc_l", ...).
    fn name(&self) -> &'static str;
}

/// A branch target predictor (BTB family).
///
/// The same predict-then-update contract as [`DirectionPredictor`] applies.
pub trait TargetPredictor {
    /// Looks up the predicted target for the branch at `info.pc`.
    /// `None` models a BTB miss (fetch falls through).
    fn lookup(&mut self, info: BranchInfo, ctx: &KeyCtx) -> Option<Pc>;

    /// Installs / corrects the mapping `info.pc -> target` after a taken
    /// branch resolves.
    fn update(&mut self, info: BranchInfo, target: Pc, ctx: &KeyCtx);

    /// Complete Flush: clears all entries.
    fn flush_all(&mut self);

    /// Precise Flush: clears entries attributable to `thread`.
    fn flush_thread(&mut self, thread: ThreadId);

    /// Total storage in bits.
    fn storage_bits(&self) -> u64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_info_construction() {
        let info = BranchInfo::new(ThreadId::new(1), Pc::new(0x400), BranchKind::Conditional);
        assert_eq!(info.thread, ThreadId::new(1));
        assert_eq!(info.pc, Pc::new(0x400));
        assert_eq!(info.kind, BranchKind::Conditional);
    }

    // Object safety: both traits must be usable as trait objects, because
    // the simulator stores heterogeneous predictor bundles.
    #[test]
    fn traits_are_object_safe() {
        fn _takes_dir(_: &mut dyn DirectionPredictor) {}
        fn _takes_tgt(_: &mut dyn TargetPredictor) {}
    }
}
