//! Hardware thread, privilege level and program counter newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hardware thread context identifier.
///
/// The paper allocates one private key register pair per *hardware* thread
/// context (SMT way); software threads inherit whichever hardware context
/// they are scheduled on.
///
/// ```
/// use sbp_types::ThreadId;
///
/// let t = ThreadId::new(1);
/// assert_eq!(t.index(), 1);
/// assert_eq!(format!("{t}"), "T1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Creates a thread id from a raw hardware context index.
    pub const fn new(index: u8) -> Self {
        ThreadId(index)
    }

    /// Returns the raw hardware context index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u8> for ThreadId {
    fn from(v: u8) -> Self {
        ThreadId(v)
    }
}

/// Processor privilege level.
///
/// The isolation mechanisms refresh the thread-private keys on every
/// privilege transition so that user and kernel execution of the *same*
/// software thread cannot observe each other's predictor state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Privilege {
    /// User mode.
    #[default]
    User,
    /// Supervisor / kernel mode.
    Kernel,
}

impl Privilege {
    /// Returns the other privilege level.
    ///
    /// ```
    /// use sbp_types::Privilege;
    /// assert_eq!(Privilege::User.flipped(), Privilege::Kernel);
    /// ```
    pub const fn flipped(self) -> Self {
        match self {
            Privilege::User => Privilege::Kernel,
            Privilege::Kernel => Privilege::User,
        }
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privilege::User => f.write_str("user"),
            Privilege::Kernel => f.write_str("kernel"),
        }
    }
}

/// A program counter (instruction address).
///
/// Instructions are assumed 4-byte aligned (RISC-V RV64 without compressed
/// instructions, matching the paper's BOOM prototype), so index extraction
/// helpers drop the two low bits first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw address.
    pub const fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// Returns the raw address.
    pub const fn addr(self) -> u64 {
        self.0
    }

    /// Word-aligned address (instruction index): address with the two
    /// byte-offset bits removed.
    pub const fn word(self) -> u64 {
        self.0 >> 2
    }

    /// Low `bits` bits of the word-aligned address, the conventional
    /// set-index input of a BTB or PHT.
    ///
    /// ```
    /// use sbp_types::Pc;
    /// assert_eq!(Pc::new(0x1234).btb_index(4), (0x1234u64 >> 2) as usize & 0xf);
    /// ```
    pub const fn btb_index(self, bits: u32) -> usize {
        (self.word() & mask_u64(bits)) as usize
    }

    /// High bits of the word address above `index_bits`, truncated to
    /// `tag_bits`: the conventional partial tag of a tagged structure.
    pub const fn tag(self, index_bits: u32, tag_bits: u32) -> u64 {
        (self.word() >> index_bits) & mask_u64(tag_bits)
    }

    /// Address of the sequential (fall-through) instruction.
    pub const fn fall_through(self) -> Pc {
        Pc(self.0.wrapping_add(4))
    }

    /// Offsets the address by `delta` bytes (may be negative).
    pub const fn offset(self, delta: i64) -> Pc {
        Pc(self.0.wrapping_add_signed(delta))
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

impl From<Pc> for u64 {
    fn from(pc: Pc) -> u64 {
        pc.0
    }
}

/// A `bits`-wide all-ones mask (`bits` may be 0..=64).
pub const fn mask_u64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::new(3);
        assert_eq!(t.index(), 3);
        assert_eq!(ThreadId::from(3u8), t);
        assert_eq!(t.to_string(), "T3");
    }

    #[test]
    fn privilege_flip_is_involution() {
        assert_eq!(Privilege::User.flipped().flipped(), Privilege::User);
        assert_eq!(Privilege::Kernel.flipped(), Privilege::User);
        assert_eq!(Privilege::Kernel.to_string(), "kernel");
    }

    #[test]
    fn pc_indexing_drops_byte_offset() {
        let pc = Pc::new(0x8000_4004);
        assert_eq!(pc.word(), 0x8000_4004 >> 2);
        assert_eq!(pc.btb_index(8), ((0x8000_4004u64 >> 2) & 0xff) as usize);
    }

    #[test]
    fn pc_tag_uses_bits_above_index() {
        let pc = Pc::new(0xdead_beef);
        let idx_bits = 10;
        let tag_bits = 12;
        assert_eq!(pc.tag(idx_bits, tag_bits), (pc.word() >> idx_bits) & 0xfff);
    }

    #[test]
    fn pc_fall_through_and_offset() {
        let pc = Pc::new(0x1000);
        assert_eq!(pc.fall_through(), Pc::new(0x1004));
        assert_eq!(pc.offset(-16), Pc::new(0xff0));
        assert_eq!(pc.offset(16), Pc::new(0x1010));
    }

    #[test]
    fn mask_limits() {
        assert_eq!(mask_u64(0), 0);
        assert_eq!(mask_u64(1), 1);
        assert_eq!(mask_u64(64), u64::MAX);
        assert_eq!(mask_u64(12), 0xfff);
    }

    #[test]
    fn pc_display_is_hex() {
        assert_eq!(Pc::new(0xabc).to_string(), "0xabc");
        assert_eq!(format!("{:x}", Pc::new(0xabc)), "abc");
    }
}
