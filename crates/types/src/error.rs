//! Workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced by `secure-bp` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SbpError {
    /// A configuration value was invalid (message explains which).
    InvalidConfig(String),
    /// A serialized trace was malformed.
    TraceFormat(String),
    /// An experiment references an unknown benchmark or case name.
    UnknownWorkload(String),
    /// A sweep store could not be read, parsed or written.
    Store(String),
    /// A campaign orchestration step failed (manifest, catalog lookup or
    /// worker subprocess).
    Campaign(String),
}

impl SbpError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        SbpError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for trace format errors.
    pub fn trace(msg: impl Into<String>) -> Self {
        SbpError::TraceFormat(msg.into())
    }

    /// Convenience constructor for sweep-store errors.
    pub fn store(msg: impl Into<String>) -> Self {
        SbpError::Store(msg.into())
    }

    /// Convenience constructor for campaign orchestration errors.
    pub fn campaign(msg: impl Into<String>) -> Self {
        SbpError::Campaign(msg.into())
    }
}

impl fmt::Display for SbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbpError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SbpError::TraceFormat(m) => write!(f, "malformed trace: {m}"),
            SbpError::UnknownWorkload(m) => write!(f, "unknown workload: {m}"),
            SbpError::Store(m) => write!(f, "sweep store: {m}"),
            SbpError::Campaign(m) => write!(f, "campaign: {m}"),
        }
    }
}

impl Error for SbpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SbpError::config("bad width").to_string(),
            "invalid configuration: bad width"
        );
        assert_eq!(SbpError::trace("eof").to_string(), "malformed trace: eof");
        assert_eq!(
            SbpError::campaign("worker died").to_string(),
            "campaign: worker died"
        );
        assert_eq!(
            SbpError::UnknownWorkload("foo".into()).to_string(),
            "unknown workload: foo"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SbpError>();
    }
}
