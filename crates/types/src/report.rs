//! Structured sweep results: per-run records, per-cell aggregates and the
//! report container emitted by the sweep engine (`sbp-sweep`).
//!
//! Every value is label-keyed (`String`) rather than typed against the
//! mechanism/predictor enums so this crate stays at the bottom of the
//! dependency stack; the sweep engine fills the labels from
//! `Mechanism::label()` / `PredictorKind::label()` / `SwitchInterval::label()`.
//!
//! Three emitters are provided, all deterministic for a fixed report:
//!
//! * [`SweepReport::to_jsonl`] — one JSON object per [`RunRecord`] line,
//!   for downstream tooling;
//! * [`SweepReport::to_csv`] — the same records as a flat CSV;
//! * [`SweepReport::to_table`] — the aligned per-case × per-series table
//!   the benchmark harnesses print.

use serde::{Deserialize, Serialize};

use crate::metrics::PredictionStats;

/// Outcome of one attack-PoC campaign cell (Table 1 / §5.5 experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRecord {
    /// Attack campaign label (`"SpectreV2"`, `"BranchScope"`, ...).
    pub attack: String,
    /// Fraction of trials in which the adversary achieved its goal.
    pub success_rate: f64,
    /// Success rate of blind guessing for this attack.
    pub chance: f64,
    /// Number of trials run.
    pub trials: u64,
    /// Defend / Mitigate / No Protection classification of the outcome.
    pub verdict: String,
}

impl AttackRecord {
    /// Advantage over blind guessing, clamped at 0.
    pub fn advantage(&self) -> f64 {
        (self.success_rate - self.chance).max(0.0)
    }
}

/// One executed job: a (series, predictor, interval, case, seed) point.
///
/// Simulation runs fill `cycles`/`overhead`/`stats` (and `per_thread` on
/// SMT); attack-PoC runs fill `attack` instead, reusing `case_id` for the
/// attack label and `interval` for the core-mode label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Mechanism series label (`"Baseline"` for the shared baseline runs).
    pub series: String,
    /// Predictor label.
    pub predictor: String,
    /// Switch-interval label (`"4M"`, `"8M"`, `"12M"`, `"off"`) for
    /// simulation runs; core-mode label (`"single-core"`/`"smt"`) for
    /// attack runs.
    pub interval: String,
    /// Benchmark case id (simulations) or attack label (attack runs).
    pub case_id: String,
    /// Seed replica index within the spec.
    pub seed_index: u32,
    /// The derived per-group seed this run used.
    pub seed: u64,
    /// Measured cycles (target cycles single-core, wall cycles SMT; 0 for
    /// attack runs, which measure accuracy, not time).
    pub cycles: f64,
    /// Normalized overhead vs the group baseline; `None` on baseline and
    /// attack runs.
    pub overhead: Option<f64>,
    /// Standard error of `cycles` propagated from the sampling windows;
    /// `None` on exact (full-measurement) and attack runs.
    pub stderr: Option<f64>,
    /// Full prediction statistics (summed across threads for SMT runs).
    pub stats: PredictionStats,
    /// Per-hardware-thread statistics breakdown for SMT runs (empty on
    /// single-core and attack runs) — `stats` is their sum. Enables
    /// thread-starvation / fairness comparisons, e.g. CF's whole-table
    /// flush vs Noisy-XOR-BP's single-thread rekey.
    pub per_thread: Vec<PredictionStats>,
    /// Attack campaign outcome; `None` on simulation runs.
    pub attack: Option<AttackRecord>,
}

impl RunRecord {
    /// Thread-fairness ratio of an SMT run: instructions retired by the
    /// most-progressed thread over the least-progressed one (1.0 = fair;
    /// `None` when no per-thread breakdown exists).
    pub fn thread_imbalance(&self) -> Option<f64> {
        let min = self.per_thread.iter().map(|s| s.instructions).min()?;
        let max = self.per_thread.iter().map(|s| s.instructions).max()?;
        Some(max as f64 / (min as f64).max(1.0))
    }
}

/// Seed-aggregated statistics for one (series, predictor, interval, case)
/// cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Display label of the series column this cell belongs to.
    pub label: String,
    /// Mechanism series label.
    pub series: String,
    /// Predictor label.
    pub predictor: String,
    /// Switch-interval label.
    pub interval: String,
    /// Benchmark case id.
    pub case_id: String,
    /// Mean normalized overhead across seed replicas.
    pub mean: f64,
    /// Population standard deviation across seed replicas (0 for n = 1).
    pub stddev: f64,
    /// Standard error of `mean` propagated from the per-run sampling
    /// stderrs (0 when every contributing run was exact).
    pub stderr: f64,
    /// Number of seed replicas aggregated.
    pub n: u32,
}

/// Case-averaged summary of one (series, predictor, interval) series — the
/// paper's "average" bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Display label of the series column.
    pub label: String,
    /// Mechanism series label.
    pub series: String,
    /// Predictor label.
    pub predictor: String,
    /// Switch-interval label.
    pub interval: String,
    /// Mean of the per-case mean overheads.
    pub mean: f64,
}

/// Hardware-cost figures joined per (predictor, mechanism) cell from the
/// `sbp-hwcost` model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwCell {
    /// Predictor label.
    pub predictor: String,
    /// Mechanism series label.
    pub series: String,
    /// Baseline BTB storage bits.
    pub btb_storage_bits: u64,
    /// Baseline direction-predictor storage bits.
    pub pht_storage_bits: u64,
    /// Storage bits the mechanism adds (key registers, owner tags).
    pub added_bits: u64,
    /// Critical-path timing overhead of the worst protected macro.
    pub timing_overhead: f64,
    /// Area overhead of the worst protected macro.
    pub area_overhead: f64,
}

/// The full result of one sweep: raw records plus the aggregates derived
/// from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep name (free-form, from the spec).
    pub name: String,
    /// Execution mode label (`"single-core"` / `"smt"`).
    pub mode: String,
    /// Core configuration name.
    pub core: String,
    /// Case ids in spec order (the table's row order).
    pub case_ids: Vec<String>,
    /// One record per executed simulation, in plan order.
    pub records: Vec<RunRecord>,
    /// Per-cell aggregates, series-major then case.
    pub cells: Vec<CellSummary>,
    /// Per-series case averages, in column order.
    pub series: Vec<SeriesSummary>,
    /// Hardware-cost join, one row per (predictor, mechanism).
    pub hw: Vec<HwCell>,
}

impl SweepReport {
    /// Looks up the seed-aggregated cell for a series column and case.
    pub fn cell(
        &self,
        series: &str,
        predictor: &str,
        interval: &str,
        case_id: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.series == series
                && c.predictor == predictor
                && c.interval == interval
                && c.case_id == case_id
        })
    }

    /// Case-averaged mean overhead of one series column.
    pub fn series_mean(&self, series: &str, predictor: &str, interval: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.series == series && s.predictor == predictor && s.interval == interval)
            .map(|s| s.mean)
    }

    /// Iterates the records of one series (all predictors/intervals/cases).
    pub fn records_for<'a>(&'a self, series: &'a str) -> impl Iterator<Item = &'a RunRecord> {
        self.records.iter().filter(move |r| r.series == series)
    }

    /// Looks up the single record of one fully-qualified grid point.
    pub fn record(
        &self,
        series: &str,
        predictor: &str,
        interval: &str,
        case_id: &str,
        seed_index: u32,
    ) -> Option<&RunRecord> {
        self.records.iter().find(|r| {
            r.series == series
                && r.predictor == predictor
                && r.interval == interval
                && r.case_id == case_id
                && r.seed_index == seed_index
        })
    }

    /// Emits one JSON object per record (JSON-lines).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&record_json(r));
            out.push('\n');
        }
        out
    }

    /// Emits the records as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "series,predictor,interval,case,seed_index,seed,cycles,overhead,\
             instructions,cond_branches,cond_mispredicts,btb_lookups,btb_misses,\
             btb_wrong_target,indirect_branches,indirect_mispredicts,returns,\
             ras_mispredicts,context_switches,privilege_switches,stats_cycles,\
             attack,success_rate,chance,trials,verdict\n",
        );
        for r in &self.records {
            let s = &r.stats;
            let (attack, success, chance, trials, verdict) = match &r.attack {
                Some(a) => (
                    csv_field(&a.attack),
                    fmt_f64(a.success_rate),
                    fmt_f64(a.chance),
                    a.trials.to_string(),
                    csv_field(&a.verdict),
                ),
                None => Default::default(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                csv_field(&r.series),
                csv_field(&r.predictor),
                csv_field(&r.interval),
                csv_field(&r.case_id),
                r.seed_index,
                r.seed,
                fmt_f64(r.cycles),
                r.overhead.map(fmt_f64).unwrap_or_default(),
                s.instructions,
                s.cond_branches,
                s.cond_mispredicts,
                s.btb_lookups,
                s.btb_misses,
                s.btb_wrong_target,
                s.indirect_branches,
                s.indirect_mispredicts,
                s.returns,
                s.ras_mispredicts,
                s.context_switches,
                s.privilege_switches,
                s.cycles,
                attack,
                success,
                chance,
                trials,
                verdict,
            ));
        }
        out
    }

    /// Emits the aligned per-case × per-series table, followed by the
    /// per-series averages and the hardware-cost rows. Cells aggregating
    /// more than one seed replica print the mean ± the replica standard
    /// deviation (`+1.23%±0.10%`).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let labels: Vec<&str> = self.series.iter().map(|s| s.label.as_str()).collect();
        // Render every cell first so the column width fits the widest of
        // the labels and the (possibly ±-suffixed) cell texts.
        let rows: Vec<(&String, Vec<String>)> = self
            .case_ids
            .iter()
            .map(|case| {
                let cells = self
                    .series
                    .iter()
                    .map(|s| {
                        self.cells
                            .iter()
                            .find(|c| c.label == s.label && &c.case_id == case)
                            .map_or_else(|| "-".to_string(), cell_text)
                    })
                    .collect();
                (case, cells)
            })
            .collect();
        // Display width in chars, not bytes: the ± cell text is multi-byte.
        let width = labels
            .iter()
            .map(|l| l.chars().count())
            .chain(
                rows.iter()
                    .flat_map(|(_, cs)| cs.iter().map(|c| c.chars().count())),
            )
            .max()
            .unwrap_or(8)
            .max(10);
        let row_width = self
            .case_ids
            .iter()
            .map(|c| c.chars().count())
            .max()
            .unwrap_or(4)
            .max(10);
        out.push_str(&format!("{:<row_width$}", "case"));
        for l in &labels {
            out.push_str(&format!(" {l:>width$}"));
        }
        out.push('\n');
        for (case, cells) in &rows {
            out.push_str(&format!("{case:<row_width$}"));
            for cell in cells {
                out.push_str(&format!(" {cell:>width$}"));
            }
            out.push('\n');
        }
        for s in &self.series {
            out.push_str(&format!("average {}: {}\n", s.label, pct(s.mean)));
        }
        for h in &self.hw {
            out.push_str(&format!(
                "hw {}/{}: btb {} b, pht {} b, +{} b, timing {}, area {}\n",
                h.predictor,
                h.series,
                h.btb_storage_bits,
                h.pht_storage_bits,
                h.added_bits,
                pct(h.timing_overhead),
                pct(h.area_overhead),
            ));
        }
        out
    }
}

/// Arithmetic mean (the paper's "average" bars); 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Formats a fraction as a signed percentage (`+1.23%`).
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Table text of one cell: the mean, ± the seed-replica standard
/// deviation when the cell aggregates more than one replica.
fn cell_text(c: &CellSummary) -> String {
    if c.n > 1 {
        format!("{}±{:.2}%", pct(c.mean), c.stddev * 100.0)
    } else {
        pct(c.mean)
    }
}

/// Deterministic JSON-safe float formatting (`null` for non-finite
/// values); finite values use Rust's shortest-roundtrip `{}` form, so
/// parsing recovers them exactly.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON value position.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Quotes a CSV field if it contains separators or quotes.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes one [`PredictionStats`] as a JSON object — the `"stats"`
/// payload of the JSONL emitters and the on-disk sweep store.
pub fn stats_json(s: &PredictionStats) -> String {
    format!(
        "{{\"instructions\":{},\"cond_branches\":{},\
         \"cond_mispredicts\":{},\"btb_lookups\":{},\"btb_misses\":{},\
         \"btb_wrong_target\":{},\"indirect_branches\":{},\
         \"indirect_mispredicts\":{},\"returns\":{},\"ras_mispredicts\":{},\
         \"context_switches\":{},\"privilege_switches\":{},\"cycles\":{}}}",
        s.instructions,
        s.cond_branches,
        s.cond_mispredicts,
        s.btb_lookups,
        s.btb_misses,
        s.btb_wrong_target,
        s.indirect_branches,
        s.indirect_mispredicts,
        s.returns,
        s.ras_mispredicts,
        s.context_switches,
        s.privilege_switches,
        s.cycles,
    )
}

/// Serializes one [`AttackRecord`] as a JSON object.
pub fn attack_json(a: &AttackRecord) -> String {
    format!(
        "{{\"attack\":{},\"success_rate\":{},\"chance\":{},\"trials\":{},\
         \"verdict\":{}}}",
        json_str(&a.attack),
        fmt_f64(a.success_rate),
        fmt_f64(a.chance),
        a.trials,
        json_str(&a.verdict),
    )
}

fn record_json(r: &RunRecord) -> String {
    let per_thread: Vec<String> = r.per_thread.iter().map(stats_json).collect();
    // The stderr field is emitted only for sampled runs, so exact-run
    // JSONL keeps its historical byte layout.
    let stderr = match r.stderr {
        None => String::new(),
        Some(se) => format!(",\"stderr\":{}", fmt_f64(se)),
    };
    format!(
        "{{\"series\":{},\"predictor\":{},\"interval\":{},\"case\":{},\
         \"seed_index\":{},\"seed\":{},\"cycles\":{},\"overhead\":{}{stderr},\
         \"stats\":{},\"per_thread\":[{}],\"attack\":{}}}",
        json_str(&r.series),
        json_str(&r.predictor),
        json_str(&r.interval),
        json_str(&r.case_id),
        r.seed_index,
        r.seed,
        fmt_f64(r.cycles),
        r.overhead
            .map(fmt_f64)
            .unwrap_or_else(|| "null".to_string()),
        stats_json(&r.stats),
        per_thread.join(","),
        r.attack
            .as_ref()
            .map(attack_json)
            .unwrap_or_else(|| "null".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(series: &str, case: &str, overhead: Option<f64>) -> RunRecord {
        RunRecord {
            series: series.to_string(),
            predictor: "Gshare".to_string(),
            interval: "8M".to_string(),
            case_id: case.to_string(),
            seed_index: 0,
            seed: 42,
            cycles: 1000.0,
            overhead,
            stderr: None,
            stats: PredictionStats::default(),
            per_thread: Vec::new(),
            attack: None,
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            name: "test".to_string(),
            mode: "single-core".to_string(),
            core: "fpga".to_string(),
            case_ids: vec!["case1".to_string()],
            records: vec![
                record("Baseline", "case1", None),
                record("CF", "case1", Some(0.0123)),
            ],
            cells: vec![CellSummary {
                label: "CF-8M".to_string(),
                series: "CF".to_string(),
                predictor: "Gshare".to_string(),
                interval: "8M".to_string(),
                case_id: "case1".to_string(),
                mean: 0.0123,
                stddev: 0.0,
                stderr: 0.0,
                n: 1,
            }],
            series: vec![SeriesSummary {
                label: "CF-8M".to_string(),
                series: "CF".to_string(),
                predictor: "Gshare".to_string(),
                interval: "8M".to_string(),
                mean: 0.0123,
            }],
            hw: vec![],
        }
    }

    #[test]
    fn lookups_find_cells_and_series() {
        let r = report();
        assert_eq!(r.cell("CF", "Gshare", "8M", "case1").unwrap().mean, 0.0123);
        assert!(r.cell("PF", "Gshare", "8M", "case1").is_none());
        assert_eq!(r.series_mean("CF", "Gshare", "8M"), Some(0.0123));
        assert_eq!(r.records_for("Baseline").count(), 1);
    }

    #[test]
    fn jsonl_has_one_line_per_record_and_null_baseline_overhead() {
        let out = report().to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"overhead\":null"));
        assert!(lines[1].contains("\"overhead\":0.0123"));
        assert!(lines[0].contains("\"per_thread\":[]"));
        assert!(lines[0].contains("\"attack\":null"));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(
            !lines[0].contains("stderr"),
            "exact runs keep their historical JSONL layout"
        );
    }

    #[test]
    fn jsonl_emits_stderr_only_for_sampled_runs() {
        let mut r = report();
        r.records[1].stderr = Some(12.5);
        let out = r.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines[0].contains("stderr"));
        assert!(lines[1].contains("\"overhead\":0.0123,\"stderr\":12.5,\"stats\""));
    }

    fn thread_stats(instructions: u64) -> PredictionStats {
        PredictionStats {
            instructions,
            ..Default::default()
        }
    }

    #[test]
    fn jsonl_carries_per_thread_and_attack_payloads() {
        let mut r = report();
        r.records[0].per_thread = vec![thread_stats(600), thread_stats(400)];
        r.records[1].attack = Some(AttackRecord {
            attack: "SpectreV2".to_string(),
            success_rate: 0.965,
            chance: 0.005,
            trials: 1500,
            verdict: "No Protection".to_string(),
        });
        let out = r.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"per_thread\":[{\"instructions\":600,"));
        assert!(lines[1].contains("\"attack\":{\"attack\":\"SpectreV2\",\"success_rate\":0.965"));
        assert!(lines[1].contains("\"verdict\":\"No Protection\""));
    }

    #[test]
    fn thread_imbalance_reports_fairness() {
        let mut r = record("Baseline", "c", None);
        assert_eq!(r.thread_imbalance(), None);
        r.per_thread = vec![thread_stats(900), thread_stats(300)];
        assert_eq!(r.thread_imbalance(), Some(3.0));
    }

    #[test]
    fn attack_record_advantage_clamps() {
        let a = AttackRecord {
            attack: "Sbpa".to_string(),
            success_rate: 0.4,
            chance: 0.5,
            trials: 100,
            verdict: "Defend".to_string(),
        };
        assert_eq!(a.advantage(), 0.0);
    }

    #[test]
    fn record_lookup_is_fully_qualified() {
        let r = report();
        assert!(r.record("CF", "Gshare", "8M", "case1", 0).is_some());
        assert!(r.record("CF", "Gshare", "8M", "case1", 1).is_none());
        assert!(r.record("CF", "Gshare", "4M", "case1", 0).is_none());
    }

    #[test]
    fn csv_has_header_plus_records() {
        let out = report().to_csv();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,predictor,interval,case"));
        assert!(lines[1].starts_with("Baseline,Gshare,8M,case1"));
    }

    #[test]
    fn table_contains_rows_and_averages() {
        let out = report().to_table();
        assert!(out.contains("case1"));
        assert!(out.contains("+1.23%"));
        assert!(!out.contains('±'), "single replica prints a bare mean");
        assert!(out.contains("average CF-8M"));
    }

    #[test]
    fn table_appends_stddev_for_multi_replica_cells() {
        let mut r = report();
        r.cells[0].n = 3;
        r.cells[0].stddev = 0.0011;
        let out = r.to_table();
        assert!(out.contains("+1.23%±0.11%"), "table was:\n{out}");
        // The column is wide enough for the ± text to stay aligned.
        let header_end = out.lines().next().unwrap().chars().count();
        assert!(out.lines().nth(1).unwrap().chars().count() <= header_end);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.002), "-0.20%");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
