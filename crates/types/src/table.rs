//! Packed prediction-table storage with encoding hooks.
//!
//! [`PackedTable`] models an SRAM array of `len` logical entries of
//! `width` bits each. All predictor tables (PHT counters, TAGE tagged
//! entries, local history tables, loop predictor entries, ...) are built on
//! it, so content encoding, index scrambling, owner tagging (for Precise
//! Flush) and storage-bit accounting are implemented exactly once.
//!
//! Storage is bit-packed: entries whose width is a power of two share `u64`
//! words (e.g. a 8192-entry 2-bit PHT occupies 2 KB of host memory, exactly
//! its architectural size, instead of 64 KB one-entry-per-word). This keeps
//! hot tables L1-resident and turns Complete Flush's whole-table clear into
//! a short `memset`. Non-power-of-two widths fall back to one entry per
//! word; the logical API is identical either way.

use serde::{Deserialize, Serialize};

use crate::ids::{mask_u64, ThreadId};
use crate::key::KeyCtx;

/// Sentinel owner tag meaning "entry not owned by any thread".
const NO_OWNER: u8 = u8::MAX;

/// Per-entry owner tags used by the Precise Flush mechanism.
///
/// The paper's Precise Flush augments every entry with a thread ID so that
/// only the departing thread's entries are cleared on a context switch; this
/// sidecar array models that storage (and its cost is charged by
/// [`PackedTable::storage_bits`] when enabled).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnerTags {
    tags: Vec<u8>,
}

impl OwnerTags {
    /// Creates a tag array for `len` entries, all unowned.
    pub fn new(len: usize) -> Self {
        OwnerTags {
            tags: vec![NO_OWNER; len],
        }
    }

    /// Records `thread` as the owner of `index`.
    pub fn set(&mut self, index: usize, thread: ThreadId) {
        self.tags[index] = thread.index() as u8;
    }

    /// Returns the owner of `index`, if any.
    pub fn get(&self, index: usize) -> Option<ThreadId> {
        match self.tags[index] {
            NO_OWNER => None,
            t => Some(ThreadId::new(t)),
        }
    }

    /// Clears all ownership.
    pub fn clear(&mut self) {
        self.tags.fill(NO_OWNER);
    }

    /// Iterates over the indices owned by `thread`.
    pub fn owned_by(&self, thread: ThreadId) -> impl Iterator<Item = usize> + '_ {
        let t = thread.index() as u8;
        self.tags
            .iter()
            .enumerate()
            .filter(move |(_, &tag)| tag == t)
            .map(|(i, _)| i)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// A packed array of `len` entries of `width` bits each, with keyed access.
///
/// Raw accessors ([`PackedTable::read_raw`] / [`PackedTable::write_raw`])
/// bypass the encoding layer; the keyed accessors ([`PackedTable::get`] /
/// [`PackedTable::set`]) apply the full index-scramble + content-codec path
/// described by the [`KeyCtx`].
///
/// ```
/// use sbp_types::{KeyCtx, KeyPair, PackedTable, ThreadId};
///
/// let mut pht = PackedTable::new(1024, 2, 1); // 1K 2-bit counters, reset=weak NT
/// let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(0xfeed));
/// pht.set(37, 3, &ctx);
/// assert_eq!(pht.get(37, &ctx), 3);
/// // Another thread with different keys reads garbage (content isolation):
/// let other = KeyCtx::noisy_xor(ThreadId::new(1), KeyPair::from_random(0xbeef));
/// let _ = pht.get(37, &other); // no panic; value is decorrelated
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedTable {
    width: u32,
    index_bits: u32,
    reset_value: u64,
    /// Number of logical entries (`1 << index_bits`).
    len: usize,
    /// `log2(entries per storage word)`; 0 when entries are one-per-word.
    lane_shift: u32,
    /// `reset_value` replicated across every lane of a storage word, so a
    /// whole-table flush is a single `fill` with this word.
    reset_word: u64,
    storage: Vec<u64>,
    owners: Option<OwnerTags>,
}

impl PackedTable {
    /// Creates a table of `len` entries of `width` bits, initialized to
    /// `reset_value`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two, `width` is 0 or > 64, or
    /// `reset_value` does not fit in `width` bits.
    pub fn new(len: usize, width: u32, reset_value: u64) -> Self {
        assert!(len.is_power_of_two(), "table length must be a power of two");
        assert!((1..=64).contains(&width), "entry width must be 1..=64");
        assert!(
            reset_value <= mask_u64(width),
            "reset value wider than entry"
        );
        // Pack power-of-two widths lane-wise into u64 words; odd widths
        // (11-bit local histories, 44-bit BTB entries, ...) stay one
        // entry per word so lane extraction never straddles words.
        let lane_shift = if width.is_power_of_two() {
            (64 / width).trailing_zeros()
        } else {
            0
        };
        let mut reset_word = reset_value;
        if lane_shift > 0 {
            // Replicate the reset value across all lanes of a word.
            let mut step = width;
            while step < 64 {
                reset_word |= reset_word << step;
                step *= 2;
            }
        }
        let words = (len >> lane_shift).max(1);
        PackedTable {
            width,
            index_bits: len.trailing_zeros(),
            reset_value,
            len,
            lane_shift,
            reset_word,
            storage: vec![reset_word; words],
            owners: None,
        }
    }

    /// Word index and bit shift of logical entry `index`.
    #[inline(always)]
    fn slot(&self, index: usize) -> (usize, u32) {
        let lane = index & ((1usize << self.lane_shift) - 1);
        (index >> self.lane_shift, lane as u32 * self.width)
    }

    /// Enables per-entry owner tags (required by Precise Flush).
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.owners = Some(OwnerTags::new(self.len));
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Index width in bits (`log2(len)`).
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// The value entries are reset to by flushes.
    pub fn reset_value(&self) -> u64 {
        self.reset_value
    }

    /// Reads the raw stored entry (no decode, no index scramble).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn read_raw(&self, index: usize) -> u64 {
        assert!(index < self.len, "index out of bounds");
        let (word, shift) = self.slot(index);
        (self.storage[word] >> shift) & mask_u64(self.width)
    }

    /// Writes the raw stored entry (no encode, no index scramble).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or `value` is wider than the entry.
    #[inline]
    pub fn write_raw(&mut self, index: usize, value: u64) {
        assert!(index < self.len, "index out of bounds");
        assert!(value <= mask_u64(self.width), "value wider than entry");
        let (word, shift) = self.slot(index);
        let mask = mask_u64(self.width);
        self.storage[word] = (self.storage[word] & !(mask << shift)) | (value << shift);
    }

    /// Keyed read: scrambles `index` with the context's index key, reads the
    /// physical entry and decodes it with the context's content key.
    ///
    /// When owner tracking is active (Precise Flush), an entry owned by a
    /// *different* hardware thread reads as the reset value: the thread-ID
    /// tag that enables precise flushing also prevents cross-thread reuse
    /// of history (paper Table 1, footnote 1).
    #[inline]
    pub fn get(&self, index: usize, ctx: &KeyCtx) -> u64 {
        let phys = ctx.scramble_index(index, self.index_bits);
        if ctx.owner_read_filter {
            if let Some(owners) = &self.owners {
                if let Some(owner) = owners.get(phys) {
                    if owner != ctx.thread {
                        return self.reset_value;
                    }
                }
            }
        }
        let (word, shift) = self.slot(phys);
        let raw = (self.storage[word] >> shift) & mask_u64(self.width);
        ctx.decode_word(raw, phys, self.width)
    }

    /// Keyed write: scrambles `index`, encodes `value` and stores it,
    /// recording the owner tag when owner tracking is active.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64, ctx: &KeyCtx) {
        let phys = ctx.scramble_index(index, self.index_bits);
        let encoded = ctx.encode_word(value, phys, self.width);
        let (word, shift) = self.slot(phys);
        let mask = mask_u64(self.width);
        self.storage[word] = (self.storage[word] & !(mask << shift)) | (encoded << shift);
        if ctx.owner_tracking {
            if let Some(owners) = &mut self.owners {
                owners.set(phys, ctx.thread);
            }
        }
    }

    /// Read-modify-write of a single logical entry under the context's keys.
    ///
    /// This mirrors the paper's non-BROB update path: decode, apply `f`,
    /// re-encode, write back.
    #[inline]
    pub fn update<F: FnOnce(u64) -> u64>(&mut self, index: usize, ctx: &KeyCtx, f: F) -> u64 {
        let old = self.get(index, ctx);
        let new = f(old) & mask_u64(self.width);
        self.set(index, new, ctx);
        new
    }

    /// Complete Flush: resets every entry (and all owner tags).
    ///
    /// This is the batched flush path: one `fill` of the packed storage
    /// with the precomputed reset word, so a CF context switch clears a
    /// 2 KB PHT by writing 2 KB, not 64 KB.
    pub fn flush_all(&mut self) {
        self.storage.fill(self.reset_word);
        if let Some(owners) = &mut self.owners {
            owners.clear();
        }
    }

    /// Precise Flush: resets only entries owned by `thread`.
    ///
    /// Without owner tags this is a no-op, matching hardware: a precise
    /// flush is impossible without the thread-ID storage. Runs in one pass
    /// over the tag array without allocating.
    pub fn flush_thread(&mut self, thread: ThreadId) {
        let (width, lane_shift, reset) = (self.width, self.lane_shift, self.reset_value);
        let mask = mask_u64(width);
        let lane_mask = (1usize << lane_shift) - 1;
        let t = thread.index() as u8;
        let storage = &mut self.storage;
        if let Some(owners) = &mut self.owners {
            for (i, tag) in owners.tags.iter_mut().enumerate() {
                if *tag == t {
                    let shift = (i & lane_mask) as u32 * width;
                    let word = &mut storage[i >> lane_shift];
                    *word = (*word & !(mask << shift)) | (reset << shift);
                    *tag = NO_OWNER;
                }
            }
        }
    }

    /// Storage cost in bits, including owner tags when enabled.
    ///
    /// This is the *architectural* cost (`len × width`), independent of the
    /// host-side packing.
    pub fn storage_bits(&self) -> u64 {
        let data = self.len as u64 * self.width as u64;
        let tags = if self.owners.is_some() {
            // 8-bit thread tags, mirroring our OwnerTags model. Real designs
            // could use ceil(log2(threads)) bits; the Table-5 harness uses
            // the analytical model in sbp-hwcost instead.
            self.len as u64 * 8
        } else {
            0
        };
        data + tags
    }

    /// Whether owner tags are enabled.
    pub fn has_owner_tags(&self) -> bool {
        self.owners.is_some()
    }

    /// Counts entries currently equal to the reset value (a warm-up/flush
    /// observability helper used by tests and experiments).
    pub fn count_reset_entries(&self) -> usize {
        (0..self.len)
            .filter(|&i| self.read_raw(i) == self.reset_value)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyPair;

    fn ctx_plain() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn new_table_is_reset() {
        let t = PackedTable::new(64, 2, 1);
        assert_eq!(t.len(), 64);
        assert_eq!(t.width(), 2);
        assert_eq!(t.index_bits(), 6);
        assert_eq!(t.count_reset_entries(), 64);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_len_panics() {
        let _ = PackedTable::new(48, 2, 0);
    }

    #[test]
    #[should_panic(expected = "entry width")]
    fn zero_width_panics() {
        let _ = PackedTable::new(16, 0, 0);
    }

    #[test]
    #[should_panic(expected = "reset value")]
    fn wide_reset_panics() {
        let _ = PackedTable::new(16, 2, 4);
    }

    #[test]
    fn raw_roundtrip() {
        let mut t = PackedTable::new(16, 12, 0);
        t.write_raw(3, 0xabc);
        assert_eq!(t.read_raw(3), 0xabc);
    }

    #[test]
    fn keyed_roundtrip_same_ctx() {
        let mut t = PackedTable::new(256, 2, 0);
        let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(77));
        for i in 0..256 {
            t.set(i, (i % 4) as u64, &ctx);
        }
        for i in 0..256 {
            assert_eq!(t.get(i, &ctx), (i % 4) as u64);
        }
    }

    #[test]
    fn baseline_ctx_stores_plaintext() {
        let mut t = PackedTable::new(16, 8, 0);
        t.set(5, 0x7f, &ctx_plain());
        assert_eq!(t.read_raw(5), 0x7f);
    }

    #[test]
    fn cross_key_reads_are_decorrelated() {
        let mut t = PackedTable::new(1024, 2, 0);
        let a = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(1));
        let b = KeyCtx::xor(ThreadId::new(1), KeyPair::from_random(2));
        let mut matches = 0;
        for i in 0..1024 {
            t.set(i, 3, &a);
            if t.get(i, &b) == 3 {
                matches += 1;
            }
        }
        // A 2-bit value matches by chance; with 32 distinct rotated key
        // slices the match count is quantized, but it must be nowhere near
        // "always readable".
        assert!(matches < 700, "cross-key matches: {matches}");
    }

    #[test]
    fn update_applies_rmw_under_keys() {
        let mut t = PackedTable::new(32, 2, 1);
        let ctx = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(9));
        t.set(7, 2, &ctx);
        let new = t.update(7, &ctx, |v| (v + 1).min(3));
        assert_eq!(new, 3);
        assert_eq!(t.get(7, &ctx), 3);
    }

    #[test]
    fn flush_all_resets_everything() {
        let mut t = PackedTable::new(64, 4, 2);
        let ctx = ctx_plain();
        for i in 0..64 {
            t.set(i, 9, &ctx);
        }
        t.flush_all();
        assert_eq!(t.count_reset_entries(), 64);
    }

    #[test]
    fn precise_flush_only_clears_owner() {
        let mut t = PackedTable::new(64, 4, 0).with_owner_tags();
        let mut a = KeyCtx::disabled(ThreadId::new(0));
        a.owner_tracking = true;
        let mut b = KeyCtx::disabled(ThreadId::new(1));
        b.owner_tracking = true;
        for i in 0..32 {
            t.set(i, 5, &a);
        }
        for i in 32..64 {
            t.set(i, 7, &b);
        }
        t.flush_thread(ThreadId::new(0));
        for i in 0..32 {
            assert_eq!(t.read_raw(i), 0, "thread-0 entry {i} not flushed");
        }
        for i in 32..64 {
            assert_eq!(t.read_raw(i), 7, "thread-1 entry {i} was flushed");
        }
    }

    #[test]
    fn precise_flush_without_tags_is_noop() {
        let mut t = PackedTable::new(16, 4, 0);
        t.write_raw(2, 9);
        t.flush_thread(ThreadId::new(0));
        assert_eq!(t.read_raw(2), 9);
    }

    #[test]
    fn storage_bits_accounting() {
        let t = PackedTable::new(4096, 2, 0);
        assert_eq!(t.storage_bits(), 8192);
        let t2 = PackedTable::new(4096, 2, 0).with_owner_tags();
        assert_eq!(t2.storage_bits(), 8192 + 4096 * 8);
        assert!(t2.has_owner_tags());
    }

    #[test]
    fn owner_tags_iteration() {
        let mut tags = OwnerTags::new(8);
        tags.set(1, ThreadId::new(3));
        tags.set(5, ThreadId::new(3));
        tags.set(6, ThreadId::new(2));
        let owned: Vec<usize> = tags.owned_by(ThreadId::new(3)).collect();
        assert_eq!(owned, vec![1, 5]);
        assert_eq!(tags.get(6), Some(ThreadId::new(2)));
        assert_eq!(tags.get(0), None);
        tags.clear();
        assert_eq!(tags.owned_by(ThreadId::new(3)).count(), 0);
        assert_eq!(tags.len(), 8);
        assert!(!tags.is_empty());
    }

    #[test]
    fn packed_lanes_do_not_interfere() {
        // Widths that pack many entries per word and widths that do not.
        for width in [1u32, 2, 3, 4, 8, 11, 13, 16, 32, 44, 64] {
            let max = mask_u64(width);
            let mut t = PackedTable::new(64, width, 0);
            for i in 0..64 {
                t.write_raw(i, (i as u64 * 0x9e37) & max);
            }
            for i in 0..64 {
                assert_eq!(t.read_raw(i), (i as u64 * 0x9e37) & max, "width={width}");
            }
        }
    }

    #[test]
    fn packed_flush_all_resets_every_lane() {
        let mut t = PackedTable::new(128, 2, 1);
        for i in 0..128 {
            t.write_raw(i, 3);
        }
        t.flush_all();
        for i in 0..128 {
            assert_eq!(t.read_raw(i), 1);
        }
        assert_eq!(t.count_reset_entries(), 128);
    }

    #[test]
    fn tiny_table_smaller_than_one_word() {
        // 16 one-bit entries fit in a quarter of a single storage word.
        let mut t = PackedTable::new(16, 1, 0);
        t.write_raw(15, 1);
        assert_eq!(t.read_raw(15), 1);
        assert_eq!(t.read_raw(14), 0);
        t.flush_all();
        assert_eq!(t.count_reset_entries(), 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn packed_read_out_of_bounds_panics() {
        let t = PackedTable::new(16, 2, 0);
        let _ = t.read_raw(16);
    }

    #[test]
    fn scrambled_indices_land_in_range() {
        let mut t = PackedTable::new(128, 3, 0);
        let ctx = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::new(0, u64::MAX));
        for i in 0..128 {
            t.set(i, 5, &ctx); // would panic if scramble escaped the range
            assert_eq!(t.get(i, &ctx), 5);
        }
    }
}
