//! The `tab01_predictors` catalog entry: the Table 1 grid extended with
//! TAGE-family front-ends.
//!
//! The BranchScope family attacks the deterministic bimodal harness and
//! ignores the direction-predictor choice, so its cells must be *exactly*
//! identical across the predictor axis — the control pinning that the
//! predictor extension changes only what it is supposed to change (the
//! BTB campaigns' front-end).

use sbp_attack::AttackKind;
use sbp_campaign::Catalog;

#[test]
fn branchscope_cells_are_identical_across_predictor_frontends() {
    // The registered grid at a test-sized trial count.
    let spec = Catalog::get("tab01_predictors")
        .expect("registered")
        .spec()
        .with_attacks(vec![AttackKind::BranchScope])
        .with_trials(150);
    let predictors = spec.predictors.clone();
    assert!(predictors.len() >= 3, "grid spans the TAGE family");
    let report = spec.run().expect("attack sweep");

    // For every (mechanism, mode) series, the BranchScope outcome of each
    // predictor column must match the Gshare column bit for bit.
    let mut compared = 0;
    for record in report.records.iter().filter(|r| r.predictor == "Gshare") {
        let attack = record.attack.as_ref().expect("attack record");
        for other in &predictors[1..] {
            let twin = report
                .records
                .iter()
                .find(|r| {
                    r.predictor == other.label()
                        && r.series == record.series
                        && r.interval == record.interval
                        && r.seed_index == record.seed_index
                })
                .expect("cell exists for every predictor");
            let twin_attack = twin.attack.as_ref().expect("attack record");
            assert_eq!(
                attack, twin_attack,
                "BranchScope is bimodal-harness-bound; {} vs {} differ in {} / {}",
                record.predictor, twin.predictor, record.series, record.interval
            );
            compared += 1;
        }
    }
    // 4 mechanisms × 2 modes × 2 non-Gshare predictors.
    assert_eq!(compared, 16, "every cell pair was compared");
}

#[test]
fn btb_campaigns_carry_real_predictor_columns() {
    // Sanity check on the extension itself: the BTB half of the grid
    // plans one job per predictor (the front-end axis is live, not
    // collapsed like BranchScope's).
    let spec = Catalog::get("tab01_predictors")
        .expect("registered")
        .spec()
        .with_attacks(vec![AttackKind::SpectreV2])
        .with_trials(100);
    let plan = sbp_sweep::plan(&spec);
    // predictors × mechanisms × modes × 1 attack × 1 seed.
    assert_eq!(plan.jobs.len(), 3 * 4 * 2);
    let fps = sbp_sweep::plan_fingerprints(&spec, &plan);
    let distinct: std::collections::BTreeSet<u64> = fps.into_iter().collect();
    assert_eq!(
        distinct.len(),
        plan.jobs.len(),
        "per-predictor cells are distinct store cells"
    );
}
