//! End-to-end tests of the `campaign` binary: a 2-worker fan-out must be
//! byte-identical to the in-process unsharded run of the same manifest,
//! and a killed worker must leave a resumable campaign where the second
//! pass executes exactly the missing jobs.
//!
//! Every assertion drives the real binary (via `CARGO_BIN_EXE_campaign`),
//! so the coordinator/worker subprocess plumbing, not just the library
//! functions, is under test. The manifests pin `SBP_SCALE` so the tests
//! are independent of the ambient environment.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use sbp_campaign::{Catalog, DIE_AFTER_ENV, DIE_EXIT_CODE, PERTURB_ENV, STALL_AFTER_ENV};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbp_campaign_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn write_manifest(dir: &Path, body: &str) -> PathBuf {
    let path = dir.join("manifest.json");
    std::fs::write(&path, body).expect("write manifest");
    path
}

/// Runs the campaign binary with every fault/perturbation knob stripped,
/// then the given environment applied on top.
fn campaign_with(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(args);
    for knob in [DIE_AFTER_ENV, STALL_AFTER_ENV, PERTURB_ENV] {
        cmd.env_remove(knob);
    }
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd.output().expect("run campaign binary")
}

/// Runs the campaign binary with the crash knob stripped unless
/// explicitly requested.
fn campaign(args: &[&str], die_after: Option<usize>) -> Output {
    match die_after {
        Some(n) => campaign_with(args, &[(DIE_AFTER_ENV, &n.to_string())]),
        None => campaign_with(args, &[]),
    }
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

/// Sum of the `executed N` counts in the relayed worker summary lines.
fn total_executed(stderr: &str) -> usize {
    stderr
        .lines()
        .filter_map(|line| {
            let mut words = line.split_whitespace();
            words.by_ref().find(|w| *w == "executed")?;
            words.next()?.parse::<usize>().ok()
        })
        .sum()
}

/// Completed cells across every shard store of `entry` in `dir`.
fn stored_cells(dir: &Path, entry: &str) -> usize {
    std::fs::read_dir(dir)
        .expect("read out_dir")
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with(&format!("{entry}.shard")) && name.ends_with(".jsonl")
        })
        .map(|e| {
            std::fs::read_to_string(e.path())
                .expect("read shard store")
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count()
        })
        .sum()
}

#[test]
fn two_worker_campaign_is_byte_identical_to_the_in_process_run() {
    let dir = tmp_dir("byte_identical");
    let manifest = write_manifest(
        &dir,
        &format!(
            r#"{{"entries":["smoke_single","smoke_attack"],"workers":2,
                "scale":0.02,"out_dir":"{}"}}"#,
            dir.join("stores").display()
        ),
    );
    let manifest = manifest.to_str().expect("utf8 path");

    let reference = campaign(&["--in-process", manifest], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));
    let reference_stdout = stdout_of(&reference);
    assert!(
        reference_stdout.contains("Noisy-XOR-BP"),
        "reference run printed a report: {reference_stdout:?}"
    );

    let sharded = campaign(&[manifest], None);
    assert!(sharded.status.success(), "{}", stderr_of(&sharded));
    assert_eq!(
        stdout_of(&sharded),
        reference_stdout,
        "2-worker merged report differs from the unsharded in-process run"
    );

    // The merged canonical stores exist, and a second campaign run
    // resumes from the shard stores: zero jobs executed, same bytes out.
    for entry in ["smoke_single", "smoke_attack"] {
        assert!(dir.join("stores").join(format!("{entry}.jsonl")).is_file());
    }
    let resumed = campaign(&[manifest], None);
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert_eq!(stdout_of(&resumed), reference_stdout);
    assert_eq!(
        total_executed(&stderr_of(&resumed)),
        0,
        "every cell came from the stores: {}",
        stderr_of(&resumed)
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn killed_worker_rerun_executes_exactly_the_missing_jobs() {
    let dir = tmp_dir("crash_rerun");
    let stores = dir.join("stores");
    let body = format!(
        r#"{{"entries":["smoke_single"],"workers":2,"scale":0.02,
            "seeds":3,"retries":0,"out_dir":"{}"}}"#,
        stores.display()
    );
    let manifest = write_manifest(&dir, &body);
    let manifest = manifest.to_str().expect("utf8 path");
    let total_jobs = sbp_sweep::plan(
        &Catalog::get("smoke_single")
            .expect("registered")
            .spec()
            .with_seeds(3),
    )
    .jobs
    .len();

    // Reference: an uninterrupted in-process run of the same manifest.
    let reference = campaign(&["--in-process", manifest], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    // Crash run: workers die after one append; with retries 0 the
    // campaign fails but leaves resumable shard stores behind.
    let crashed = campaign(&[manifest], Some(1));
    assert!(!crashed.status.success(), "injected crash must fail");
    assert!(
        stderr_of(&crashed).contains("resumable"),
        "failure explains how to resume: {}",
        stderr_of(&crashed)
    );
    let stored = stored_cells(&dir.join("stores"), "smoke_single");
    assert!(
        stored > 0 && stored < total_jobs,
        "the crash landed mid-campaign ({stored}/{total_jobs} cells stored)"
    );

    // Re-run without the knob: exactly the missing jobs execute, and the
    // final report is byte-identical to the uninterrupted run.
    let rerun = campaign(&[manifest], None);
    assert!(rerun.status.success(), "{}", stderr_of(&rerun));
    assert_eq!(
        total_executed(&stderr_of(&rerun)),
        total_jobs - stored,
        "rerun executed only the missing jobs: {}",
        stderr_of(&rerun)
    );
    assert_eq!(stdout_of(&rerun), stdout_of(&reference));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn coordinator_retries_a_crashed_shard_within_one_run() {
    let dir = tmp_dir("retry");
    let manifest = write_manifest(
        &dir,
        &format!(
            r#"{{"entries":["smoke_single"],"workers":2,"scale":0.02,
                "seeds":3,"retries":1,"out_dir":"{}"}}"#,
            dir.join("stores").display()
        ),
    );
    let manifest = manifest.to_str().expect("utf8 path");

    let reference = campaign(&["--in-process", manifest], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    // The knob kills at least one first-attempt worker (exit 42); the
    // coordinator strips it for the retry, which finishes the shard.
    let retried = campaign(&[manifest], Some(1));
    let err = stderr_of(&retried);
    assert!(retried.status.success(), "{err}");
    assert!(
        err.contains(&format!("exit status: {DIE_EXIT_CODE}")) && err.contains("retrying"),
        "retry path was exercised: {err}"
    );
    assert_eq!(stdout_of(&retried), stdout_of(&reference));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stalled_worker_is_killed_and_its_retry_executes_the_missing_jobs() {
    let dir = tmp_dir("stall");
    let manifest = write_manifest(
        &dir,
        &format!(
            r#"{{"entries":["smoke_single"],"workers":2,"scale":0.02,
                "seeds":3,"retries":1,"out_dir":"{}"}}"#,
            dir.join("stores").display()
        ),
    );
    let manifest = manifest.to_str().expect("utf8 path");
    let total_jobs = sbp_sweep::plan(
        &Catalog::get("smoke_single")
            .expect("registered")
            .spec()
            .with_seeds(3),
    )
    .jobs
    .len();

    let reference = campaign(&["--in-process", manifest], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    // Every worker wedges after one append; the heartbeat kills them and
    // the in-run retry (knobs stripped) finishes exactly the remainder.
    let healed = campaign_with(
        &["--stall-timeout", "2", manifest],
        &[(STALL_AFTER_ENV, "1")],
    );
    let err = stderr_of(&healed);
    assert!(healed.status.success(), "{err}");
    // Each wedged worker logs one hang line after its single append;
    // shards owning no jobs complete without wedging.
    let wedged = err
        .lines()
        .filter(|l| l.contains("hanging after 1 append(s)"))
        .count();
    assert!(wedged > 0, "the fault knob must bite at least one worker");
    assert!(
        err.contains("stalled"),
        "heartbeat kill was exercised: {err}"
    );
    assert!(err.contains("retrying"), "retry pass ran: {err}");
    // Only completing workers print summaries; the wedged ones appended
    // one cell each before the kill, so the completing passes executed
    // exactly the missing jobs.
    assert_eq!(
        total_executed(&err),
        total_jobs - wedged,
        "retry executed only the missing jobs: {err}"
    );
    assert_eq!(
        stdout_of(&healed),
        stdout_of(&reference),
        "healed campaign report is byte-identical to the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn check_mode_verdicts_pass_and_are_shard_invariant() {
    let dir = tmp_dir("check");
    let manifest = write_manifest(
        &dir,
        &format!(
            r#"{{"entries":["smoke_single","smoke_attack"],"workers":2,
                "scale":0.02,"out_dir":"{}"}}"#,
            dir.join("stores").display()
        ),
    );
    let manifest = manifest.to_str().expect("utf8 path");

    let reference = campaign(&["--in-process", "--check", manifest], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));
    let reference_stdout = stdout_of(&reference);
    for needle in [
        "verdict[smoke_single]: PASS",
        "verdict[smoke_attack]: PASS",
        "conformance: within tolerance of the paper",
    ] {
        assert!(reference_stdout.contains(needle), "{reference_stdout}");
    }

    // The sharded coordinator prints byte-identical verdicts: the oracle
    // is a pure function of the merged (plan-ordered) report.
    let sharded = campaign(&["--check", manifest], None);
    assert!(sharded.status.success(), "{}", stderr_of(&sharded));
    assert_eq!(stdout_of(&sharded), reference_stdout);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn check_mode_fails_when_expectations_are_perturbed() {
    let dir = tmp_dir("perturb");
    let manifest = write_manifest(
        &dir,
        &format!(
            r#"{{"entries":["smoke_attack"],"scale":0.02,"out_dir":"{}"}}"#,
            dir.join("stores").display()
        ),
    );
    let manifest = manifest.to_str().expect("utf8 path");

    let perturbed = campaign_with(&["--check", manifest], &[(PERTURB_ENV, "1")]);
    assert!(
        !perturbed.status.success(),
        "a perturbed expectation set must fail the campaign"
    );
    let out = stdout_of(&perturbed);
    assert!(
        out.contains("verdict[smoke_attack]: FAIL") && out.contains("OUT OF TOLERANCE"),
        "{out}"
    );
    assert!(
        stderr_of(&perturbed).contains("paper-expectation check failed"),
        "{}",
        stderr_of(&perturbed)
    );

    // Without the knob the same stores pass: the data is fine, the
    // perturbed oracle was the only thing failing.
    let clean = campaign(&["--check", manifest], None);
    assert!(clean.status.success(), "{}", stderr_of(&clean));
    assert!(stdout_of(&clean).contains("verdict[smoke_attack]: PASS"));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn campaign_rejects_unknown_entries_and_bad_manifests() {
    let dir = tmp_dir("bad_input");
    let unknown = write_manifest(&dir, r#"{"entries":["fig99"],"workers":2}"#);
    let out = campaign(&[unknown.to_str().expect("utf8")], None);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("fig99"), "{}", stderr_of(&out));

    let out = campaign(&["/no/such/manifest.json"], None);
    assert!(!out.status.success());

    let typo = write_manifest(&dir, r#"{"entries":["smoke_single"],"worker":2}"#);
    let out = campaign(&[typo.to_str().expect("utf8")], None);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("unknown key"),
        "{}",
        stderr_of(&out)
    );

    // CLI option validation: unknown flags, bad stall timeouts, and
    // flags the selected mode cannot honor are rejected, not ignored.
    let out = campaign(&["--frobnicate"], None);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown option"));
    for bad in [
        &["--stall-timeout"][..],
        &["--stall-timeout", "0"][..],
        // Beyond Duration's range: a clean error, not a conversion panic.
        &["--stall-timeout", "1e20"][..],
    ] {
        let out = campaign(bad, None);
        assert!(!out.status.success(), "{bad:?}");
        assert!(stderr_of(&out).contains("stall-timeout"));
        assert_ne!(out.status.code(), Some(101), "{bad:?} must not panic");
    }
    let out = campaign(&["--list", "--check"], None);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--list takes no other"));
    let out = campaign(
        &["--in-process", "--stall-timeout", "5", "manifest.json"],
        None,
    );
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("no workers to watch"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn telemetry_campaign_is_observation_only_and_its_timeline_reports() {
    let dir = tmp_dir("telemetry");
    let plain_stores = dir.join("plain");
    let telemetry_stores = dir.join("telemetry");
    let body = |stores: &Path, extra: &str| {
        format!(
            r#"{{"entries":["smoke_single","smoke_attack"],"workers":2,
                "scale":0.02,"out_dir":"{}"{extra}}}"#,
            stores.display()
        )
    };
    let plain_manifest = dir.join("plain.json");
    std::fs::write(&plain_manifest, body(&plain_stores, "")).expect("write manifest");
    let telemetry_manifest = dir.join("telemetry.json");
    std::fs::write(
        &telemetry_manifest,
        body(&telemetry_stores, r#","telemetry":true"#),
    )
    .expect("write manifest");
    let trace = dir.join("trace.json");

    // Observation-only: the telemetry campaign's stdout and canonical
    // stores are byte-identical to the plain campaign's.
    let plain = campaign(&[plain_manifest.to_str().expect("utf8")], None);
    assert!(plain.status.success(), "{}", stderr_of(&plain));
    let traced = campaign(
        &[
            "--trace-out",
            trace.to_str().expect("utf8"),
            telemetry_manifest.to_str().expect("utf8"),
        ],
        None,
    );
    assert!(traced.status.success(), "{}", stderr_of(&traced));
    assert_eq!(
        stdout_of(&traced),
        stdout_of(&plain),
        "telemetry changed the campaign's stdout"
    );
    for entry in ["smoke_single", "smoke_attack"] {
        let plain_store =
            std::fs::read(plain_stores.join(format!("{entry}.jsonl"))).expect("plain store");
        let telemetry_store = std::fs::read(telemetry_stores.join(format!("{entry}.jsonl")))
            .expect("telemetry store");
        assert_eq!(
            plain_store, telemetry_store,
            "telemetry changed the canonical {entry} store"
        );
    }

    // The merged timeline exists, validates, covers both entries and
    // both worker lanes, and the Chrome trace export is well-formed.
    let timeline = sbp_telemetry::read_events(&telemetry_stores.join("telemetry.jsonl"))
        .expect("merged timeline readable");
    let stats = sbp_telemetry::validate(&timeline).expect("merged timeline validates");
    assert!(stats.spans > 0, "no spans in {stats:?}");
    for entry in ["smoke_single", "smoke_attack"] {
        assert!(
            timeline.iter().any(|e| e.entry == entry && e.job.is_some()),
            "no job-lane events for {entry}"
        );
    }
    assert!(
        stderr_of(&traced).contains("campaign telemetry:"),
        "{}",
        stderr_of(&traced)
    );
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_text.contains("traceEvents"), "{trace_text:?}");

    // `campaign report` summarizes the recorded out_dir.
    let report = campaign(&["report", telemetry_stores.to_str().expect("utf8")], None);
    assert!(report.status.success(), "{}", stderr_of(&report));
    let report_out = stdout_of(&report);
    for needle in ["events validated", "smoke_single", "smoke_attack"] {
        assert!(report_out.contains(needle), "{report_out}");
    }
    // ... and demands a timeline when none was recorded.
    let missing = campaign(&["report", plain_stores.to_str().expect("utf8")], None);
    assert!(!missing.status.success());
    assert!(
        stderr_of(&missing).contains("--telemetry"),
        "{}",
        stderr_of(&missing)
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn list_mode_prints_the_whole_catalog() {
    let out = campaign(&["--list"], None);
    assert!(out.status.success());
    let text = stdout_of(&out);
    for entry in Catalog::entries() {
        assert!(text.contains(entry.name), "missing {}", entry.name);
    }
}
