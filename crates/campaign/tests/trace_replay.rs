//! End-to-end replay pinning: a trace recorded from a `WorkloadProfile`
//! and replayed through `TraceReplayer` produces reports **byte-identical**
//! to running the generator directly, and the phase-clustered schedule is
//! deterministic run to run.
//!
//! This integration binary owns its environment: the scale pin below runs
//! before anything reads `SBP_SCALE` (the value is cached per process),
//! keeping the recorded stream sizes test-friendly.

use std::path::PathBuf;

use sbp_campaign::{record_spec, verify_spec, Catalog, TraceOptions};
use sbp_core::Mechanism;
use sbp_sim::{SamplingPlan, SwitchInterval, WorkBudget};
use sbp_sweep::{CaseSpec, SweepSpec};

fn pin_scale() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("SBP_SCALE", "0.02"));
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbp-replay-it-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A small replay grid over its own capture directory: one case, two
/// mechanisms' worth of jobs, a quick budget, and a phase-clustered
/// hybrid plan.
fn phased_spec(dir: &std::path::Path) -> SweepSpec {
    let dir = dir.display();
    let plan = SamplingPlan {
        phase_windows: 3,
        ..SamplingPlan::quick_functional()
    };
    SweepSpec::single("it: phased replay")
        .with_cases(vec![CaseSpec::pair(
            "gcc+calculix",
            &format!("replay:gcc@{dir}"),
            &format!("replay:calculix@{dir}"),
        )])
        .with_intervals(vec![SwitchInterval::M8])
        .with_mechanisms(vec![Mechanism::noisy_xor_pht()])
        .with_budget(WorkBudget::quick())
        .with_sampling(Some(plan))
        .with_seeds(2)
        .with_master_seed(0x7e57_0001)
}

#[test]
fn recorded_traces_replay_byte_identically_to_the_generator() {
    pin_scale();
    let dir = tmp_dir("roundtrip");
    let spec = phased_spec(&dir);
    let opts = TraceOptions::default();
    let recorded = record_spec(&spec, "it-roundtrip", &opts).expect("record");
    assert_eq!(recorded.len(), 4, "1 case x 2 replicas x 2 contexts");
    for r in &recorded {
        assert!(r.job.path.exists());
        assert!(r.info.count > 0);
    }
    // The pinned acceptance claim: replay report == generator report,
    // byte for byte (uniform plan on both sides — see `verify_spec`).
    verify_spec(&spec, "it-roundtrip", &opts).expect("byte-identical reports");
}

#[test]
fn phase_clustered_replay_runs_are_deterministic() {
    pin_scale();
    let dir = tmp_dir("phased");
    let spec = phased_spec(&dir);
    record_spec(&spec, "it-phased", &TraceOptions::default()).expect("record");
    let a = spec.run().expect("phased run").to_table();
    let b = spec.run().expect("phased rerun").to_table();
    assert_eq!(a, b, "phase-clustered replay must be byte-deterministic");
    assert!(a.contains("gcc+calculix"), "report covers the replay case");
}

#[test]
fn catalog_replay_twin_records_and_checks_under_a_dir_override() {
    pin_scale();
    let dir = tmp_dir("catalog");
    let entry = Catalog::get("fig08_replay").expect("registered");
    let opts = TraceOptions {
        dir: Some(dir),
        ..TraceOptions::default()
    };
    let recorded = sbp_campaign::record_entry(entry, &opts).expect("record");
    assert_eq!(recorded.len(), 6, "1 case x 3 replicas x 2 contexts");
    sbp_campaign::verify_entry(entry, &opts).expect("byte-identical reports");
}
