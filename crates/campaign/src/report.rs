//! `campaign report <out_dir>` — the offline summary over a merged
//! telemetry timeline.
//!
//! Reads `<out_dir>/telemetry.jsonl` (written by a `--telemetry`
//! campaign run), validates it, and prints one aligned row per catalog
//! entry: job count, wall time, the per-phase breakdown (warm / gap /
//! steady / event / measure — the same buckets `--profile` prints live,
//! recovered here from the recorded spans), checkpoint-cache hit rates
//! and the worker imbalance ratio, followed by the slowest measurement
//! windows across the whole campaign. Everything it prints is derived
//! from the timeline file alone, so a report can be (re)generated long
//! after the run.

use std::collections::HashMap;
use std::path::Path;

use sbp_telemetry::Kind;
use sbp_types::SbpError;

/// The wall-clock phase spans recovered from the timeline, in the same
/// order `--profile` prints them.
const PHASES: [&str; 5] = ["warm", "gap", "steady_window", "event_window", "measure"];

/// Per-entry aggregates accumulated from the timeline.
#[derive(Default)]
struct EntryStats {
    jobs: usize,
    /// Entry control-span duration (seconds), when the span closed.
    wall_secs: Option<f64>,
    /// Timestamp range fallback for crashed/unfinished entries.
    ts_min: Option<u64>,
    ts_max: Option<u64>,
    /// Wall seconds per phase span name.
    phase_secs: HashMap<&'static str, f64>,
    warm_hits: u64,
    warm_misses: u64,
    window_hits: u64,
    window_misses: u64,
    /// Summed job-span wall seconds per shard lane.
    shard_secs: HashMap<u32, f64>,
}

impl EntryStats {
    fn wall(&self) -> Option<f64> {
        self.wall_secs.or_else(|| match (self.ts_min, self.ts_max) {
            (Some(lo), Some(hi)) => Some((hi - lo) as f64 / 1e6),
            _ => None,
        })
    }

    /// Max-over-mean of the per-shard job seconds — 1.00x is a perfectly
    /// balanced fan-out. `None` below two active shards.
    fn imbalance(&self) -> Option<f64> {
        if self.shard_secs.len() < 2 {
            return None;
        }
        let max = self.shard_secs.values().cloned().fold(0.0, f64::max);
        let mean = self.shard_secs.values().sum::<f64>() / self.shard_secs.len() as f64;
        if mean > 0.0 {
            Some(max / mean)
        } else {
            None
        }
    }
}

/// Hit rate as `" 87%"`, `"   -"` when the cache saw no lookups.
fn rate(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        return format!("{:>4}", "-");
    }
    format!("{:>3.0}%", 100.0 * hits as f64 / total as f64)
}

/// Runs the report over `<out_dir>/telemetry.jsonl` and prints it to
/// stdout.
///
/// # Errors
///
/// Returns a campaign error when the timeline file is missing or
/// unreadable (pointing at `--telemetry`), or when it fails validation.
pub fn run_report(out_dir: &Path) -> Result<(), SbpError> {
    let path = out_dir.join("telemetry.jsonl");
    let events = sbp_telemetry::read_events(&path).map_err(|e| {
        SbpError::campaign(format!(
            "{e}; run the campaign with --telemetry (or \"telemetry\": true \
             in the manifest) to record a timeline first"
        ))
    })?;
    let stats = sbp_telemetry::validate(&events)
        .map_err(|e| SbpError::campaign(format!("{}: invalid timeline: {e}", path.display())))?;
    println!(
        "telemetry: {} events validated ({} spans, {} counters, {} gauges, {} marks)",
        stats.events, stats.spans, stats.counters, stats.gauges, stats.marks
    );
    println!();

    // First-seen entry order — the merge wrote entries in manifest order.
    let mut order: Vec<String> = Vec::new();
    let mut per_entry: HashMap<String, EntryStats> = HashMap::new();
    // (duration secs, span name, entry, shard, job) for the slow-window list.
    let mut windows: Vec<(f64, String, String, u32, u64)> = Vec::new();
    for e in &events {
        if e.entry.is_empty() {
            continue;
        }
        if !per_entry.contains_key(&e.entry) {
            order.push(e.entry.clone());
        }
        let s = per_entry.entry(e.entry.clone()).or_default();
        s.ts_min = Some(s.ts_min.map_or(e.ts_us, |t| t.min(e.ts_us)));
        s.ts_max = Some(s.ts_max.map_or(e.ts_us, |t| t.max(e.ts_us)));
        match (e.kind, e.job) {
            (Kind::Begin, Some(_)) if e.name == "job" => s.jobs += 1,
            (Kind::End, Some(job)) => {
                let secs = e.value / 1e6;
                if e.name == "job" {
                    *s.shard_secs.entry(e.shard).or_default() += secs;
                } else if let Some(phase) = PHASES.iter().find(|p| **p == e.name) {
                    *s.phase_secs.entry(phase).or_default() += secs;
                    if e.name.ends_with("_window") {
                        windows.push((secs, e.name.clone(), e.entry.clone(), e.shard, job));
                    }
                }
            }
            (Kind::End, None) if e.name == "entry" => s.wall_secs = Some(e.value / 1e6),
            (Kind::Counter, _) => match e.name.as_str() {
                "warm_cache_hit" => s.warm_hits += e.value as u64,
                "warm_cache_miss" => s.warm_misses += e.value as u64,
                "window_cache_hit" => s.window_hits += e.value as u64,
                "window_cache_miss" => s.window_misses += e.value as u64,
                _ => {}
            },
            _ => {}
        }
    }

    println!(
        "{:<18} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5} {:>5} {:>7}",
        "entry",
        "jobs",
        "wall s",
        "warm s",
        "gap s",
        "steady s",
        "event s",
        "meas s",
        "warm$",
        "win$",
        "imbal",
    );
    for name in &order {
        let s = &per_entry[name];
        let wall = s
            .wall()
            .map_or_else(|| format!("{:>8}", "-"), |w| format!("{w:>8.2}"));
        let phase = |p: &str| {
            s.phase_secs
                .get(p)
                .map_or_else(|| format!("{:>8}", "-"), |v| format!("{v:>8.2}"))
        };
        let imbal = s
            .imbalance()
            .map_or_else(|| format!("{:>7}", "-"), |r| format!("{r:>6.2}x"));
        println!(
            "{:<18} {:>5} {wall} {} {} {} {} {} {} {} {imbal}",
            name,
            s.jobs,
            phase("warm"),
            phase("gap"),
            phase("steady_window"),
            phase("event_window"),
            phase("measure"),
            rate(s.warm_hits, s.warm_misses),
            rate(s.window_hits, s.window_misses),
        );
    }

    if !windows.is_empty() {
        windows.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!();
        println!("slowest measurement windows:");
        for (secs, name, entry, shard, job) in windows.iter().take(5) {
            println!(
                "  {:>9.1} ms  {name:<13} entry {entry} shard {shard} job {job}",
                secs * 1e3
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_telemetry::Event;

    #[test]
    fn report_demands_a_timeline() {
        let err = run_report(Path::new("/no/such/out_dir")).expect_err("missing timeline");
        assert!(err.to_string().contains("--telemetry"), "{err}");
    }

    #[test]
    fn rates_handle_empty_caches() {
        assert_eq!(rate(0, 0).trim(), "-");
        assert_eq!(rate(3, 1).trim(), "75%");
    }

    #[test]
    fn report_summarizes_a_synthetic_timeline() {
        let dir = std::env::temp_dir().join(format!("sbp_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mk = |job, seq, kind, id, name: &str, value: f64| Event {
            entry: "fig01".into(),
            shard: 1,
            job,
            seq,
            id,
            det: false,
            ts_us: 10 * seq as u64,
            kind,
            name: name.into(),
            value,
            detail: String::new(),
        };
        let id = sbp_telemetry::span_id(1, Some(0), 0);
        let events = vec![
            mk(Some(0), 0, Kind::Begin, id, "job", 0.0),
            mk(Some(0), 1, Kind::Counter, 0, "warm_cache_hit", 1.0),
            mk(Some(0), 2, Kind::End, id, "job", 2_000_000.0),
        ];
        sbp_telemetry::write_events(&dir.join("telemetry.jsonl"), &events).expect("write");
        run_report(&dir).expect("report runs");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
