//! The campaign manifest: which catalog entries to run, at what scale,
//! across how many worker processes.
//!
//! A manifest is a single JSON object parsed with the sweep store's
//! self-contained [`sbp_sweep::json`] reader (the workspace builds
//! offline — no external JSON dependency exists):
//!
//! ```json
//! {
//!   "entries": ["fig01", "fig07", "tab01_btb"],
//!   "workers": 4,
//!   "scale": 0.5,
//!   "seeds": 5,
//!   "out_dir": "stores",
//!   "retries": 1,
//!   "sampling": false
//! }
//! ```
//!
//! Only `entries` is required. Unknown keys are rejected rather than
//! ignored — a typo'd `worker` silently running single-process would be
//! the quiet failure this workspace's parsers exist to prevent.

use std::path::{Path, PathBuf};

use sbp_sim::GapMode;
use sbp_sweep::json;
use sbp_sweep::SweepSpec;
use sbp_types::SbpError;

use crate::catalog::{Catalog, CatalogEntry};

/// Parses a gap-mode name as it appears in manifests and on the CLI.
///
/// # Errors
///
/// Returns a campaign error naming the accepted spellings.
pub fn parse_gap_mode(raw: &str) -> Result<GapMode, SbpError> {
    match raw {
        "fast-forward" => Ok(GapMode::FastForward),
        "functional" => Ok(GapMode::Functional),
        other => Err(SbpError::campaign(format!(
            "unknown gap mode {other:?} (expected \"fast-forward\" or \"functional\")"
        ))),
    }
}

/// A parsed campaign manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Catalog entry names to run, manifest order.
    pub entries: Vec<String>,
    /// Worker subprocesses per entry (≥ 1).
    pub workers: usize,
    /// Optional seed-replica override applied to every entry's spec.
    pub seeds: Option<u32>,
    /// Optional `SBP_SCALE` the whole campaign (coordinator and workers)
    /// runs under; `None` inherits the environment.
    pub scale: Option<f64>,
    /// Directory holding the shard stores and merged canonical stores.
    pub out_dir: PathBuf,
    /// How many times a crashed worker's shard is retried before the
    /// campaign gives up (the shard store stays resumable either way).
    pub retries: u32,
    /// Run every simulation entry with its mode's default
    /// [`sbp_sim::SamplingPlan`] (warm-checkpoint + stratified-window
    /// estimation) instead of exact full-budget measurement. Attack
    /// entries are unaffected, and entries whose catalog spec already
    /// bakes a sampling plan (the replay twins) keep their own plan. Sampled and exact results live under
    /// different store fingerprints, so flipping this never corrupts an
    /// existing store.
    pub sampling: bool,
    /// Gap strategy for sampled runs (`"gap_mode"`, only meaningful with
    /// `sampling`): fast-forward selects the classic skip-and-rewarm
    /// default plans, functional the hybrid plans with state-exact
    /// executed gaps. The two live under different store fingerprints.
    pub gap_mode: GapMode,
    /// Intra-worker window-parallelism width (`"window_threads"`): with
    /// `n > 1`, each sampled cell's measurement windows fan out across
    /// `n` threads per worker. Results are bit-identical at any width;
    /// `None` leaves the `SBP_WINDOW_THREADS` environment default.
    pub window_threads: Option<usize>,
    /// Record a structured telemetry timeline (`"telemetry"`): workers
    /// write sidecar `<entry>.telemetry.shard<k>of<n>.jsonl` streams and
    /// the coordinator merges them into `<out_dir>/telemetry.jsonl`.
    /// Observation-only: reports, stores and verdicts are byte-identical
    /// with or without it. Also switched on by `--telemetry` or
    /// `--trace-out`.
    pub telemetry: bool,
}

const KNOWN_KEYS: [&str; 10] = [
    "entries",
    "workers",
    "seeds",
    "scale",
    "out_dir",
    "retries",
    "sampling",
    "gap_mode",
    "window_threads",
    "telemetry",
];

impl Manifest {
    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a campaign error naming the offending field for malformed
    /// JSON, unknown keys, missing/empty `entries`, or out-of-range
    /// values.
    pub fn parse(text: &str) -> Result<Self, SbpError> {
        let bad = |e: String| SbpError::campaign(format!("manifest: {e}"));
        let value = json::parse(text).map_err(bad)?;
        let obj = value
            .as_object()
            .ok_or_else(|| SbpError::campaign("manifest: not a JSON object"))?;
        let mut seen = std::collections::BTreeSet::new();
        for (key, _) in obj {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return Err(SbpError::campaign(format!(
                    "manifest: unknown key {key:?} (known: {})",
                    KNOWN_KEYS.join(", ")
                )));
            }
            if !seen.insert(key.as_str()) {
                return Err(SbpError::campaign(format!(
                    "manifest: duplicate key {key:?}"
                )));
            }
        }
        let entries = json::get(obj, "entries")
            .map_err(bad)?
            .as_array()
            .ok_or_else(|| SbpError::campaign("manifest: \"entries\" is not an array"))?
            .iter()
            .map(|v| match v {
                json::Value::Str(s) => Ok(s.clone()),
                other => Err(SbpError::campaign(format!(
                    "manifest: entry {other:?} is not a string"
                ))),
            })
            .collect::<Result<Vec<String>, SbpError>>()?;
        if entries.is_empty() {
            return Err(SbpError::campaign("manifest: \"entries\" is empty"));
        }
        let workers = json::opt_u64(obj, "workers").map_err(bad)?.unwrap_or(1);
        if workers == 0 {
            return Err(SbpError::campaign("manifest: \"workers\" must be >= 1"));
        }
        let workers = usize::try_from(workers).map_err(|_| {
            SbpError::campaign(format!("manifest: \"workers\" {workers} is out of range"))
        })?;
        let seeds = match json::opt_u64(obj, "seeds").map_err(bad)? {
            None => None,
            Some(0) => return Err(SbpError::campaign("manifest: \"seeds\" must be >= 1")),
            Some(s) => Some(u32::try_from(s).map_err(|_| {
                SbpError::campaign(format!("manifest: \"seeds\" {s} is out of range"))
            })?),
        };
        let scale = json::opt_f64(obj, "scale").map_err(bad)?;
        if scale.is_some_and(|s| !s.is_finite() || s <= 0.0) {
            return Err(SbpError::campaign("manifest: \"scale\" must be > 0"));
        }
        let out_dir = PathBuf::from(
            json::opt_str(obj, "out_dir")
                .map_err(bad)?
                .unwrap_or("stores"),
        );
        let retries = match json::opt_u64(obj, "retries").map_err(bad)? {
            None => 1,
            Some(r) => u32::try_from(r).map_err(|_| {
                SbpError::campaign(format!("manifest: \"retries\" {r} is out of range"))
            })?,
        };
        let sampling = json::opt_bool(obj, "sampling")
            .map_err(bad)?
            .unwrap_or(false);
        let gap_mode = match json::opt_str(obj, "gap_mode").map_err(bad)? {
            None => GapMode::FastForward,
            Some(raw) => {
                if !sampling {
                    return Err(SbpError::campaign(
                        "manifest: \"gap_mode\" needs \"sampling\": true",
                    ));
                }
                parse_gap_mode(raw).map_err(|e| SbpError::campaign(format!("manifest: {e}")))?
            }
        };
        let window_threads = match json::opt_u64(obj, "window_threads").map_err(bad)? {
            None => None,
            Some(0) => {
                return Err(SbpError::campaign(
                    "manifest: \"window_threads\" must be >= 1",
                ))
            }
            Some(n) => Some(usize::try_from(n).map_err(|_| {
                SbpError::campaign(format!("manifest: \"window_threads\" {n} is out of range"))
            })?),
        };
        let telemetry = json::opt_bool(obj, "telemetry")
            .map_err(bad)?
            .unwrap_or(false);
        Ok(Manifest {
            entries,
            workers,
            seeds,
            scale,
            out_dir,
            retries,
            sampling,
            gap_mode,
            window_threads,
            telemetry,
        })
    }

    /// Loads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// Returns a campaign error when the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, SbpError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SbpError::campaign(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Resolves every entry against the catalog and materializes its spec
    /// with the manifest's overrides applied — the single source both the
    /// coordinator/worker fan-out and the in-process reference run build
    /// their grids from.
    ///
    /// # Errors
    ///
    /// Returns a campaign error naming the first unregistered entry.
    pub fn specs(&self) -> Result<Vec<(&'static CatalogEntry, SweepSpec)>, SbpError> {
        self.entries
            .iter()
            .map(|name| {
                let entry = Catalog::get(name).ok_or_else(|| {
                    SbpError::campaign(format!(
                        "unknown catalog entry {name:?} (run `campaign --list` for the registry)"
                    ))
                })?;
                let mut spec = entry.spec();
                if let Some(seeds) = self.seeds {
                    spec = spec.with_seeds(seeds);
                }
                // Entries that bake their own plan (the replay twins'
                // phase-clustered schedules) keep it — the knob only
                // fills in a default where the catalog left none.
                if self.sampling && spec.sampling.is_none() {
                    spec = spec.with_default_sampling_mode(self.gap_mode);
                }
                Ok((entry, spec))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_manifest_parses() {
        let m = Manifest::parse(
            r#"{"entries":["fig01","tab01_btb"],"workers":4,"scale":0.5,
                "seeds":5,"out_dir":"/tmp/c","retries":2,"sampling":true}"#,
        )
        .expect("parse");
        assert_eq!(m.entries, vec!["fig01", "tab01_btb"]);
        assert_eq!(m.workers, 4);
        assert_eq!(m.seeds, Some(5));
        assert_eq!(m.scale, Some(0.5));
        assert_eq!(m.out_dir, PathBuf::from("/tmp/c"));
        assert_eq!(m.retries, 2);
        assert!(m.sampling);
        assert_eq!(m.gap_mode, GapMode::FastForward);
        assert_eq!(m.window_threads, None);
        assert!(!m.telemetry, "telemetry defaults off");
    }

    #[test]
    fn telemetry_key_parses_and_validates() {
        let m = Manifest::parse(r#"{"entries":["fig01"],"telemetry":true}"#).expect("parse");
        assert!(m.telemetry);
        assert!(
            Manifest::parse(r#"{"entries":["fig01"],"telemetry":"on"}"#).is_err(),
            "non-boolean telemetry is rejected"
        );
    }

    #[test]
    fn gap_mode_and_window_threads_parse_and_validate() {
        let m = Manifest::parse(
            r#"{"entries":["fig01"],"sampling":true,"gap_mode":"functional",
                "window_threads":3}"#,
        )
        .expect("parse");
        assert_eq!(m.gap_mode, GapMode::Functional);
        assert_eq!(m.window_threads, Some(3));
        let ff =
            Manifest::parse(r#"{"entries":["fig01"],"sampling":true,"gap_mode":"fast-forward"}"#)
                .expect("parse");
        assert_eq!(ff.gap_mode, GapMode::FastForward);
        assert!(
            Manifest::parse(r#"{"entries":["fig01"],"sampling":true,"gap_mode":"warp"}"#).is_err(),
            "unknown gap mode rejected"
        );
        assert!(
            Manifest::parse(r#"{"entries":["fig01"],"gap_mode":"functional"}"#).is_err(),
            "gap_mode without sampling rejected"
        );
        assert!(
            Manifest::parse(r#"{"entries":["fig01"],"window_threads":0}"#).is_err(),
            "zero window_threads rejected"
        );
    }

    #[test]
    fn defaults_apply_when_only_entries_is_given() {
        let m = Manifest::parse(r#"{"entries":["smoke_single"]}"#).expect("parse");
        assert_eq!(m.workers, 1);
        assert_eq!(m.seeds, None);
        assert_eq!(m.scale, None);
        assert_eq!(m.out_dir, PathBuf::from("stores"));
        assert_eq!(m.retries, 1);
        assert!(!m.sampling);
    }

    #[test]
    fn malformed_manifests_fail_loudly() {
        assert!(Manifest::parse("not json").is_err());
        assert!(Manifest::parse("[]").is_err(), "not an object");
        assert!(Manifest::parse("{}").is_err(), "entries missing");
        assert!(Manifest::parse(r#"{"entries":[]}"#).is_err(), "empty");
        assert!(Manifest::parse(r#"{"entries":"fig01"}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":[1]}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"workers":0}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"seeds":0}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"scale":0}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"scale":-1}"#).is_err());
        assert!(
            Manifest::parse(r#"{"entries":["fig01"],"sampling":"yes"}"#).is_err(),
            "non-boolean sampling is rejected"
        );
        let unknown = Manifest::parse(r#"{"entries":["fig01"],"worker":2}"#);
        assert!(
            unknown
                .as_ref()
                .is_err_and(|e| e.to_string().contains("worker")),
            "typo'd keys are rejected, got {unknown:?}"
        );
        // Out-of-range values must error, not silently truncate (a u64
        // that wraps to 0 would defeat the >= 1 guards above).
        assert!(Manifest::parse(r#"{"entries":["fig01"],"seeds":4294967296}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"seeds":4294967297}"#).is_err());
        assert!(Manifest::parse(r#"{"entries":["fig01"],"retries":4294967296}"#).is_err());
        // Duplicate keys are ambiguous: fail loudly instead of silently
        // taking the first occurrence.
        let dup = Manifest::parse(r#"{"entries":["fig01"],"workers":1,"workers":8}"#);
        assert!(
            dup.as_ref()
                .is_err_and(|e| e.to_string().contains("duplicate")),
            "duplicate keys are rejected, got {dup:?}"
        );
    }

    #[test]
    fn specs_resolve_against_the_catalog_with_overrides() {
        let m = Manifest::parse(r#"{"entries":["fig01","smoke_attack"],"seeds":7}"#).expect("ok");
        let specs = m.specs().expect("resolve");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].0.name, "fig01");
        assert_eq!(specs[0].1.seeds, 7, "seed override applied");
        assert_eq!(specs[1].1.seeds, 7);
        let bad = Manifest::parse(r#"{"entries":["fig99"]}"#).expect("parses");
        assert!(bad.specs().is_err(), "unknown entry rejected at resolve");
    }

    #[test]
    fn sampling_attaches_default_plans_to_sim_entries_only() {
        let m = Manifest::parse(r#"{"entries":["fig01","fig10","smoke_attack"],"sampling":true}"#)
            .expect("parse");
        let specs = m.specs().expect("resolve");
        assert_eq!(
            specs[0].1.sampling,
            Some(sbp_sim::SamplingPlan::single_default()),
            "single-core entries get the single-core plan"
        );
        assert_eq!(
            specs[1].1.sampling,
            Some(sbp_sim::SamplingPlan::smt_default()),
            "SMT entries get the SMT plan"
        );
        assert!(specs[2].1.is_attack(), "attack entries pass through");
        let exact = Manifest::parse(r#"{"entries":["fig01"]}"#).expect("parse");
        assert_eq!(exact.specs().expect("resolve")[0].1.sampling, None);
    }

    #[test]
    fn sampling_never_clobbers_a_baked_in_plan() {
        // fig08_replay carries its own phase-clustered plan; the
        // campaign-wide sampling knob must not replace it with the
        // (phase-free) mode default.
        let m = Manifest::parse(r#"{"entries":["fig08_replay"],"sampling":true}"#).expect("parse");
        let specs = m.specs().expect("resolve");
        let plan = specs[0].1.sampling.expect("plan survives");
        assert!(plan.phase_windows > 0, "baked-in phase plan kept");
    }

    #[test]
    fn functional_gap_mode_attaches_hybrid_plans() {
        let m = Manifest::parse(
            r#"{"entries":["fig01","fig10"],"sampling":true,"gap_mode":"functional"}"#,
        )
        .expect("parse");
        let specs = m.specs().expect("resolve");
        assert_eq!(
            specs[0].1.sampling,
            Some(sbp_sim::SamplingPlan::single_hybrid()),
            "single-core entries get the hybrid single-core plan"
        );
        assert_eq!(
            specs[1].1.sampling,
            Some(sbp_sim::SamplingPlan::smt_hybrid()),
            "SMT entries get the hybrid SMT plan"
        );
    }
}
