//! The named spec catalog: one registry entry per paper artifact.
//!
//! Every figure and table grid that used to be hand-built inside a bench
//! harness lives here as a [`CatalogEntry`] — a named constructor plus
//! metadata (the paper artifact it reproduces, the axes the grid spans,
//! the default store file) — so benches, examples and the campaign
//! orchestrator all build the *same* grid from one source of truth.
//!
//! ```
//! use sbp_campaign::Catalog;
//!
//! // Enumerate every registered experiment:
//! for entry in Catalog::entries() {
//!     println!("{:<18} {:<28} -> {}", entry.name, entry.artifact, entry.store);
//! }
//! // Look one up and materialize its sweep spec:
//! let fig01 = Catalog::get("fig01").expect("registered");
//! assert_eq!(fig01.artifact, "Figure 1");
//! assert!(fig01.spec().validate().is_ok());
//! assert!(Catalog::get("fig99").is_none());
//! ```

use sbp_sweep::verdict::Expectation;
use sbp_sweep::SweepSpec;

/// One named experiment grid with its paper-artifact metadata.
#[derive(Clone, Copy)]
pub struct CatalogEntry {
    /// Registry name (`Catalog::get` key and campaign-manifest entry id).
    pub name: &'static str,
    /// The paper artifact this grid reproduces ("Figure 7", "Table 1 —
    /// BTB half", ...), or the purpose of a non-paper grid.
    pub artifact: &'static str,
    /// Human summary of the axes the grid expands into.
    pub axes: &'static str,
    /// Default store file name (relative to a campaign's `out_dir`).
    pub store: &'static str,
    /// Spec constructor. Constructors may consult `SBP_SCALE` (work
    /// budgets and the §5.5 trial counts scale with it), so the spec is
    /// built per call rather than cached.
    build: fn() -> SweepSpec,
    /// Paper-expectation constructor (see [`crate::expect`]); the
    /// default constructor returns no expectations.
    expect: fn() -> Vec<Expectation>,
}

impl CatalogEntry {
    /// A new entry with no expectations attached; registration composes
    /// this with [`CatalogEntry::with_expectations`].
    const fn new(
        name: &'static str,
        artifact: &'static str,
        axes: &'static str,
        store: &'static str,
        build: fn() -> SweepSpec,
    ) -> Self {
        CatalogEntry {
            name,
            artifact,
            axes,
            store,
            build,
            expect: Vec::new,
        }
    }

    /// Attaches the entry's paper-expectation constructor, turning the
    /// registry row into a machine-checkable encoding of its artifact.
    const fn with_expectations(mut self, expect: fn() -> Vec<Expectation>) -> Self {
        self.expect = expect;
        self
    }

    /// Materializes the entry's sweep spec.
    pub fn spec(&self) -> SweepSpec {
        (self.build)()
    }

    /// The paper expectations this entry's reports are checked against
    /// (`campaign --check`, `run_single_figure`, the conformance suite).
    pub fn expectations(&self) -> Vec<Expectation> {
        (self.expect)()
    }
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("artifact", &self.artifact)
            .field("axes", &self.axes)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

/// The registry of every named experiment grid.
pub struct Catalog;

impl Catalog {
    /// Every registered entry, paper order (figures, tables, §5.5, then
    /// the CI smoke grids).
    pub fn entries() -> &'static [CatalogEntry] {
        ENTRIES
    }

    /// Looks up an entry by name.
    pub fn get(name: &str) -> Option<&'static CatalogEntry> {
        ENTRIES.iter().find(|e| e.name == name)
    }

    /// All registered names, registry order.
    pub fn names() -> Vec<&'static str> {
        ENTRIES.iter().map(|e| e.name).collect()
    }
}

static ENTRIES: &[CatalogEntry] = &[
    CatalogEntry::new(
        "fig01",
        "Figure 1",
        "CF x {4M,8M,12M} x 12 single-core cases x 3 seeds",
        "fig01.jsonl",
        specs::fig01,
    )
    .with_expectations(crate::expect::entries::fig01),
    CatalogEntry::new(
        "fig02_smt2",
        "Figure 2 — SMT-2 half",
        "CF x 8M x 12 SMT-2 pairs x 3 seeds",
        "fig02_smt2.jsonl",
        specs::fig02_smt2,
    )
    .with_expectations(crate::expect::entries::fig02_smt2),
    CatalogEntry::new(
        "fig02_smt4",
        "Figure 2 — SMT-4 half",
        "CF x 8M x 6 SMT-4 quads x 3 seeds",
        "fig02_smt4.jsonl",
        specs::fig02_smt4,
    )
    .with_expectations(crate::expect::entries::fig02_smt4),
    CatalogEntry::new(
        "fig03",
        "Figure 3",
        "{CF,PF} x 8M x 12 SMT-2 pairs x 3 seeds",
        "fig03.jsonl",
        specs::fig03,
    )
    .with_expectations(crate::expect::entries::fig03),
    CatalogEntry::new(
        "fig07",
        "Figure 7",
        "{XOR-BTB,Noisy-XOR-BTB} x {4M,8M,12M} x 12 single-core cases x 3 seeds",
        "fig07.jsonl",
        specs::fig07,
    )
    .with_expectations(crate::expect::entries::fig07),
    CatalogEntry::new(
        "fig08",
        "Figure 8",
        "{Enh-XOR-PHT,Noisy-XOR-PHT} x {4M,8M,12M} x 12 single-core cases x 3 seeds",
        "fig08.jsonl",
        specs::fig08,
    )
    .with_expectations(crate::expect::entries::fig08),
    CatalogEntry::new(
        "fig08_replay",
        "Figure 8 — trace-replay twin",
        "{Enh-XOR-PHT,Noisy-XOR-PHT} x 8M x replayed gcc+calculix x 3 seeds, phase-clustered",
        "fig08_replay.jsonl",
        specs::fig08_replay,
    )
    .with_expectations(crate::expect::entries::fig08_replay),
    CatalogEntry::new(
        "fig09",
        "Figure 9",
        "{XOR-BP,Noisy-XOR-BP} x {4M,8M,12M} x 12 single-core cases x 3 seeds",
        "fig09.jsonl",
        specs::fig09,
    )
    .with_expectations(crate::expect::entries::fig09),
    CatalogEntry::new(
        "fig10",
        "Figure 10",
        "{CF,PF,Noisy-XOR-BP} x 4 predictors x 8M x 12 SMT-2 pairs x 3 seeds",
        "fig10.jsonl",
        specs::fig10,
    )
    .with_expectations(crate::expect::entries::fig10),
    CatalogEntry::new(
        "tab01_btb",
        "Table 1 — BTB half",
        "{shadowing,SpectreV2,SBPA} x 4 BTB mechanisms x {ST,SMT} x 1500 trials",
        "tab01_btb.jsonl",
        specs::tab01_btb,
    )
    .with_expectations(crate::expect::entries::tab01_btb),
    CatalogEntry::new(
        "tab01_pht",
        "Table 1 — PHT half",
        "{BranchScope,ref-variant} x 5 PHT mechanisms x {ST,SMT} x 1500 trials",
        "tab01_pht.jsonl",
        specs::tab01_pht,
    )
    .with_expectations(crate::expect::entries::tab01_pht),
    CatalogEntry::new(
        "tab01_pht_replay",
        "Table 1 — PHT half (replay campaign)",
        "{BranchScope,ref-variant} x 5 PHT mechanisms x {ST,SMT} x 1500 trials, replay rider",
        "tab01_pht_replay.jsonl",
        specs::tab01_pht_replay,
    )
    .with_expectations(crate::expect::entries::tab01_pht_replay),
    CatalogEntry::new(
        "tab01_predictors",
        "Table 1 — predictor-frontend extension",
        "{shadowing,SpectreV2,SBPA,BranchScope} x {Gshare,LTAGE,TAGE-SC-L} x 4 BTB mechanisms x {ST,SMT}",
        "tab01_predictors.jsonl",
        specs::tab01_predictors,
    )
    .with_expectations(crate::expect::entries::tab01_predictors),
    CatalogEntry::new(
        "tab04",
        "Table 4",
        "Noisy-XOR-BP x 12M x 12 single-core cases",
        "tab04.jsonl",
        specs::tab04,
    )
    .with_expectations(crate::expect::entries::tab04),
    CatalogEntry::new(
        "sec55_btb",
        "Section 5.5(3) — BTB training accuracy",
        "SpectreV2 x {Baseline,XOR-BP} x ST x scale-derived trials",
        "sec55_btb.jsonl",
        specs::sec55_btb,
    )
    .with_expectations(crate::expect::entries::sec55_btb),
    CatalogEntry::new(
        "sec55_pht",
        "Section 5.5(3) — PHT training accuracy",
        "BranchScope x {Baseline,Enh-XOR-PHT} x ST x 100-trial rounds (seed axis)",
        "sec55_pht.jsonl",
        specs::sec55_pht,
    )
    .with_expectations(crate::expect::entries::sec55_pht),
    CatalogEntry::new(
        "smoke_single",
        "CI smoke — single-core slice",
        "{CF,Noisy-XOR-BP} x 8M x 1 case",
        "smoke_single.jsonl",
        specs::smoke_single,
    )
    .with_expectations(crate::expect::entries::smoke_single),
    CatalogEntry::new(
        "smoke_attack",
        "CI smoke — attack slice",
        "{SpectreV2,BranchScope} x {Baseline,Noisy-XOR-BP} x ST x 200 trials",
        "smoke_attack.jsonl",
        specs::smoke_attack,
    )
    .with_expectations(crate::expect::entries::smoke_attack),
];

/// The spec constructors, one per registry entry. Master seeds are the
/// ones the original bench harnesses used, so catalog-built grids resume
/// the stores those harnesses wrote.
mod specs {
    use sbp_attack::AttackKind;
    use sbp_core::Mechanism;
    use sbp_predictors::PredictorKind;
    use sbp_sim::SwitchInterval;
    use sbp_sweep::{CaseSpec, SweepMode, SweepSpec};

    /// Seed replicas for the figure grids: enough for a meaningful
    /// ±stddev column in every cell.
    pub(super) const FIG_SEEDS: u32 = 3;

    pub(super) fn fig01() -> SweepSpec {
        SweepSpec::single("fig01: CF single-core")
            .with_mechanisms(vec![Mechanism::CompleteFlush])
            .with_master_seed(0xf160_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig02_smt2() -> SweepSpec {
        SweepSpec::smt("fig02: CF SMT-2")
            .with_mechanisms(vec![Mechanism::CompleteFlush])
            .with_master_seed(0xf162_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig02_smt4() -> SweepSpec {
        let quads: Vec<CaseSpec> = sbp_trace::cases_smt4()
            .iter()
            .enumerate()
            .map(|(i, q)| CaseSpec::new(&format!("quad{}", i + 1), q))
            .collect();
        SweepSpec::smt("fig02: CF SMT-4")
            .with_cases(quads)
            .with_mechanisms(vec![Mechanism::CompleteFlush])
            .with_master_seed(0xf164_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig03() -> SweepSpec {
        SweepSpec::smt("fig03: CF vs PF")
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::PreciseFlush])
            .with_master_seed(0xf163_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig07() -> SweepSpec {
        SweepSpec::single("fig07: XOR-BTB single-core")
            .with_mechanisms(vec![Mechanism::xor_btb(), Mechanism::noisy_xor_btb()])
            .with_master_seed(0xf167_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig08() -> SweepSpec {
        SweepSpec::single("fig08: XOR-PHT single-core")
            .with_mechanisms(vec![
                Mechanism::enhanced_xor_pht(),
                Mechanism::noisy_xor_pht(),
            ])
            .with_master_seed(0xf168_0000)
            .with_seeds(FIG_SEEDS)
    }

    /// Trace directory for the replay twin: `SBP_TRACE_DIR`, or the
    /// default capture location the CI smoke job uses. Read per spec
    /// build, like `SBP_SCALE` in the work budgets.
    fn trace_dir() -> String {
        std::env::var("SBP_TRACE_DIR").unwrap_or_else(|_| "traces/fig08".to_string())
    }

    /// Figure 8 over recorded traces: the same XOR-PHT mechanisms, but
    /// every workload stream replays from an on-disk `SBPT` file and the
    /// steady windows are phase-clustered representatives
    /// (`sbp_trace::cluster_trace`) instead of the uniform schedule.
    /// Capture the traces first: `campaign trace fig08_replay`.
    pub(super) fn fig08_replay() -> SweepSpec {
        let dir = trace_dir();
        let plan = sbp_sim::SamplingPlan {
            phase_windows: 4,
            ..sbp_sim::SamplingPlan::single_hybrid()
        };
        SweepSpec::single("fig08_replay: XOR-PHT over replayed traces")
            .with_cases(vec![CaseSpec::pair(
                "gcc+calculix",
                &format!("replay:gcc@{dir}"),
                &format!("replay:calculix@{dir}"),
            )])
            .with_intervals(vec![SwitchInterval::M8])
            .with_mechanisms(vec![
                Mechanism::enhanced_xor_pht(),
                Mechanism::noisy_xor_pht(),
            ])
            .with_sampling(Some(plan))
            .with_master_seed(0xf168_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig09() -> SweepSpec {
        SweepSpec::single("fig09: XOR-BP single-core")
            .with_mechanisms(vec![Mechanism::xor_bp(), Mechanism::noisy_xor_bp()])
            .with_master_seed(0xf169_0000)
            .with_seeds(FIG_SEEDS)
    }

    pub(super) fn fig10() -> SweepSpec {
        SweepSpec::smt("fig10: mechanisms across predictors")
            .with_predictors(PredictorKind::ALL.to_vec())
            .with_mechanisms(vec![
                Mechanism::CompleteFlush,
                Mechanism::PreciseFlush,
                Mechanism::noisy_xor_bp(),
            ])
            .with_master_seed(0xf16a_0000)
            .with_seeds(FIG_SEEDS)
    }

    /// Trials per Table 1 campaign cell.
    const TAB01_TRIALS: u64 = 1500;

    pub(super) fn tab01_btb() -> SweepSpec {
        SweepSpec::attack("tab01: BTB security matrix")
            .with_attacks(vec![
                AttackKind::BranchShadowing,
                AttackKind::SpectreV2,
                AttackKind::Sbpa,
            ])
            .with_mechanisms(vec![
                Mechanism::CompleteFlush,
                Mechanism::PreciseFlush,
                Mechanism::xor_btb(),
                Mechanism::noisy_xor_btb(),
            ])
            .with_trials(TAB01_TRIALS)
    }

    /// Like the old hand-rolled runner's fixed per-cell seeds, the default
    /// master seed draws one representative key configuration per cell;
    /// the Enhanced-XOR-PHT SMT-reuse cell in particular is key-bimodal
    /// (when the two threads' per-entry key slices happen to agree on the
    /// probed counter, the encoding cancels). Sweep `with_seeds(n)` to see
    /// both modes.
    pub(super) fn tab01_pht() -> SweepSpec {
        SweepSpec::attack("tab01: PHT security matrix")
            .with_attacks(vec![
                AttackKind::BranchScope,
                AttackKind::ReferenceBranchScope,
            ])
            .with_mechanisms(vec![
                Mechanism::CompleteFlush,
                Mechanism::PreciseFlush,
                Mechanism::xor_pht(),
                Mechanism::enhanced_xor_pht(),
                Mechanism::noisy_xor_pht(),
            ])
            .with_trials(TAB01_TRIALS)
    }

    /// `tab01_pht`'s rider on the replay campaign: attack jobs never
    /// consume workload traces, so this slice exercises the
    /// store/shard/merge/check spine alongside `fig08_replay` without a
    /// capture of its own. Same grid and verdict matrix, distinct store.
    pub(super) fn tab01_pht_replay() -> SweepSpec {
        SweepSpec::attack("tab01_replay: PHT security matrix")
            .with_attacks(vec![
                AttackKind::BranchScope,
                AttackKind::ReferenceBranchScope,
            ])
            .with_mechanisms(vec![
                Mechanism::CompleteFlush,
                Mechanism::PreciseFlush,
                Mechanism::xor_pht(),
                Mechanism::enhanced_xor_pht(),
                Mechanism::noisy_xor_pht(),
            ])
            .with_trials(TAB01_TRIALS)
    }

    /// The ROADMAP's predictor-axis study: does a TAGE-family front-end
    /// change the BTB campaign outcomes? BranchScope rides along as a
    /// control — it attacks the deterministic bimodal harness and must be
    /// untouched by the front-end choice (pinned by a test).
    pub(super) fn tab01_predictors() -> SweepSpec {
        SweepSpec::attack("tab01: security matrix across predictors")
            .with_attacks(vec![
                AttackKind::BranchShadowing,
                AttackKind::SpectreV2,
                AttackKind::Sbpa,
                AttackKind::BranchScope,
            ])
            .with_predictors(vec![
                PredictorKind::Gshare,
                PredictorKind::Ltage,
                PredictorKind::TageScL,
            ])
            .with_mechanisms(vec![
                Mechanism::CompleteFlush,
                Mechanism::PreciseFlush,
                Mechanism::xor_btb(),
                Mechanism::noisy_xor_btb(),
            ])
            .with_trials(TAB01_TRIALS)
    }

    pub(super) fn tab04() -> SweepSpec {
        SweepSpec::single("tab04: rekey triggers")
            .with_mechanisms(vec![Mechanism::noisy_xor_bp()])
            .with_intervals(vec![SwitchInterval::M12])
            .with_master_seed(0x7ab4_0000)
    }

    /// §5.5 training iterations: 10 000 at `SBP_SCALE=1`, never below the
    /// 1000 needed to resolve sub-percent accuracies.
    fn sec55_iterations() -> u64 {
        ((10_000.0 * sbp_sim::scale()) as u64).max(1000)
    }

    pub(super) fn sec55_btb() -> SweepSpec {
        SweepSpec::attack("sec55: BTB training accuracy")
            .with_attacks(vec![AttackKind::SpectreV2])
            .with_attack_modes(vec![SweepMode::SingleCore])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::xor_bp()])
            .with_trials(sec55_iterations())
            .with_master_seed(13)
    }

    /// The PHT criterion maps rounds onto the seed axis: each replica is
    /// one 100-trial round; success = the victim follows the trained
    /// direction more than 90 times (counted by the harness over the
    /// replica records).
    pub(super) fn sec55_pht() -> SweepSpec {
        let rounds = (sec55_iterations() / 100).max(1) as u32;
        SweepSpec::attack("sec55: PHT training accuracy")
            .with_attacks(vec![AttackKind::BranchScope])
            .with_attack_modes(vec![SweepMode::SingleCore])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::enhanced_xor_pht()])
            .with_trials(100)
            .with_seeds(rounds)
    }

    pub(super) fn smoke_single() -> SweepSpec {
        SweepSpec::single("smoke: single-core slice")
            .with_cases(vec![CaseSpec::pair("gcc+calculix", "gcc", "calculix")])
            .with_intervals(vec![SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
            .with_master_seed(0x5310_0001)
    }

    pub(super) fn smoke_attack() -> SweepSpec {
        SweepSpec::attack("smoke: attack slice")
            .with_attacks(vec![AttackKind::SpectreV2, AttackKind::BranchScope])
            .with_attack_modes(vec![SweepMode::SingleCore])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
            .with_trials(200)
            .with_master_seed(0x5310_0002)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_store_paths_are_unique() {
        let names: std::collections::BTreeSet<&str> = Catalog::names().into_iter().collect();
        assert_eq!(names.len(), Catalog::entries().len());
        let stores: std::collections::BTreeSet<&str> =
            Catalog::entries().iter().map(|e| e.store).collect();
        assert_eq!(stores.len(), Catalog::entries().len());
        for entry in Catalog::entries() {
            assert!(entry.store.ends_with(".jsonl"), "{}", entry.name);
            assert!(!entry.artifact.is_empty() && !entry.axes.is_empty());
        }
    }

    #[test]
    fn every_entry_builds_a_valid_spec() {
        for entry in Catalog::entries() {
            let spec = entry.spec();
            assert!(spec.validate().is_ok(), "{} spec invalid", entry.name);
            // Constructors are pure per process: two builds agree.
            assert_eq!(spec, entry.spec(), "{} not deterministic", entry.name);
        }
    }

    #[test]
    fn get_finds_registered_entries_only() {
        assert_eq!(Catalog::get("fig07").expect("registered").name, "fig07");
        assert!(Catalog::get("fig99").is_none());
        assert!(Catalog::get("").is_none());
    }

    #[test]
    fn every_fig_entry_carries_at_least_three_seed_replicas() {
        let figs: Vec<&CatalogEntry> = Catalog::entries()
            .iter()
            .filter(|e| e.name.starts_with("fig"))
            .collect();
        assert_eq!(
            figs.len(),
            9,
            "all eight figure grids plus the replay twin are registered"
        );
        for entry in figs {
            assert!(
                entry.spec().seeds >= 3,
                "{}: figure entries need >= 3 seeds for real ±stddev columns",
                entry.name
            );
        }
    }

    #[test]
    fn replay_twin_bakes_a_phase_clustered_replay_grid() {
        let spec = Catalog::get("fig08_replay").expect("registered").spec();
        let plan = spec.sampling.expect("baked-in sampling plan");
        assert!(plan.phase_windows > 0, "steady windows are phase-clustered");
        for case in &spec.cases {
            for w in &case.workloads {
                assert!(
                    sbp_trace::parse_replay(w).is_some(),
                    "{w}: replay twin workloads must be replay:<workload>@<dir>"
                );
            }
        }
        assert!(spec.validate().is_ok(), "valid without the traces on disk");
    }

    #[test]
    fn tab01_predictor_extension_spans_the_tage_family() {
        use sbp_predictors::PredictorKind;
        let spec = Catalog::get("tab01_predictors").expect("registered").spec();
        assert!(spec.predictors.contains(&PredictorKind::Ltage));
        assert!(spec.predictors.contains(&PredictorKind::TageScL));
        assert!(spec.is_attack());
    }
}
