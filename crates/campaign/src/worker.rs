//! The worker half of the orchestrator: one subprocess owning one
//! `--shard k/n` slice of one catalog entry's job list.
//!
//! A worker is just the store-backed sweep path
//! ([`SweepSpec::run_with`](sbp_sweep::SweepSpec)) pointed at a dedicated
//! shard store; everything that makes the campaign crash-tolerant lives
//! in the store layer (append-per-job, fingerprint resume). The worker
//! prints a single machine-readable summary line to stdout — the
//! coordinator relays it to stderr and the tests parse it — and leaves
//! stdout otherwise untouched.
//!
//! For tests of the crash and hang paths, the [`DIE_AFTER_ENV`] /
//! [`STALL_AFTER_ENV`] variables make the worker execute its slice
//! sequentially and abort — or park forever — after that many store
//! appends: deterministic stand-ins for a worker dying or wedging
//! mid-shard (the latter is what the coordinator's `--stall-timeout`
//! heartbeat detects and kills). The coordinator strips both variables
//! when it retries a failed shard, so an injected fault exercises
//! exactly one death-and-resume cycle per shard.

use std::path::PathBuf;

use sbp_sim::GapMode;
use sbp_sweep::{
    plan, plan_fingerprints, run_job_indexed, JobArena, RunOptions, Shard, SweepStore,
};
use sbp_types::SbpError;

use crate::catalog::Catalog;

/// Fault-injection knob: when set to `N`, a worker dies (exit code 42)
/// after appending `N` results to its shard store.
pub const DIE_AFTER_ENV: &str = "SBP_CAMPAIGN_DIE_AFTER";

/// Fault-injection knob: when set to `N`, a worker hangs forever (without
/// exiting or appending) after `N` store appends — a deterministic
/// stand-in for a wedged worker, detected and killed by the
/// coordinator's `--stall-timeout` heartbeat.
pub const STALL_AFTER_ENV: &str = "SBP_CAMPAIGN_STALL_AFTER";

/// Exit code of a fault-injected worker death.
pub const DIE_EXIT_CODE: i32 = 42;

/// Parsed `--worker` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// Catalog entry to run.
    pub entry: String,
    /// This worker's slice of the job list.
    pub shard: Shard,
    /// Shard store path (dedicated to this worker).
    pub store: PathBuf,
    /// Seed-replica override from the manifest, if any.
    pub seeds: Option<u32>,
    /// Run the entry with its mode's default sampling plan (the
    /// manifest's `"sampling": true`, forwarded as `--sampled`).
    pub sampled: bool,
    /// Gap strategy for sampled runs (the manifest's `"gap_mode"`,
    /// forwarded as `--gap-mode`); ignored without `sampled`.
    pub gap_mode: GapMode,
    /// Intra-worker window-parallelism width (the manifest's
    /// `"window_threads"`, forwarded as `--window-threads`); `None`
    /// leaves the `SBP_WINDOW_THREADS` environment default.
    pub window_threads: Option<usize>,
    /// Print this shard's wall-time phase breakdown (warm / gaps /
    /// steady / event / exact measure) to stderr after the run
    /// (forwarded from the campaign's `--profile`).
    pub profile: bool,
    /// Sidecar telemetry stream this worker appends its structured
    /// events to (forwarded by the coordinator as `--telemetry PATH`);
    /// `None` leaves telemetry off. Observation-only: the shard store
    /// is byte-identical either way.
    pub telemetry: Option<PathBuf>,
}

/// Runs one worker: resolves the catalog entry, executes the shard
/// against its store, and prints the summary line.
///
/// # Errors
///
/// Returns campaign errors for unknown entries and the underlying sweep
/// errors otherwise.
pub fn run_worker(args: &WorkerArgs) -> Result<(), SbpError> {
    let entry = Catalog::get(&args.entry)
        .ok_or_else(|| SbpError::campaign(format!("unknown catalog entry {:?}", args.entry)))?;
    let mut spec = entry.spec();
    if let Some(seeds) = args.seeds {
        spec = spec.with_seeds(seeds);
    }
    if args.sampled {
        spec = spec.with_default_sampling_mode(args.gap_mode);
    }
    if let Some(n) = args.window_threads {
        sbp_sweep::set_window_threads(n);
    }
    if args.profile {
        sbp_sim::profile::set_enabled(true);
        sbp_sim::profile::reset();
    }
    if let Some(path) = &args.telemetry {
        // Worker lanes are 1-based; lane 0 is the coordinator's.
        sbp_telemetry::enable(&args.entry, args.shard.index as u32 + 1, Some(path));
    }
    if let Some(after) = fault_knob(DIE_AFTER_ENV)? {
        return run_fault_injected(&spec, args, after, FaultMode::Die);
    }
    if let Some(after) = fault_knob(STALL_AFTER_ENV)? {
        return run_fault_injected(&spec, args, after, FaultMode::Stall);
    }
    let outcome = spec.run_with(&RunOptions {
        store: Some(args.store.clone()),
        shard: Some(args.shard),
    })?;
    sbp_telemetry::disable();
    if args.profile {
        print_profile(args);
    }
    print_summary(args, outcome.executed, outcome.skipped, outcome.pending);
    Ok(())
}

/// Prints this shard's wall-time phase breakdown to stderr (stdout stays
/// byte-comparable between profiled and unprofiled runs).
fn print_profile(args: &WorkerArgs) {
    eprintln!(
        "worker[{}] shard {}/{} profile: {}",
        args.entry,
        args.shard.index + 1,
        args.shard.count,
        sbp_sim::profile::snapshot().to_line(),
    );
}

/// Parses one numeric fault-injection variable, `None` when unset.
fn fault_knob(var: &str) -> Result<Option<usize>, SbpError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| SbpError::campaign(format!("{var}={raw:?}: {e}"))),
    }
}

/// What a fault-injected worker does when its append budget runs out.
enum FaultMode {
    /// Abort the process (a crashed worker).
    Die,
    /// Park forever without exiting or appending (a wedged worker, for
    /// the coordinator's stall-timeout heartbeat).
    Stall,
}

/// The fault-test path: executes the shard's missing jobs one at a time
/// (deterministic append order) and dies or hangs after `after` appends.
/// A slice with fewer missing jobs than `after` completes and exits
/// normally.
fn run_fault_injected(
    spec: &sbp_sweep::SweepSpec,
    args: &WorkerArgs,
    after: usize,
    mode: FaultMode,
) -> Result<(), SbpError> {
    spec.validate()?;
    let plan = plan(spec);
    let fps = plan_fingerprints(spec, &plan);
    let mut store = SweepStore::open(&args.store)?;
    let skipped = fps.iter().filter(|fp| store.get(**fp).is_some()).count();
    let mut executed = 0usize;
    let mut arena = JobArena::new();
    for (i, &fp) in fps.iter().enumerate() {
        if !args.shard.owns(fp) || store.get(fp).is_some() {
            continue;
        }
        // The indexed runner flushes each job's telemetry before the
        // store append, so an injected death still leaves a sidecar
        // covering every persisted cell.
        let result = run_job_indexed(&mut arena, spec, &plan, i)?;
        store.append(fp, &result)?;
        executed += 1;
        if executed == after {
            match mode {
                FaultMode::Die => {
                    eprintln!(
                        "worker[{}] shard {}/{}: fault injection — dying after {after} append(s)",
                        args.entry,
                        args.shard.index + 1,
                        args.shard.count,
                    );
                    std::process::exit(DIE_EXIT_CODE);
                }
                FaultMode::Stall => {
                    eprintln!(
                        "worker[{}] shard {}/{}: fault injection — hanging after {after} append(s)",
                        args.entry,
                        args.shard.index + 1,
                        args.shard.count,
                    );
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
            }
        }
    }
    let pending = fps.iter().filter(|fp| store.get(**fp).is_none()).count();
    sbp_telemetry::disable();
    if args.profile {
        print_profile(args);
    }
    print_summary(args, executed, skipped, pending);
    Ok(())
}

/// The machine-readable per-shard summary (mirrors `SweepOutcome`'s
/// counts; `skipped`/`pending` are plan-wide like `run_with`'s).
fn print_summary(args: &WorkerArgs, executed: usize, skipped: usize, pending: usize) {
    println!(
        "shard {}/{} entry {} executed {executed} skipped {skipped} pending {pending}",
        args.shard.index + 1,
        args.shard.count,
        args.entry,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sbp_campaign_worker_{}_{name}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn worker_rejects_unknown_entries() {
        let args = WorkerArgs {
            entry: "no_such_entry".into(),
            shard: Shard { index: 0, count: 1 },
            store: tmp("unknown"),
            seeds: None,
            sampled: false,
            gap_mode: GapMode::FastForward,
            window_threads: None,
            profile: false,
            telemetry: None,
        };
        assert!(matches!(
            run_worker(&args),
            Err(SbpError::Campaign(msg)) if msg.contains("no_such_entry")
        ));
    }

    #[test]
    fn worker_executes_its_slice_and_is_resumable() {
        let store = tmp("slice");
        let _ = std::fs::remove_file(&store);
        let args = WorkerArgs {
            entry: "smoke_attack".into(),
            shard: Shard { index: 0, count: 2 },
            store: store.clone(),
            seeds: None,
            sampled: false,
            gap_mode: GapMode::FastForward,
            window_threads: None,
            profile: false,
            telemetry: None,
        };
        run_worker(&args).expect("first pass");
        let after_first = SweepStore::open(&store).expect("open").len();
        run_worker(&args).expect("second pass");
        assert_eq!(
            SweepStore::open(&store).expect("open").len(),
            after_first,
            "second pass resumes, adds nothing"
        );
        std::fs::remove_file(&store).expect("cleanup");
    }
}
