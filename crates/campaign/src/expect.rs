//! The paper-expectation oracle: per-entry expected values for every
//! catalog grid, so a campaign ends with an automatic "within tolerance
//! of the paper" verdict table instead of eyeballed output.
//!
//! The generic machinery — [`Expectation`], [`VerdictTable`],
//! [`check_report`] and the scale-aware tolerance widening rule — lives
//! in [`sbp_sweep::verdict`] (re-exported here); this module holds the
//! *numbers*: one expectation list per catalog entry, encoding the
//! paper's Figures 1–3/7–10 and Tables 1/4 as machine-checkable claims.
//!
//! Three claim families are used:
//!
//! * **security verdicts** (Table 1, §5.5) — attack campaigns carry
//!   explicit trial counts, so their Defend / Mitigate / No Protection
//!   cells are scale-independent and checked exactly;
//! * **direction constraints** — qualitative claims (flush cost grows
//!   with flush frequency, precise flush never costs more than a whole
//!   table flush, index encoding carries a standing cost) that must hold
//!   at any `SBP_SCALE`; ties pass, so a smoke run where every overhead
//!   degenerates to zero still conforms;
//! * **mean values** — reference means calibrated from full-scale
//!   (`SBP_SCALE=1`) reproduction runs, with two-sided tolerances that
//!   the oracle widens by `sqrt(1/scale)` at reduced scale.

pub use sbp_sweep::verdict::{
    check_report, check_report_at, widen_factor, CheckRow, CheckStatus, Expectation, SeriesKey,
    VerdictTable,
};

use crate::catalog::CatalogEntry;

/// Fault knob for the conformance path: when set (to any value), every
/// expectation is deliberately perturbed so the verdict table must fail —
/// the integration tests (and a paranoid operator) use it to prove the
/// oracle can actually reject.
pub const PERTURB_ENV: &str = "SBP_CHECK_PERTURB";

/// Applies the [`PERTURB_ENV`] knob: returns the expectations unchanged
/// when the variable is unset, and a deliberately-failing variant of each
/// otherwise.
pub fn maybe_perturbed(expectations: Vec<Expectation>) -> Vec<Expectation> {
    if std::env::var_os(PERTURB_ENV).is_none() {
        return expectations;
    }
    expectations.into_iter().map(perturb).collect()
}

/// Rewrites one expectation into a claim the true report cannot satisfy.
fn perturb(e: Expectation) -> Expectation {
    match e {
        Expectation::MeanWithin {
            key,
            expected,
            abs_tol,
            rel_tol,
        } => Expectation::MeanWithin {
            key,
            // Far outside any simulated overhead or success rate, and
            // beyond any plausible widening of the original tolerance.
            expected: expected + 1000.0,
            abs_tol,
            rel_tol,
        },
        Expectation::MeanAtMost { key, .. } => Expectation::MeanAtMost {
            key,
            limit: -1000.0,
        },
        Expectation::MeanAtLeast { key, .. } => Expectation::MeanAtLeast { key, limit: 1000.0 },
        Expectation::OrderAtLeast { hi, lo, .. } => Expectation::OrderAtLeast {
            // Swapping alone could tie; demanding an impossible gap the
            // other way cannot pass.
            hi: lo,
            lo: hi,
            slack: -1000.0,
        },
        Expectation::Verdict {
            attack,
            series,
            predictor,
            mode,
            ..
        } => Expectation::Verdict {
            attack,
            series,
            predictor,
            mode,
            allowed: vec!["Perturbed".to_string()],
        },
    }
}

/// Convenience: evaluates an entry's expectations against a report under
/// the ambient scale, applying the perturbation knob.
pub fn check_entry(
    entry: &CatalogEntry,
    report: &sbp_types::SweepReport,
) -> sbp_sweep::verdict::VerdictTable {
    check_report(report, &maybe_perturbed(entry.expectations()), entry.name)
}

/// Bounds below which an overhead counts as "not a slowdown at all":
/// sampling noise on a fast sweep can dip a hair below zero.
const NOISE_FLOOR: f64 = -0.02;

pub(crate) mod entries {
    //! One expectation list per catalog entry. Reference means were
    //! calibrated from **exact** `SBP_SCALE=1` runs of this
    //! reproduction (the sim is deterministic per seed, so these are
    //! stable, and `widen_factor` is 1 at paper scale — the tolerances
    //! need no reduced-scale headroom); verdicts match the paper's
    //! Table 1. The hybrid sampled path (functional gaps + full-storm
    //! event windows, see `docs/PERFORMANCE.md` § Sampled simulation)
    //! reproduces even the storm-dominated cells to within a few
    //! percent of exact, so the tolerances are calibrated tight — they
    //! no longer carry slack for fast-forward truncation bias.

    use super::{Expectation as E, NOISE_FLOOR};

    /// Figure 1 — CF on the single-threaded core: flush cost grows with
    /// flush frequency and stays a sub-percent effect. The CF/4M cell is
    /// storm-dominated (post-flush retraining is nearly all of the
    /// cost); its mean is pinned tight because the hybrid sampled path
    /// reproduces the exact value to ~1% (the fast-forward sampler's
    /// truncation bias read this cell ~35% low and needed the old loose
    /// bound).
    pub(crate) fn fig01() -> Vec<E> {
        vec![
            E::order("Gshare", "CF", "4M", "CF", "8M"),
            E::order("Gshare", "CF", "8M", "CF", "12M"),
            E::mean_within("CF", "Gshare", "4M", 0.0083, 0.004),
            E::at_most("CF", "Gshare", "4M", 0.02),
            E::at_least("CF", "Gshare", "12M", NOISE_FLOOR),
        ]
    }

    /// Figure 2 (SMT-2 half) — a whole-table flush on an SMT core stays
    /// bounded but is never a speedup.
    pub(crate) fn fig02_smt2() -> Vec<E> {
        vec![
            E::at_most("CF", "Tournament", "8M", 0.20),
            E::at_least("CF", "Tournament", "8M", NOISE_FLOOR),
        ]
    }

    /// Figure 2 (SMT-4 half) — same bounds with four hardware threads.
    pub(crate) fn fig02_smt4() -> Vec<E> {
        vec![
            E::at_most("CF", "Tournament", "8M", 0.25),
            E::at_least("CF", "Tournament", "8M", NOISE_FLOOR),
        ]
    }

    /// Figure 3 — Precise Flush only drops the switching thread's
    /// entries, so it never costs more than Complete Flush on SMT.
    pub(crate) fn fig03() -> Vec<E> {
        vec![
            E::order("Tournament", "CF", "8M", "PF", "8M"),
            E::at_most("PF", "Tournament", "8M", 0.20),
            E::at_least("PF", "Tournament", "8M", -0.05),
        ]
    }

    /// Figure 7 — BTB-only XOR overlays are nearly free on the
    /// single-threaded core, and the noisy variant costs at least as
    /// much as the plain one.
    pub(crate) fn fig07() -> Vec<E> {
        vec![
            E::order("Gshare", "Noisy-XOR-BTB", "4M", "XOR-BTB", "4M"),
            E::at_most("XOR-BTB", "Gshare", "4M", 0.03),
            E::at_most("Noisy-XOR-BTB", "Gshare", "4M", 0.03),
            E::at_least("XOR-BTB", "Gshare", "12M", NOISE_FLOOR),
        ]
    }

    /// Figure 8 — PHT index encoding carries a standing few-percent
    /// cost, dominated by the encoding rather than the rekey interval.
    pub(crate) fn fig08() -> Vec<E> {
        vec![
            E::mean_within("Noisy-XOR-PHT", "Gshare", "8M", 0.0205, 0.008),
            E::at_most("Enhanced-XOR-PHT", "Gshare", "4M", 0.08),
            E::at_most("Noisy-XOR-PHT", "Gshare", "4M", 0.08),
            E::at_least("Enhanced-XOR-PHT", "Gshare", "12M", NOISE_FLOOR),
        ]
    }

    /// Figure 8, trace-replay twin — the standing XOR-PHT cost measured
    /// over recorded streams with phase-clustered steady windows. The
    /// weighted estimator lands near the uniform-schedule value, but the
    /// window placement differs, so the twin carries direction bounds
    /// rather than the calibrated mean.
    pub(crate) fn fig08_replay() -> Vec<E> {
        vec![
            E::at_most("Enhanced-XOR-PHT", "Gshare", "8M", 0.10),
            E::at_most("Noisy-XOR-PHT", "Gshare", "8M", 0.10),
            E::at_least("Noisy-XOR-PHT", "Gshare", "8M", -0.05),
        ]
    }

    /// Figure 9 — the headline claim: Noisy-XOR-BP averages a small
    /// single-digit overhead (the paper reports < 1.3% on its FPGA core;
    /// this reproduction lands under 5%).
    pub(crate) fn fig09() -> Vec<E> {
        vec![
            E::mean_within("Noisy-XOR-BP", "Gshare", "12M", 0.0195, 0.008),
            E::at_most("Noisy-XOR-BP", "Gshare", "8M", 0.06),
            E::at_most("XOR-BP", "Gshare", "8M", 0.06),
            E::at_least("XOR-BP", "Gshare", "12M", NOISE_FLOOR),
        ]
    }

    /// Figure 10 — the CF ≥ PF ordering holds across every predictor
    /// front-end, and full protection stays bounded on all of them.
    pub(crate) fn fig10() -> Vec<E> {
        let mut v = Vec::new();
        for p in ["Gshare", "Tournament", "LTAGE", "TAGE_SC_L"] {
            v.push(E::order(p, "CF", "8M", "PF", "8M"));
            v.push(E::at_most("Noisy-XOR-BP", p, "8M", 0.12));
        }
        v
    }

    /// Table 1, BTB half — the full verdict matrix: flushing defends the
    /// time-sliced cells but loses SMT, XOR-BTB leaves the SMT
    /// contention hole, and only Noisy-XOR-BTB closes it.
    pub(crate) fn tab01_btb() -> Vec<E> {
        let mut v = Vec::new();
        for mech in ["CF", "PF", "XOR-BTB", "Noisy-XOR-BTB"] {
            for attack in ["BranchShadowing", "SpectreV2", "SBPA"] {
                v.push(E::verdict(attack, mech, "Gshare", "single-core", "Defend"));
            }
        }
        for attack in ["BranchShadowing", "SpectreV2", "SBPA"] {
            v.push(E::verdict(attack, "CF", "Gshare", "smt", "No Protection"));
        }
        v.push(E::verdict(
            "BranchShadowing",
            "PF",
            "Gshare",
            "smt",
            "Defend",
        ));
        v.push(E::verdict("SpectreV2", "PF", "Gshare", "smt", "Defend"));
        v.push(E::verdict("SBPA", "PF", "Gshare", "smt", "No Protection"));
        v.push(E::verdict(
            "BranchShadowing",
            "XOR-BTB",
            "Gshare",
            "smt",
            "Defend",
        ));
        v.push(E::verdict(
            "SpectreV2",
            "XOR-BTB",
            "Gshare",
            "smt",
            "Defend",
        ));
        v.push(E::verdict(
            "SBPA",
            "XOR-BTB",
            "Gshare",
            "smt",
            "No Protection",
        ));
        for attack in ["BranchShadowing", "SpectreV2", "SBPA"] {
            v.push(E::verdict(
                attack,
                "Noisy-XOR-BTB",
                "Gshare",
                "smt",
                "Defend",
            ));
        }
        v
    }

    /// Table 1, PHT half — BranchScope is defeated by every XOR-PHT
    /// variant; the reference-branch variant additionally breaks plain
    /// XOR-PHT but not the enhanced/noisy slices.
    pub(crate) fn tab01_pht() -> Vec<E> {
        let mut v = Vec::new();
        for mech in ["CF", "PF", "XOR-PHT", "Enhanced-XOR-PHT", "Noisy-XOR-PHT"] {
            v.push(E::verdict(
                "BranchScope",
                mech,
                "Gshare",
                "single-core",
                "Defend",
            ));
        }
        for mech in ["CF", "PF"] {
            v.push(E::verdict(
                "BranchScope",
                mech,
                "Gshare",
                "smt",
                "No Protection",
            ));
            v.push(E::verdict(
                "ReferenceBranchScope",
                mech,
                "Gshare",
                "smt",
                "No Protection",
            ));
            v.push(E::verdict(
                "ReferenceBranchScope",
                mech,
                "Gshare",
                "single-core",
                "Defend",
            ));
        }
        for mech in ["XOR-PHT", "Enhanced-XOR-PHT", "Noisy-XOR-PHT"] {
            v.push(E::verdict("BranchScope", mech, "Gshare", "smt", "Defend"));
        }
        v.push(E::verdict(
            "ReferenceBranchScope",
            "XOR-PHT",
            "Gshare",
            "single-core",
            "No Protection",
        ));
        v.push(E::verdict(
            "ReferenceBranchScope",
            "XOR-PHT",
            "Gshare",
            "smt",
            "No Protection",
        ));
        v.push(E::verdict(
            "ReferenceBranchScope",
            "Enhanced-XOR-PHT",
            "Gshare",
            "single-core",
            "Defend",
        ));
        // The SMT-reuse cell is key-bimodal (see the catalog note): the
        // representative key defends, but an unlucky replica sweep can
        // surface the cancelling mode, so Mitigate is tolerated.
        v.push(E::verdict_in(
            "ReferenceBranchScope",
            "Enhanced-XOR-PHT",
            "Gshare",
            "smt",
            &["Defend", "Mitigate"],
        ));
        v.push(E::verdict(
            "ReferenceBranchScope",
            "Noisy-XOR-PHT",
            "Gshare",
            "single-core",
            "Defend",
        ));
        v.push(E::verdict(
            "ReferenceBranchScope",
            "Noisy-XOR-PHT",
            "Gshare",
            "smt",
            "Defend",
        ));
        v
    }

    /// Table 1, PHT half, replay-campaign rider — attack trials never
    /// touch workload traces, so the verdict matrix is identical to
    /// [`tab01_pht`] by construction.
    pub(crate) fn tab01_pht_replay() -> Vec<E> {
        tab01_pht()
    }

    /// Table 1 predictor extension — the BTB verdicts are front-end
    /// invariant: every TAGE-family predictor reproduces the same
    /// flush-loses-SMT / noisy-closes-the-hole pattern, and BranchScope
    /// (a PHT attack, untouched by BTB mechanisms) stays broken.
    pub(crate) fn tab01_predictors() -> Vec<E> {
        let mut v = Vec::new();
        for p in ["Gshare", "LTAGE", "TAGE_SC_L"] {
            v.push(E::verdict("SpectreV2", "CF", p, "smt", "No Protection"));
            v.push(E::verdict(
                "BranchShadowing",
                "CF",
                p,
                "smt",
                "No Protection",
            ));
            v.push(E::verdict("SBPA", "XOR-BTB", p, "smt", "No Protection"));
            v.push(E::verdict("SBPA", "Noisy-XOR-BTB", p, "smt", "Defend"));
            v.push(E::verdict(
                "BranchScope",
                "XOR-BTB",
                p,
                "single-core",
                "No Protection",
            ));
        }
        v
    }

    /// Table 4 — Noisy-XOR-BP at the 12 M interval: the calibrated
    /// full-scale mean, and the conclusion's "< 5% slowdown on average".
    pub(crate) fn tab04() -> Vec<E> {
        vec![
            E::mean_within("Noisy-XOR-BP", "Gshare", "12M", 0.0184, 0.008),
            E::at_most("Noisy-XOR-BP", "Gshare", "12M", 0.05),
        ]
    }

    /// §5.5(3), BTB side — SpectreV2 trains to ≈96% on the baseline and
    /// collapses below 2% under XOR-BP.
    pub(crate) fn sec55_btb() -> Vec<E> {
        vec![
            E::mean_within("Baseline", "Gshare", "single-core", 0.9647, 0.03),
            E::at_most("XOR-BP", "Gshare", "single-core", 0.02),
            E::verdict(
                "SpectreV2",
                "Baseline",
                "Gshare",
                "single-core",
                "No Protection",
            ),
            E::verdict("SpectreV2", "XOR-BP", "Gshare", "single-core", "Defend"),
        ]
    }

    /// §5.5(3), PHT side — BranchScope trains to ≈97% on the baseline
    /// and drops to coin-flip under Enhanced-XOR-PHT.
    pub(crate) fn sec55_pht() -> Vec<E> {
        vec![
            E::mean_within("Baseline", "Gshare", "single-core", 0.9742, 0.04),
            E::verdict(
                "BranchScope",
                "Baseline",
                "Gshare",
                "single-core",
                "No Protection",
            ),
            E::verdict(
                "BranchScope",
                "Enhanced-XOR-PHT",
                "Gshare",
                "single-core",
                "Defend",
            ),
        ]
    }

    /// CI smoke, single-core slice — the standing XOR cost exceeds the
    /// rare-flush cost on gcc+calculix at 8 M.
    pub(crate) fn smoke_single() -> Vec<E> {
        vec![
            E::order("Gshare", "Noisy-XOR-BP", "8M", "CF", "8M"),
            E::at_most("Noisy-XOR-BP", "Gshare", "8M", 0.10),
            E::at_least("CF", "Gshare", "8M", NOISE_FLOOR),
        ]
    }

    /// CI smoke, attack slice — both attacks break the baseline and are
    /// defeated by Noisy-XOR-BP.
    pub(crate) fn smoke_attack() -> Vec<E> {
        vec![
            E::verdict(
                "SpectreV2",
                "Baseline",
                "Gshare",
                "single-core",
                "No Protection",
            ),
            E::verdict(
                "BranchScope",
                "Baseline",
                "Gshare",
                "single-core",
                "No Protection",
            ),
            E::verdict(
                "SpectreV2",
                "Noisy-XOR-BP",
                "Gshare",
                "single-core",
                "Defend",
            ),
            E::verdict(
                "BranchScope",
                "Noisy-XOR-BP",
                "Gshare",
                "single-core",
                "Defend",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn every_entry_carries_expectations() {
        for entry in Catalog::entries() {
            assert!(
                !entry.expectations().is_empty(),
                "{} carries no paper expectations",
                entry.name
            );
        }
    }

    #[test]
    fn expectation_keys_reference_cells_the_spec_actually_plans() {
        // Every expectation must name labels the entry's own grid can
        // produce, or the verdict table would report Missing forever.
        for entry in Catalog::entries() {
            let spec = entry.spec();
            let mechanisms: Vec<String> = spec
                .mechanisms
                .iter()
                .map(|m| m.label().to_string())
                .collect();
            let predictors: Vec<String> = spec
                .predictors
                .iter()
                .map(|p| p.label().to_string())
                .collect();
            let axis: Vec<String> = if spec.is_attack() {
                spec.attack_grid()
                    .expect("attack grid")
                    .modes
                    .iter()
                    .map(|m| m.label().to_string())
                    .collect()
            } else {
                spec.intervals
                    .iter()
                    .map(|i| i.label().to_string())
                    .collect()
            };
            let attacks: Vec<String> = spec
                .attack_grid()
                .map(|g| g.attacks.iter().map(|a| a.label().to_string()).collect())
                .unwrap_or_default();
            let check_key = |key: &SeriesKey| {
                assert!(
                    mechanisms.contains(&key.series),
                    "{}: unknown series {}",
                    entry.name,
                    key.series
                );
                assert!(
                    predictors.contains(&key.predictor),
                    "{}: unknown predictor {}",
                    entry.name,
                    key.predictor
                );
                assert!(
                    axis.contains(&key.interval),
                    "{}: unknown interval/mode {}",
                    entry.name,
                    key.interval
                );
            };
            for e in entry.expectations() {
                match e {
                    Expectation::MeanWithin { key, .. }
                    | Expectation::MeanAtMost { key, .. }
                    | Expectation::MeanAtLeast { key, .. } => check_key(&key),
                    Expectation::OrderAtLeast { hi, lo, .. } => {
                        check_key(&hi);
                        check_key(&lo);
                    }
                    Expectation::Verdict {
                        attack,
                        series,
                        predictor,
                        mode,
                        allowed,
                    } => {
                        assert!(
                            attacks.contains(&attack),
                            "{}: unknown attack {attack}",
                            entry.name
                        );
                        check_key(&SeriesKey::new(&series, &predictor, &mode));
                        assert!(!allowed.is_empty(), "{}: empty verdict set", entry.name);
                    }
                }
            }
        }
    }

    #[test]
    fn table1_halves_encode_the_full_verdict_matrix() {
        // 4 mechanisms x 3 attacks x 2 modes and 5 mechanisms x 2
        // attacks x 2 modes respectively: the whole Table 1.
        assert_eq!(entries::tab01_btb().len(), 24);
        assert_eq!(entries::tab01_pht().len(), 20);
    }

    #[test]
    fn perturbation_flips_every_expectation_kind() {
        for entry in Catalog::entries() {
            for (original, perturbed) in entry
                .expectations()
                .into_iter()
                .zip(entry.expectations().into_iter().map(super::perturb))
            {
                assert_ne!(original, perturbed, "{}: perturb was a no-op", entry.name);
            }
        }
    }

    #[test]
    fn maybe_perturbed_is_identity_without_the_knob() {
        // The test runner never sets the knob for this binary.
        assert!(std::env::var_os(PERTURB_ENV).is_none(), "leaky environment");
        let exps = entries::smoke_attack();
        assert_eq!(maybe_perturbed(exps.clone()), exps);
    }
}
