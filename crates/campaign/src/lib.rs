//! # sbp-campaign
//!
//! Campaign orchestration on top of the sweep engine: reproduce *every*
//! figure and table of the paper — or any subset — with one command,
//! fanned out across worker subprocesses, resumable after any crash.
//!
//! Three parts:
//!
//! * **[`Catalog`]** — the named spec registry. Each figure/table grid
//!   that used to be hand-built inside a bench harness is a
//!   [`CatalogEntry`]: `Catalog::get("fig01")` yields the `SweepSpec`
//!   plus metadata (paper artifact, axes, default store file) and its
//!   paper expectations. Benches, examples and the orchestrator all
//!   build grids from this one source of truth.
//! * **[`expect`]** — the paper-expectation oracle: every entry carries
//!   the paper's reported values (means, direction constraints, Table 1
//!   security verdicts) as machine-checkable [`Expectation`]s, and
//!   `campaign --check` ends every run with the joined
//!   [`VerdictTable`], exiting nonzero when the reproduction drifts out
//!   of tolerance.
//! * **The orchestrator** — a coordinator ([`run_campaign`]) that reads a
//!   [`Manifest`] (catalog entries × scale × seeds × worker count),
//!   spawns N worker subprocesses (the same binary with `--worker`), each
//!   owning a `--shard k/n` slice writing its own store, streams
//!   per-shard progress/ETA to stderr, retries crashed shards (the shard
//!   store is resumable, so the second pass executes only the missing
//!   jobs), then merges + compacts the stores and prints the report —
//!   byte-identical to an in-process unsharded run of the same manifest.
//!
//! The `campaign` binary is the CLI over both halves:
//!
//! ```console
//! $ campaign --list                      # print the catalog
//! $ campaign manifest.json               # coordinator: fan out, merge, report
//! $ campaign --in-process manifest.json  # unsharded reference run (same stdout)
//! ```

pub mod catalog;
pub mod coordinator;
pub mod expect;
pub mod manifest;
pub mod recorder;
pub mod report;
pub mod worker;

pub use catalog::{Catalog, CatalogEntry};
pub use coordinator::{
    finalize_telemetry, run_campaign, shard_store_path, telemetry_enabled, telemetry_sidecar_path,
    CampaignOptions,
};
pub use expect::{check_entry, maybe_perturbed, Expectation, VerdictTable, PERTURB_ENV};
pub use manifest::{parse_gap_mode, Manifest};
pub use recorder::{record_entry, record_spec, verify_entry, verify_spec, TraceOptions};
pub use report::run_report;
pub use worker::{run_worker, WorkerArgs, DIE_AFTER_ENV, DIE_EXIT_CODE, STALL_AFTER_ENV};
