//! Trace capture for the replay catalog entries.
//!
//! `campaign trace ENTRY` records every `SBPT` file the entry's
//! `replay:<workload>@<dir>` streams will open. It walks the entry's
//! grid exactly like the sweep planner does (group seed =
//! `derive(master_seed, case · S + replica)`, shared by every mechanism,
//! interval and predictor), re-derives each context's code base and
//! per-context seed with the simulators' own formulas, and streams the
//! matching [`TraceGenerator`] into the canonical
//! [`replay_trace_path`] file name. Because recorder and simulator share
//! the derivations, a recorded campaign replays the byte-identical event
//! streams the generator campaign would have drawn — [`verify_entry`]
//! proves it in-process by running both specs and comparing the reports
//! byte for byte.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sbp_sweep::{SweepMode, SweepSpec};
use sbp_trace::{
    parse_replay, replay_trace_path, EventBuffer, TraceEvent, TraceGenerator, TraceInfo,
    TraceWriter, WorkloadProfile,
};
use sbp_types::rng::SplitMix64;
use sbp_types::SbpError;

use crate::catalog::CatalogEntry;

/// One trace file a replay entry will open, with everything needed to
/// record it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceJob {
    /// Underlying workload profile name ("gcc", ...).
    pub workload: String,
    /// The context's code-region base address.
    pub base: u64,
    /// The fully-derived per-context stream seed.
    pub seed: u64,
    /// Whether the owning spec runs the SMT core (SMT threads zero the
    /// profile's syscall rate and draw a different seed stream).
    pub smt: bool,
    /// Destination file.
    pub path: PathBuf,
}

/// Options for [`record_entry`] / [`verify_entry`].
#[derive(Debug, Clone, Default)]
pub struct TraceOptions {
    /// Capture directory override. Defaults to each workload's
    /// `replay:...@<dir>` directory; required for entries whose
    /// workloads are plain generator names.
    pub dir: Option<PathBuf>,
    /// Branch events per trace (default: [`default_branches`]).
    pub branches: Option<u64>,
    /// After recording, run the replay spec and its generator twin
    /// in-process and byte-compare the reports.
    pub verify: bool,
}

/// Result of one recorded file.
#[derive(Debug)]
pub struct RecordedTrace {
    /// What was recorded and where.
    pub job: TraceJob,
    /// The finished container header (event count, checksum).
    pub info: TraceInfo,
}

/// Enumerates the distinct trace files `spec`'s contexts will open,
/// deterministic grid order.
///
/// # Errors
///
/// Rejects attack specs (no workload streams) and plain generator
/// workloads when no `dir` override names a capture directory.
pub fn trace_jobs(spec: &SweepSpec, dir: Option<&Path>) -> Result<Vec<TraceJob>, SbpError> {
    if spec.is_attack() {
        return Err(SbpError::campaign(
            "attack entries have no workload streams to record",
        ));
    }
    let smt = spec.mode == SweepMode::Smt;
    let s_len = spec.seeds as usize;
    let mut seen = BTreeSet::new();
    let mut jobs = Vec::new();
    for (case_index, case) in spec.cases.iter().enumerate() {
        for seed_index in 0..s_len {
            // The planner's group-seed rule (`sbp_sweep::plan`): one
            // stream per (case, replica).
            let group_seed =
                SplitMix64::derive(spec.master_seed, (case_index * s_len + seed_index) as u64);
            for (i, name) in case.workloads.iter().enumerate() {
                let workload = parse_replay(name).map_or(name.as_str(), |(w, _)| w);
                let target_dir = match (dir, parse_replay(name)) {
                    (Some(d), _) => d.to_path_buf(),
                    (None, Some((_, d))) => PathBuf::from(d),
                    (None, None) => {
                        return Err(SbpError::campaign(format!(
                            "workload {name:?} is not a replay:<workload>@<dir> target; \
                             pass --dir to choose a capture directory"
                        )))
                    }
                };
                // The simulators' per-context derivations
                // (`SingleCoreSim::new` / `SmtSim::new`): fixed base
                // ladder, per-context seed stream off the group seed.
                let base = 0x1000_0000 + (i as u64) * 0x0800_0000;
                let seed = if smt {
                    SplitMix64::derive(group_seed, 100 + i as u64)
                } else {
                    SplitMix64::derive(group_seed, i as u64)
                };
                let path = replay_trace_path(&target_dir, workload, base, seed);
                if seen.insert(path.clone()) {
                    jobs.push(TraceJob {
                        workload: workload.to_string(),
                        base,
                        seed,
                        smt,
                        path,
                    });
                }
            }
        }
    }
    Ok(jobs)
}

/// A conservative per-context bound (in the budget's work units —
/// branches on the single core, instructions on SMT, where it overbounds)
/// covering every execution path the entry's simulations can drive a
/// replayed stream through: exact runs, the uniform sampled schedule the
/// `--verify` twin uses, and the phase-clustered schedule with its
/// event-window tail reserve.
pub fn default_branches(spec: &SweepSpec) -> u64 {
    let slack = 8 * EventBuffer::DEFAULT_CAPACITY as u64;
    match &spec.sampling {
        None => spec.budget.warmup + spec.budget.measure + slack,
        Some(p) => {
            let uniform = p.steady_windows as u64 * (p.gap + p.rewarm + p.window);
            // Enough complete intervals for the clusterer to see real
            // phase structure, never fewer than the uniform schedule
            // spans.
            let intervals = 6 * u64::from(p.phase_windows.max(4));
            let reserve =
                u64::from(p.event_windows) * (p.gap + p.rewarm + p.event_window + p.burst);
            spec.budget.warmup + uniform.max(intervals * p.window) + reserve + slack
        }
    }
}

/// Records every trace file `entry` needs (creating directories), in
/// deterministic grid order.
///
/// # Errors
///
/// Propagates spec validation, unknown-workload and IO errors.
pub fn record_entry(
    entry: &CatalogEntry,
    opts: &TraceOptions,
) -> Result<Vec<RecordedTrace>, SbpError> {
    record_spec(&entry.spec(), entry.name, opts)
}

/// [`record_entry`] for a free-standing spec (`label` tags the progress
/// lines) — the building block tests capture ad-hoc grids with.
///
/// # Errors
///
/// Propagates spec validation, unknown-workload and IO errors.
pub fn record_spec(
    spec: &SweepSpec,
    label: &str,
    opts: &TraceOptions,
) -> Result<Vec<RecordedTrace>, SbpError> {
    spec.validate()?;
    let branches = opts.branches.unwrap_or_else(|| default_branches(spec));
    let jobs = trace_jobs(spec, opts.dir.as_deref())?;
    let mut recorded = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let Some(parent) = job.path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                SbpError::campaign(format!("cannot create {}: {e}", parent.display()))
            })?;
        }
        let mut profile = WorkloadProfile::by_name(&job.workload)?;
        if job.smt {
            // SMT threads run gem5-SE style with syscalls disabled —
            // mirror `SmtSim`'s stream exactly.
            profile.syscalls_per_minstr = 0.0;
        }
        let mut gen = TraceGenerator::new(&profile, job.base, job.seed);
        let info = record_branches(&mut gen, &job.workload, branches, &job.path)?;
        eprintln!(
            "campaign trace[{}]: {} ({} events / {} branches)",
            label,
            job.path.display(),
            info.count,
            branches,
        );
        recorded.push(RecordedTrace { job, info });
    }
    Ok(recorded)
}

/// Streams generator events to `path` until `branches` branch events have
/// been written — privilege switches ride along, so the recorded stream
/// covers the simulators' *branch*-denominated skips and windows.
fn record_branches(
    gen: &mut TraceGenerator,
    workload: &str,
    branches: u64,
    path: &Path,
) -> Result<TraceInfo, SbpError> {
    let mut writer = TraceWriter::create(path, workload)?;
    let mut left = branches;
    while left > 0 {
        let ev = gen.next_event();
        if matches!(ev, TraceEvent::Branch(_)) {
            left -= 1;
        }
        writer.write_event(&ev)?;
    }
    writer.finish()
}

/// The spec with every `replay:` workload swapped back to its plain
/// generator name — the other half of the byte-identity comparison.
///
/// # Errors
///
/// Errors when the spec has no `replay:` workloads to swap.
pub fn generator_twin(spec: &SweepSpec) -> Result<SweepSpec, SbpError> {
    let mut twin = spec.clone();
    let mut found = false;
    for case in &mut twin.cases {
        for w in &mut case.workloads {
            if let Some((name, _)) = parse_replay(w) {
                *w = name.to_string();
                found = true;
            }
        }
    }
    if !found {
        return Err(SbpError::campaign(
            "entry has no replay: workloads to verify",
        ));
    }
    Ok(twin)
}

/// Runs the recorded replay spec and its generator twin in-process and
/// compares the report tables **byte for byte** — the round-trip
/// guarantee the replay layer is built on. Phase clustering only exists
/// over recorded traces, so both sides run under the uniform plan
/// (`phase_windows` stripped); the streams they draw are identical
/// either way.
///
/// # Errors
///
/// Propagates run errors and fails when the reports differ.
pub fn verify_entry(entry: &CatalogEntry, opts: &TraceOptions) -> Result<(), SbpError> {
    verify_spec(&entry.spec(), entry.name, opts)
}

/// [`verify_entry`] for a free-standing spec.
///
/// # Errors
///
/// Propagates run errors and fails when the reports differ.
pub fn verify_spec(spec: &SweepSpec, label: &str, opts: &TraceOptions) -> Result<(), SbpError> {
    let plan = spec.sampling.map(|p| sbp_sim::SamplingPlan {
        phase_windows: 0,
        ..p
    });
    let replay_spec = override_dir(spec, opts.dir.as_deref()).with_sampling(plan);
    let twin = generator_twin(&replay_spec)?;
    let replayed = replay_spec.run()?.to_table();
    let generated = twin.run()?.to_table();
    if replayed != generated {
        return Err(SbpError::campaign(format!(
            "trace-verify[{label}]: replay report differs from its generator twin — \
             the capture is not stream-exact"
        )));
    }
    println!(
        "trace-verify[{label}]: replay report byte-identical to generator twin ({} bytes)",
        replayed.len()
    );
    Ok(())
}

/// Rewrites every `replay:` workload's directory to `dir` (no-op without
/// an override), so `--dir` captures and verifies the same files.
fn override_dir(spec: &SweepSpec, dir: Option<&Path>) -> SweepSpec {
    let Some(dir) = dir else {
        return spec.clone();
    };
    let mut spec = spec.clone();
    for case in &mut spec.cases {
        for w in &mut case.workloads {
            if let Some((name, _)) = parse_replay(w) {
                *w = format!("replay:{name}@{}", dir.display());
            }
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn jobs_follow_the_planner_seed_rule_and_dedupe_across_the_grid() {
        let entry = Catalog::get("fig08_replay").expect("registered");
        let spec = entry.spec();
        let jobs = trace_jobs(&spec, None).expect("jobs");
        // 1 case x 3 replicas x 2 contexts, every (base, seed) distinct;
        // mechanisms and the baseline share the files.
        assert_eq!(jobs.len(), 6);
        let distinct: BTreeSet<(u64, u64)> = jobs.iter().map(|j| (j.base, j.seed)).collect();
        assert_eq!(distinct.len(), 6);
        for job in &jobs {
            assert!(!job.smt);
            assert!(job.path.to_string_lossy().ends_with(".sbpt"));
        }
        // Context 0 of replica 0 must match the exec layer's clustering
        // path: base 0x1000_0000, seed stream 0 off the group seed.
        let group0 = SplitMix64::derive(spec.master_seed, 0);
        assert_eq!(jobs[0].base, 0x1000_0000);
        assert_eq!(jobs[0].seed, SplitMix64::derive(group0, 0));
    }

    #[test]
    fn plain_generator_workloads_need_an_explicit_directory() {
        let spec = Catalog::get("smoke_single").expect("registered").spec();
        assert!(trace_jobs(&spec, None).is_err(), "no replay dir to infer");
        let jobs = trace_jobs(&spec, Some(Path::new("/tmp/t"))).expect("explicit dir");
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.path.starts_with("/tmp/t")));
    }

    #[test]
    fn attack_entries_are_rejected() {
        let spec = Catalog::get("tab01_pht_replay").expect("registered").spec();
        assert!(trace_jobs(&spec, None).is_err());
    }

    #[test]
    fn default_branch_bound_covers_the_phased_schedule() {
        let spec = Catalog::get("fig08_replay").expect("registered").spec();
        let plan = spec.sampling.expect("plan");
        let bound = default_branches(&spec);
        let reserve = u64::from(plan.event_windows)
            * (plan.gap + plan.rewarm + plan.event_window + plan.burst);
        // Enough post-warmup intervals survive the tail reserve for the
        // clusterer to pick phase_windows representatives.
        let clusterable = (bound - spec.budget.warmup - reserve) / plan.window;
        assert!(
            clusterable >= u64::from(plan.phase_windows),
            "{clusterable} intervals for {} picks",
            plan.phase_windows
        );
    }

    #[test]
    fn generator_twin_strips_replay_prefixes() {
        let spec = Catalog::get("fig08_replay").expect("registered").spec();
        let twin = generator_twin(&spec).expect("twin");
        for case in &twin.cases {
            for w in &case.workloads {
                assert!(parse_replay(w).is_none(), "{w} still a replay target");
            }
        }
        assert_eq!(twin.cases[0].workloads, vec!["gcc", "calculix"]);
        let plain = Catalog::get("smoke_single").expect("registered").spec();
        assert!(generator_twin(&plain).is_err(), "nothing to swap");
    }
}
