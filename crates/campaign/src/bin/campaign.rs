//! The campaign CLI: catalog listing, coordinator fan-out, in-process
//! reference runs, the paper-conformance check and the (internal) worker
//! mode.
//!
//! ```console
//! $ campaign --list                      # the spec catalog
//! $ campaign manifest.json               # N-worker fan-out + merge + report
//! $ campaign --check manifest.json       # ... + per-entry verdict tables
//! $ campaign --in-process manifest.json  # unsharded run, byte-identical stdout
//! ```
//!
//! Reports (and, with `--check`, the verdict tables and the conformance
//! rollup) go to stdout; all status, progress and worker chatter goes to
//! stderr, so a coordinator run's stdout is byte-comparable with an
//! in-process run's. A `--check` run exits nonzero when any paper
//! expectation misses. `--stall-timeout SECS` arms the coordinator's
//! worker heartbeat: a worker whose shard store stops growing for that
//! long is killed and retried. The worker mode (`--worker ENTRY --shard
//! K/N --store PATH [--seeds S]`) is spawned by the coordinator and not
//! meant for direct use.

use std::path::{Path, PathBuf};
use std::time::Duration;

use sbp_campaign::coordinator::{check_and_print, summarize_verdicts};
use sbp_campaign::{
    finalize_telemetry, parse_gap_mode, run_campaign, run_report, run_worker, telemetry_enabled,
    CampaignOptions, Catalog, Manifest, WorkerArgs,
};
use sbp_sim::GapMode;
use sbp_sweep::Shard;
use sbp_types::SbpError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("campaign: {e}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), SbpError> {
    if args.first().map(String::as_str) == Some("--worker") {
        return run_worker(&parse_worker_args(&args[1..])?);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return run_trace(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        let [out_dir] = &args[1..] else {
            return Err(SbpError::campaign("usage: campaign report OUT_DIR"));
        };
        return run_report(Path::new(out_dir));
    }
    let (mut list, mut in_process, mut options) = (false, false, CampaignOptions::default());
    let mut sampled = false;
    let mut gap_mode: Option<GapMode> = None;
    let mut window_threads: Option<usize> = None;
    let mut manifest_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" => {
                print_usage();
                return Ok(());
            }
            "--list" => list = true,
            "--in-process" => in_process = true,
            "--check" => options.check = true,
            "--sampled" => sampled = true,
            "--profile" => options.profile = true,
            "--telemetry" => options.telemetry = true,
            "--trace-out" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SbpError::campaign("--trace-out needs a file path"))?;
                options.trace_out = Some(PathBuf::from(raw));
            }
            "--gap-mode" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SbpError::campaign("--gap-mode needs a mode name"))?;
                gap_mode = Some(parse_gap_mode(raw)?);
            }
            "--window-threads" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SbpError::campaign("--window-threads needs a count"))?;
                let parsed: usize = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--window-threads {raw:?}: {e}")))?;
                if parsed == 0 {
                    return Err(SbpError::campaign("--window-threads must be >= 1"));
                }
                window_threads = Some(parsed);
            }
            "--stall-timeout" => {
                let raw = it
                    .next()
                    .ok_or_else(|| SbpError::campaign("--stall-timeout needs seconds"))?;
                let secs: f64 = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--stall-timeout {raw:?}: {e}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(SbpError::campaign("--stall-timeout must be > 0 seconds"));
                }
                options.stall_timeout =
                    Some(Duration::try_from_secs_f64(secs).map_err(|e| {
                        SbpError::campaign(format!("--stall-timeout {raw:?}: {e}"))
                    })?);
            }
            other if other.starts_with("--") => {
                return Err(SbpError::campaign(format!(
                    "unknown option {other:?} (see --help)"
                )))
            }
            path => {
                if manifest_path.replace(path.to_string()).is_some() {
                    return Err(SbpError::campaign("more than one manifest path given"));
                }
            }
        }
    }
    if list {
        // Silently discarding a manifest or mode flag would be the quiet
        // failure the strict parsers elsewhere exist to prevent.
        if in_process
            || sampled
            || gap_mode.is_some()
            || window_threads.is_some()
            || options != CampaignOptions::default()
            || manifest_path.is_some()
        {
            return Err(SbpError::campaign(
                "--list takes no other options or manifest",
            ));
        }
        println!(
            "{:<18} {:<42} {:<14} {:>6} axes",
            "name", "artifact", "default store", "checks"
        );
        for entry in Catalog::entries() {
            println!(
                "{:<18} {:<42} {:<14} {:>6} {}",
                entry.name,
                entry.artifact,
                entry.store,
                entry.expectations().len(),
                entry.axes
            );
        }
        return Ok(());
    }
    if in_process && options.stall_timeout.is_some() {
        return Err(SbpError::campaign(
            "--stall-timeout needs the coordinator: an in-process run has no workers to watch",
        ));
    }
    if args.is_empty() {
        print_usage();
        return Ok(());
    }
    let usage = if in_process {
        "--in-process [--check] MANIFEST.json"
    } else {
        "[--check] MANIFEST.json"
    };
    let mut manifest = load_manifest(manifest_path.as_ref(), usage)?;
    if sampled {
        manifest.sampling = true;
    }
    if let Some(mode) = gap_mode {
        if !manifest.sampling {
            return Err(SbpError::campaign(
                "--gap-mode needs sampling (--sampled or the manifest's \"sampling\": true)",
            ));
        }
        manifest.gap_mode = mode;
    }
    if let Some(threads) = window_threads {
        manifest.window_threads = Some(threads);
    }
    if in_process {
        if let Some(threads) = manifest.window_threads {
            sbp_sweep::set_window_threads(threads);
        }
        if options.profile {
            sbp_sim::profile::set_enabled(true);
        }
        // The in-process runner is lane 0 with no sidecar file: its
        // events collect in the sink and merge at the end, exactly like
        // the coordinator's control lane.
        let telemetry_on = telemetry_enabled(&manifest, &options);
        if telemetry_on {
            std::fs::create_dir_all(&manifest.out_dir).map_err(|e| {
                SbpError::campaign(format!(
                    "cannot create out_dir {}: {e}",
                    manifest.out_dir.display()
                ))
            })?;
            sbp_telemetry::enable("", 0, None);
        }
        let mut verdicts = Vec::new();
        for (entry, spec) in manifest.specs()? {
            eprintln!(
                "campaign[{}]: {} — in-process reference run",
                entry.name, entry.artifact
            );
            if options.profile {
                sbp_sim::profile::reset();
            }
            sbp_telemetry::set_entry(entry.name);
            let entry_span = sbp_telemetry::control_span("entry", entry.name);
            let report = spec.run()?;
            drop(entry_span);
            if options.profile {
                eprintln!(
                    "campaign[{}] profile: {}",
                    entry.name,
                    sbp_sim::profile::snapshot().to_line()
                );
            }
            print!("{}", report.to_table());
            if options.check {
                verdicts.push(check_and_print(entry, &report));
            }
        }
        if telemetry_on {
            finalize_telemetry(&manifest, options.trace_out.as_deref(), false)?;
        }
        summarize_verdicts(&verdicts)
    } else {
        let exe = std::env::current_exe()
            .map_err(|e| SbpError::campaign(format!("cannot locate own binary: {e}")))?;
        run_campaign(&manifest, &exe, &options)
    }
}

/// Loads the manifest and, when it pins a scale, exports `SBP_SCALE`
/// before anything reads it — the coordinator's fingerprints, the
/// tolerance-widening rule and every spawned worker must agree on the
/// work multiplier.
fn load_manifest(path: Option<&String>, usage: &str) -> Result<Manifest, SbpError> {
    let path = path.ok_or_else(|| SbpError::campaign(format!("usage: campaign {usage}")))?;
    let manifest = Manifest::load(Path::new(path))?;
    if let Some(scale) = manifest.scale {
        std::env::set_var("SBP_SCALE", format!("{scale}"));
    }
    Ok(manifest)
}

/// `campaign trace ENTRY [--dir DIR] [--branches N] [--verify]`: record
/// every `SBPT` file the entry's replay streams will open (see
/// `sbp_campaign::recorder`), optionally proving the capture round-trips
/// by running the replay spec and its generator twin and byte-comparing
/// the reports.
fn run_trace(args: &[String]) -> Result<(), SbpError> {
    let mut entry_name: Option<String> = None;
    let mut opts = sbp_campaign::TraceOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| SbpError::campaign(format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--dir" => opts.dir = Some(PathBuf::from(value("a directory")?)),
            "--branches" => {
                let raw = value("a count")?;
                let parsed: u64 = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--branches {raw:?}: {e}")))?;
                if parsed == 0 {
                    return Err(SbpError::campaign("--branches must be >= 1"));
                }
                opts.branches = Some(parsed);
            }
            "--verify" => opts.verify = true,
            other if other.starts_with("--") => {
                return Err(SbpError::campaign(format!(
                    "unknown trace option {other:?}"
                )))
            }
            name => {
                if entry_name.replace(name.to_string()).is_some() {
                    return Err(SbpError::campaign("more than one entry name given"));
                }
            }
        }
    }
    let name = entry_name.ok_or_else(|| {
        SbpError::campaign("usage: campaign trace ENTRY [--dir DIR] [--branches N] [--verify]")
    })?;
    let entry = Catalog::get(&name).ok_or_else(|| {
        SbpError::campaign(format!(
            "unknown catalog entry {name:?} (run `campaign --list` for the registry)"
        ))
    })?;
    let recorded = sbp_campaign::record_entry(entry, &opts)?;
    eprintln!(
        "campaign trace[{}]: {} file(s) recorded",
        entry.name,
        recorded.len()
    );
    if opts.verify {
        sbp_campaign::verify_entry(entry, &opts)?;
    }
    Ok(())
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, SbpError> {
    let entry = args
        .first()
        .ok_or_else(|| SbpError::campaign("--worker needs a catalog entry name"))?
        .clone();
    let (mut shard, mut store, mut seeds, mut sampled) = (None, None, None, false);
    let (mut gap_mode, mut window_threads, mut profile) = (GapMode::FastForward, None, false);
    let mut telemetry = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| SbpError::campaign(format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--shard" => shard = Some(Shard::parse(value("a k/n spec")?)?),
            "--store" => store = Some(PathBuf::from(value("a path")?)),
            "--seeds" => {
                let raw = value("a count")?;
                let parsed: u32 = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--seeds {raw:?}: {e}")))?;
                seeds = Some(parsed);
            }
            "--sampled" => sampled = true,
            "--gap-mode" => gap_mode = parse_gap_mode(value("a mode name")?)?,
            "--window-threads" => {
                let raw = value("a count")?;
                let parsed: usize = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--window-threads {raw:?}: {e}")))?;
                if parsed == 0 {
                    return Err(SbpError::campaign("--window-threads must be >= 1"));
                }
                window_threads = Some(parsed);
            }
            "--profile" => profile = true,
            "--telemetry" => telemetry = Some(PathBuf::from(value("a sidecar path")?)),
            other => {
                return Err(SbpError::campaign(format!(
                    "unknown worker argument {other:?}"
                )))
            }
        }
    }
    Ok(WorkerArgs {
        entry,
        shard: shard.ok_or_else(|| SbpError::campaign("--worker needs --shard K/N"))?,
        store: store.ok_or_else(|| SbpError::campaign("--worker needs --store PATH"))?,
        seeds,
        sampled,
        gap_mode,
        window_threads,
        profile,
        telemetry,
    })
}

fn print_usage() {
    println!(
        "usage: campaign [OPTIONS] MANIFEST.json        run the campaign (N workers, merge, report)"
    );
    println!("       campaign --in-process MANIFEST.json   unsharded reference run (same stdout)");
    println!("       campaign --list                   print the spec catalog");
    println!("       campaign report OUT_DIR           summarize a recorded telemetry timeline");
    println!("       campaign trace ENTRY [--dir DIR] [--branches N] [--verify]");
    println!("                                         record the entry's replay trace files");
    println!(
        "                                         (--verify: byte-compare replay vs generator)"
    );
    println!();
    println!("options:");
    println!("  --check               end every entry with its paper-expectation verdict");
    println!("                        table; exit nonzero when out of tolerance");
    println!("  --sampled             run simulation entries with their mode's default");
    println!("                        sampling plan (warm checkpoints + window estimation)");
    println!("  --gap-mode MODE       gap strategy for sampled runs: \"fast-forward\" (skip +");
    println!("                        rewarm, the default) or \"functional\" (state-exact");
    println!("                        executed gaps — the hybrid plans); needs --sampled");
    println!("  --window-threads N    fan each sampled cell's measurement windows out across");
    println!("                        N threads per worker (results are bit-identical)");
    println!("  --profile             print a per-entry wall-time phase breakdown (warm /");
    println!("                        gaps / steady / event / exact measure) to stderr");
    println!("  --stall-timeout SECS  kill + retry a worker whose shard store stops");
    println!("                        growing for SECS (must exceed the slowest job)");
    println!("  --telemetry           record structured spans/counters/gauges per worker and");
    println!("                        merge them into OUT_DIR/telemetry.jsonl (observation-");
    println!("                        only: reports and stores are byte-identical either way)");
    println!("  --trace-out FILE      also export the merged timeline as Chrome trace_event");
    println!("                        JSON for chrome://tracing (implies --telemetry)");
    println!();
    println!(
        "manifest keys: entries (required), workers, scale, seeds, out_dir, retries, sampling, \
         gap_mode, window_threads, telemetry"
    );
}
