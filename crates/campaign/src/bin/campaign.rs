//! The campaign CLI: catalog listing, coordinator fan-out, in-process
//! reference runs, and the (internal) worker mode.
//!
//! ```console
//! $ campaign --list                      # the spec catalog
//! $ campaign manifest.json               # N-worker fan-out + merge + report
//! $ campaign --in-process manifest.json  # unsharded run, byte-identical stdout
//! ```
//!
//! Reports go to stdout; all status, progress and worker chatter goes to
//! stderr, so a coordinator run's stdout is byte-comparable with an
//! in-process run's. The worker mode (`--worker ENTRY --shard K/N
//! --store PATH [--seeds S]`) is spawned by the coordinator and not
//! meant for direct use.

use std::path::{Path, PathBuf};

use sbp_campaign::{run_campaign, run_worker, Catalog, Manifest, WorkerArgs};
use sbp_sweep::Shard;
use sbp_types::SbpError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("campaign: {e}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), SbpError> {
    match args.first().map(String::as_str) {
        None | Some("--help") => {
            print_usage();
            Ok(())
        }
        Some("--list") => {
            println!(
                "{:<18} {:<42} {:<14} axes",
                "name", "artifact", "default store"
            );
            for entry in Catalog::entries() {
                println!(
                    "{:<18} {:<42} {:<14} {}",
                    entry.name, entry.artifact, entry.store, entry.axes
                );
            }
            Ok(())
        }
        Some("--worker") => run_worker(&parse_worker_args(&args[1..])?),
        Some("--in-process") => {
            let manifest = load_manifest(args.get(1), "--in-process MANIFEST.json")?;
            for (entry, spec) in manifest.specs()? {
                eprintln!(
                    "campaign[{}]: {} — in-process reference run",
                    entry.name, entry.artifact
                );
                let report = spec.run()?;
                print!("{}", report.to_table());
            }
            Ok(())
        }
        Some(path) if path.starts_with("--") => Err(SbpError::campaign(format!(
            "unknown option {path:?} (see --help)"
        ))),
        Some(path) => {
            let manifest = load_manifest(Some(&path.to_string()), "MANIFEST.json")?;
            let exe = std::env::current_exe()
                .map_err(|e| SbpError::campaign(format!("cannot locate own binary: {e}")))?;
            run_campaign(&manifest, &exe)
        }
    }
}

/// Loads the manifest and, when it pins a scale, exports `SBP_SCALE`
/// before anything reads it — the coordinator's fingerprints and every
/// spawned worker must agree on the work multiplier.
fn load_manifest(path: Option<&String>, usage: &str) -> Result<Manifest, SbpError> {
    let path = path.ok_or_else(|| SbpError::campaign(format!("usage: campaign {usage}")))?;
    let manifest = Manifest::load(Path::new(path))?;
    if let Some(scale) = manifest.scale {
        std::env::set_var("SBP_SCALE", format!("{scale}"));
    }
    Ok(manifest)
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, SbpError> {
    let entry = args
        .first()
        .ok_or_else(|| SbpError::campaign("--worker needs a catalog entry name"))?
        .clone();
    let (mut shard, mut store, mut seeds) = (None, None, None);
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| SbpError::campaign(format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--shard" => shard = Some(Shard::parse(value("a k/n spec")?)?),
            "--store" => store = Some(PathBuf::from(value("a path")?)),
            "--seeds" => {
                let raw = value("a count")?;
                let parsed: u32 = raw
                    .parse()
                    .map_err(|e| SbpError::campaign(format!("--seeds {raw:?}: {e}")))?;
                seeds = Some(parsed);
            }
            other => {
                return Err(SbpError::campaign(format!(
                    "unknown worker argument {other:?}"
                )))
            }
        }
    }
    Ok(WorkerArgs {
        entry,
        shard: shard.ok_or_else(|| SbpError::campaign("--worker needs --shard K/N"))?,
        store: store.ok_or_else(|| SbpError::campaign("--worker needs --store PATH"))?,
        seeds,
    })
}

fn print_usage() {
    println!(
        "usage: campaign MANIFEST.json            run the campaign (N workers, merge, report)"
    );
    println!("       campaign --in-process MANIFEST.json   unsharded reference run (same stdout)");
    println!("       campaign --list                   print the spec catalog");
    println!();
    println!("manifest keys: entries (required), workers, scale, seeds, out_dir, retries");
}
