//! The coordinator half of the orchestrator: spawn N local worker
//! subprocesses per catalog entry, stream per-shard progress/ETA to
//! stderr, retry crashed shards, then merge + compact the stores and emit
//! the report.
//!
//! Layout on disk (all under the manifest's `out_dir`):
//!
//! * `<entry>.shard<k>of<n>.jsonl` — shard `k`'s store, written by its
//!   worker one line per completed job (resumable after any crash);
//! * `<entry>.jsonl` — the merged canonical store (plan order), written
//!   after every shard completes.
//!
//! The merged report printed to stdout is byte-identical to an in-process
//! unsharded run of the same manifest (`campaign --in-process`): the
//! report is a pure function of the plan-ordered results, and stored
//! floats round-trip exactly. Status/progress goes to stderr only, so
//! the two stdouts are directly comparable.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sbp_sweep::{gc_store, merge_stores, plan, plan_fingerprints, Shard, SweepSpec, VerdictTable};
use sbp_types::{SbpError, SweepReport};

use crate::catalog::CatalogEntry;
use crate::expect;
use crate::manifest::Manifest;
use crate::worker::{DIE_AFTER_ENV, STALL_AFTER_ENV};

/// Coordinator behavior knobs beyond the manifest (CLI flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignOptions {
    /// End every entry with its paper-expectation verdict table and fail
    /// the campaign when any expectation misses (`--check`).
    pub check: bool,
    /// Liveness timeout: a worker whose shard store has not grown for
    /// this long is killed and retried (`--stall-timeout`). Must exceed
    /// the slowest single job, or healthy workers get killed mid-cell.
    pub stall_timeout: Option<Duration>,
    /// Forward `--profile` to every worker: each shard prints its
    /// wall-time phase breakdown (warm / gaps / steady / event / exact
    /// measure) to stderr after its run.
    pub profile: bool,
}

/// Runs the whole campaign described by `manifest`, spawning workers from
/// the binary at `exe` (normally `std::env::current_exe()`).
///
/// With `options.check`, every entry's merged report is joined against
/// its catalog expectations and the verdict table printed after the
/// report; a manifest-level summary rolls all entries up, and any failed
/// expectation fails the campaign.
///
/// # Errors
///
/// Returns campaign errors when workers cannot be spawned or keep
/// crashing/stalling past the retry budget, store/validation errors from
/// the merge, and a campaign error naming the failing entries when a
/// `--check` run is out of tolerance. Shard stores survive every failure
/// mode — re-running the same campaign resumes from them.
pub fn run_campaign(
    manifest: &Manifest,
    exe: &Path,
    options: &CampaignOptions,
) -> Result<(), SbpError> {
    std::fs::create_dir_all(&manifest.out_dir).map_err(|e| {
        SbpError::campaign(format!(
            "cannot create out_dir {}: {e}",
            manifest.out_dir.display()
        ))
    })?;
    let mut verdicts = Vec::new();
    for (entry, spec) in manifest.specs()? {
        let report = run_entry(manifest, entry, &spec, exe, options)?;
        if options.check {
            verdicts.push(check_and_print(entry, &report));
        }
    }
    summarize_verdicts(&verdicts)
}

/// Joins one entry's report against its expectations and prints the
/// verdict table to stdout (below the report, so a `--check` run's
/// stdout is still deterministic and shard-invariant).
pub fn check_and_print(entry: &CatalogEntry, report: &SweepReport) -> VerdictTable {
    let table = expect::check_entry(entry, report);
    print!("{}", table.to_table());
    table
}

/// Prints the manifest-level conformance rollup and returns an error when
/// any entry failed. No-op for an empty list (a run without `--check`).
pub fn summarize_verdicts(verdicts: &[VerdictTable]) -> Result<(), SbpError> {
    if verdicts.is_empty() {
        return Ok(());
    }
    let (mut pass, mut fail, mut missing) = (0, 0, 0);
    let mut failed_entries = Vec::new();
    for table in verdicts {
        let (p, f, m) = table.counts();
        pass += p;
        fail += f;
        missing += m;
        if !table.passed() {
            failed_entries.push(table.entry.clone());
        }
    }
    let verdict = if failed_entries.is_empty() {
        "within tolerance of the paper"
    } else {
        "OUT OF TOLERANCE"
    };
    println!(
        "conformance: {verdict} — {} entr{}, {pass} pass, {fail} fail, {missing} missing",
        verdicts.len(),
        if verdicts.len() == 1 { "y" } else { "ies" },
    );
    if failed_entries.is_empty() {
        Ok(())
    } else {
        Err(SbpError::campaign(format!(
            "paper-expectation check failed for entr{}: {}",
            if failed_entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            failed_entries.join(", "),
        )))
    }
}

/// Shard store path for worker `k` (1-based) of `n`.
pub fn shard_store_path(out_dir: &Path, entry: &CatalogEntry, k: usize, n: usize) -> PathBuf {
    out_dir.join(format!("{}.shard{k}of{n}.jsonl", entry.name))
}

/// One worker subprocess being tracked by the progress loop.
struct WorkerProc {
    /// 0-based shard index.
    shard: usize,
    child: Child,
    /// Exit status once reaped.
    status: Option<std::process::ExitStatus>,
}

fn run_entry(
    manifest: &Manifest,
    entry: &CatalogEntry,
    spec: &SweepSpec,
    exe: &Path,
    options: &CampaignOptions,
) -> Result<SweepReport, SbpError> {
    let n = manifest.workers;
    let job_plan = plan(spec);
    let fps = plan_fingerprints(spec, &job_plan);
    let shard_paths: Vec<PathBuf> = (1..=n)
        .map(|k| shard_store_path(&manifest.out_dir, entry, k, n))
        .collect();
    let owned: Vec<usize> = (0..n)
        .map(|index| {
            let shard = Shard { index, count: n };
            fps.iter().filter(|fp| shard.owns(**fp)).count()
        })
        .collect();
    eprintln!(
        "campaign[{}]: {} — {} cells over {} worker(s)",
        entry.name,
        entry.artifact,
        fps.len(),
        n
    );

    let mut pending: Vec<usize> = (0..n).collect();
    let mut attempt = 0u32;
    loop {
        let mut procs = Vec::with_capacity(pending.len());
        for &shard in &pending {
            let child = spawn_worker(manifest, entry, exe, shard, n, attempt, options)?;
            procs.push(WorkerProc {
                shard,
                child,
                status: None,
            });
        }
        let failed = wait_with_progress(
            entry,
            &mut procs,
            &shard_paths,
            &owned,
            n,
            options.stall_timeout,
        )?;
        if failed.is_empty() {
            break;
        }
        if attempt >= manifest.retries {
            let shards: Vec<String> = failed.iter().map(|s| format!("{}/{n}", s + 1)).collect();
            return Err(SbpError::campaign(format!(
                "{}: shard(s) {} failed after {} attempt(s); the shard stores are \
                 resumable — re-run the campaign to execute only the missing jobs",
                entry.name,
                shards.join(", "),
                attempt + 1,
            )));
        }
        attempt += 1;
        eprintln!(
            "campaign[{}]: retrying {} crashed worker(s), attempt {}",
            entry.name,
            failed.len(),
            attempt + 1,
        );
        pending = failed;
    }

    // Every shard completed: merge into the canonical store, emit the
    // report, then garbage-collect stale cells out of all stores.
    let canonical = manifest.out_dir.join(entry.store);
    let report = merge_stores(spec, &shard_paths, Some(&canonical))?;
    print!("{}", report.to_table());
    let mut dropped = 0;
    for path in shard_paths.iter().chain(std::iter::once(&canonical)) {
        dropped += gc_store(path, std::slice::from_ref(spec))?;
    }
    eprintln!(
        "campaign[{}]: merged {} shard store(s) into {}; gc dropped {} stale cell(s)",
        entry.name,
        n,
        canonical.display(),
        dropped,
    );
    Ok(report)
}

fn spawn_worker(
    manifest: &Manifest,
    entry: &CatalogEntry,
    exe: &Path,
    shard: usize,
    n: usize,
    attempt: u32,
    options: &CampaignOptions,
) -> Result<Child, SbpError> {
    let store = shard_store_path(&manifest.out_dir, entry, shard + 1, n);
    let mut cmd = Command::new(exe);
    cmd.arg("--worker")
        .arg(entry.name)
        .arg("--shard")
        .arg(format!("{}/{n}", shard + 1))
        .arg("--store")
        .arg(&store)
        .stdout(Stdio::piped());
    if let Some(seeds) = manifest.seeds {
        cmd.arg("--seeds").arg(seeds.to_string());
    }
    if manifest.sampling {
        cmd.arg("--sampled");
        if manifest.gap_mode == sbp_sim::GapMode::Functional {
            cmd.arg("--gap-mode").arg("functional");
        }
    }
    if let Some(threads) = manifest.window_threads {
        cmd.arg("--window-threads").arg(threads.to_string());
    }
    if options.profile {
        cmd.arg("--profile");
    }
    if let Some(scale) = manifest.scale {
        cmd.env("SBP_SCALE", format!("{scale}"));
    }
    if attempt > 0 {
        // A retried shard must not re-inherit the fault-injection knobs,
        // or an injected crash/hang would burn the whole retry budget.
        cmd.env_remove(DIE_AFTER_ENV);
        cmd.env_remove(STALL_AFTER_ENV);
    }
    cmd.spawn().map_err(|e| {
        SbpError::campaign(format!(
            "cannot spawn worker for {} shard {}/{n}: {e}",
            entry.name,
            shard + 1
        ))
    })
}

/// Polls the worker processes to completion, streaming per-shard
/// `done/owned` progress (with an ETA estimated from the observed
/// completion rate) to stderr whenever a count changes. With a stall
/// timeout, a still-running worker whose store has not grown for that
/// long is killed (its kill-status lands it in the failed list, so the
/// ordinary retry path reruns exactly the missing jobs). Returns the
/// 0-based shard indices whose workers exited unsuccessfully.
fn wait_with_progress(
    entry: &CatalogEntry,
    procs: &mut [WorkerProc],
    shard_paths: &[PathBuf],
    owned: &[usize],
    n: usize,
    stall_timeout: Option<Duration>,
) -> Result<Vec<usize>, SbpError> {
    let start = Instant::now();
    let done0: usize = procs
        .iter()
        .map(|p| count_lines(&shard_paths[p.shard]))
        .sum();
    // Cells this pass is responsible for: only the running shards' —
    // on a retry pass the completed shards' cells are not remaining
    // work, and counting them would inflate the ETA.
    let owned_this_pass: usize = procs.iter().map(|p| owned[p.shard]).sum();
    let mut last_done: Vec<usize> = vec![usize::MAX; procs.len()];
    // Per-worker heartbeat: the last time its store-line count grew (or
    // the spawn time before the first append).
    let mut last_growth: Vec<Instant> = vec![start; procs.len()];
    loop {
        let mut all_exited = true;
        for p in procs.iter_mut() {
            if p.status.is_none() {
                match p.child.try_wait() {
                    Ok(Some(status)) => p.status = Some(status),
                    Ok(None) => all_exited = false,
                    Err(e) => {
                        return Err(SbpError::campaign(format!(
                            "cannot wait for {} shard {}/{n}: {e}",
                            entry.name,
                            p.shard + 1
                        )))
                    }
                }
            }
        }
        let done: Vec<usize> = procs
            .iter()
            .map(|p| count_lines(&shard_paths[p.shard]))
            .collect();
        if done != last_done {
            let total_done: usize = done.iter().sum();
            let eta = eta_label(start, done0, total_done, owned_this_pass);
            for ((i, p), d) in procs.iter().enumerate().zip(&done) {
                if last_done[i] != *d {
                    last_growth[i] = Instant::now();
                }
                eprintln!(
                    "campaign[{}] shard {}/{n}: {d}/{} cells{eta}",
                    entry.name,
                    p.shard + 1,
                    owned[p.shard],
                );
            }
            last_done = done;
        }
        if all_exited {
            break;
        }
        if let Some(timeout) = stall_timeout {
            for (i, p) in procs.iter_mut().enumerate() {
                let stalled = last_growth[i].elapsed();
                if p.status.is_none() && stalled > timeout {
                    eprintln!(
                        "campaign[{}] shard {}/{n}: stalled — no store growth for \
                         {:.1}s (timeout {:.1}s), killing worker",
                        entry.name,
                        p.shard + 1,
                        stalled.as_secs_f64(),
                        timeout.as_secs_f64(),
                    );
                    // A kill failure means the process already exited;
                    // the next try_wait round reaps it either way.
                    let _ = p.child.kill();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // Relay each worker's summary line (its whole stdout) to stderr and
    // collect the crashed shards.
    let mut failed = Vec::new();
    for p in procs.iter_mut() {
        let mut out = String::new();
        if let Some(stdout) = p.child.stdout.as_mut() {
            let _ = stdout.read_to_string(&mut out);
        }
        for line in out.lines() {
            eprintln!("campaign[{}] {line}", entry.name);
        }
        let status = p.status.expect("all workers reaped");
        if !status.success() {
            eprintln!(
                "campaign[{}] shard {}/{n}: worker crashed ({status})",
                entry.name,
                p.shard + 1,
            );
            failed.push(p.shard);
        }
    }
    Ok(failed)
}

/// Completed-cell count of a shard store (missing file = 0 — a shard
/// owning no jobs never creates its store).
fn count_lines(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(_) => 0,
    }
}

/// `", ETA 12s"` once at least one cell completed this run, `""` before.
fn eta_label(start: Instant, done0: usize, done: usize, total: usize) -> String {
    let fresh = done.saturating_sub(done0);
    let remaining = total.saturating_sub(done);
    if fresh == 0 || remaining == 0 {
        return String::new();
    }
    let secs = start.elapsed().as_secs_f64() * remaining as f64 / fresh as f64;
    format!(", ETA {}s", secs.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn shard_store_paths_are_distinct_per_worker() {
        let entry = Catalog::get("smoke_single").expect("registered");
        let a = shard_store_path(Path::new("/tmp/c"), entry, 1, 2);
        let b = shard_store_path(Path::new("/tmp/c"), entry, 2, 2);
        assert_ne!(a, b);
        assert_eq!(a, PathBuf::from("/tmp/c/smoke_single.shard1of2.jsonl"));
    }

    #[test]
    fn eta_appears_only_once_cells_complete() {
        let t = Instant::now();
        assert_eq!(eta_label(t, 3, 3, 10), "");
        assert_eq!(eta_label(t, 0, 10, 10), "");
        let label = eta_label(t, 2, 5, 10);
        assert!(label.starts_with(", ETA "), "{label}");
    }

    #[test]
    fn count_lines_tolerates_missing_files() {
        assert_eq!(count_lines(Path::new("/no/such/store.jsonl")), 0);
    }
}
