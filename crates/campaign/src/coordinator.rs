//! The coordinator half of the orchestrator: spawn N local worker
//! subprocesses per catalog entry, stream per-shard progress/ETA to
//! stderr, retry crashed shards, then merge + compact the stores and emit
//! the report.
//!
//! Layout on disk (all under the manifest's `out_dir`):
//!
//! * `<entry>.shard<k>of<n>.jsonl` — shard `k`'s store, written by its
//!   worker one line per completed job (resumable after any crash);
//! * `<entry>.jsonl` — the merged canonical store (plan order), written
//!   after every shard completes.
//!
//! The merged report printed to stdout is byte-identical to an in-process
//! unsharded run of the same manifest (`campaign --in-process`): the
//! report is a pure function of the plan-ordered results, and stored
//! floats round-trip exactly. Status/progress goes to stderr only, so
//! the two stdouts are directly comparable.

use std::collections::HashMap;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sbp_sweep::{
    gc_store, json, merge_stores, plan, plan_fingerprints, Shard, SweepSpec, VerdictTable,
};
use sbp_types::{SbpError, SweepReport};

use crate::catalog::CatalogEntry;
use crate::expect;
use crate::manifest::Manifest;
use crate::worker::{DIE_AFTER_ENV, STALL_AFTER_ENV};

/// Coordinator behavior knobs beyond the manifest (CLI flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignOptions {
    /// End every entry with its paper-expectation verdict table and fail
    /// the campaign when any expectation misses (`--check`).
    pub check: bool,
    /// Liveness timeout: a worker whose shard store has not grown for
    /// this long is killed and retried (`--stall-timeout`). Must exceed
    /// the slowest single job, or healthy workers get killed mid-cell.
    pub stall_timeout: Option<Duration>,
    /// Forward `--profile` to every worker: each shard prints its
    /// wall-time phase breakdown (warm / gaps / steady / event / exact
    /// measure) to stderr after its run.
    pub profile: bool,
    /// Record a structured telemetry timeline (`--telemetry`): workers
    /// write sidecar event streams and the coordinator merges them into
    /// `<out_dir>/telemetry.jsonl`. Also switched on by the manifest's
    /// `"telemetry": true` or by `--trace-out`.
    pub telemetry: bool,
    /// Additionally export the merged timeline as Chrome `trace_event`
    /// JSON to this file (`--trace-out FILE`) for chrome://tracing.
    pub trace_out: Option<PathBuf>,
}

/// Runs the whole campaign described by `manifest`, spawning workers from
/// the binary at `exe` (normally `std::env::current_exe()`).
///
/// With `options.check`, every entry's merged report is joined against
/// its catalog expectations and the verdict table printed after the
/// report; a manifest-level summary rolls all entries up, and any failed
/// expectation fails the campaign.
///
/// # Errors
///
/// Returns campaign errors when workers cannot be spawned or keep
/// crashing/stalling past the retry budget, store/validation errors from
/// the merge, and a campaign error naming the failing entries when a
/// `--check` run is out of tolerance. Shard stores survive every failure
/// mode — re-running the same campaign resumes from them.
pub fn run_campaign(
    manifest: &Manifest,
    exe: &Path,
    options: &CampaignOptions,
) -> Result<(), SbpError> {
    std::fs::create_dir_all(&manifest.out_dir).map_err(|e| {
        SbpError::campaign(format!(
            "cannot create out_dir {}: {e}",
            manifest.out_dir.display()
        ))
    })?;
    let telemetry_on = telemetry_enabled(manifest, options);
    if telemetry_on {
        sbp_telemetry::enable(
            "",
            0,
            Some(&manifest.out_dir.join("telemetry.coordinator.jsonl")),
        );
    }
    let mut options = options.clone();
    options.telemetry = telemetry_on;
    let specs = manifest.specs()?;
    let costs = load_entry_costs(manifest.sampling);
    let mut verdicts = Vec::new();
    let mut outcome = Ok(());
    for (idx, (entry, spec)) in specs.iter().enumerate() {
        sbp_telemetry::set_entry(entry.name);
        // Sum of the later entries' benchmark costs — the campaign-level
        // ETA remainder. `None` (no benchmark data for some entry) falls
        // back to the entry-local estimate.
        let tail_secs = costs.as_ref().and_then(|c| {
            specs[idx + 1..]
                .iter()
                .map(|(e, _)| c.get(e.name).copied())
                .sum::<Option<f64>>()
        });
        let entry_secs = costs.as_ref().and_then(|c| c.get(entry.name).copied());
        let entry_span = sbp_telemetry::control_span("entry", entry.name);
        let report = run_entry(manifest, entry, spec, exe, &options, entry_secs, tail_secs);
        drop(entry_span);
        match report {
            Ok(report) => {
                if options.check {
                    verdicts.push(check_and_print(entry, &report));
                }
            }
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    if telemetry_on {
        finalize_telemetry(manifest, options.trace_out.as_deref(), true)?;
    }
    outcome?;
    summarize_verdicts(&verdicts)
}

/// Whether this campaign records telemetry: the manifest's
/// `"telemetry": true`, `--telemetry`, or `--trace-out` (a trace export
/// needs the timeline).
pub fn telemetry_enabled(manifest: &Manifest, options: &CampaignOptions) -> bool {
    options.telemetry || manifest.telemetry || options.trace_out.is_some()
}

/// Merges the coordinator's collected control events with every worker
/// sidecar (in manifest entry order, shards ascending) into
/// `<out_dir>/telemetry.jsonl`, optionally exporting a Chrome trace,
/// then disables the sink. `include_sidecars` is false on the
/// in-process path, whose events all live in the sink collection.
///
/// # Errors
///
/// Returns a campaign error when the merged timeline or trace cannot be
/// written (sidecar reads are lenient — a worker that executed nothing
/// never creates its file).
pub fn finalize_telemetry(
    manifest: &Manifest,
    trace_out: Option<&Path>,
    include_sidecars: bool,
) -> Result<(), SbpError> {
    let mut streams = Vec::new();
    if include_sidecars {
        for name in &manifest.entries {
            if let Some(entry) = crate::catalog::Catalog::get(name) {
                for k in 1..=manifest.workers {
                    let path =
                        telemetry_sidecar_path(&manifest.out_dir, entry, k, manifest.workers);
                    streams.push(sbp_telemetry::read_events_lenient(&path));
                }
            }
        }
    }
    streams.push(sbp_telemetry::take_events());
    sbp_telemetry::disable();
    let timeline = sbp_telemetry::merge(streams, &manifest.entries);
    let merged_path = manifest.out_dir.join("telemetry.jsonl");
    sbp_telemetry::write_events(&merged_path, &timeline).map_err(SbpError::campaign)?;
    let validated = match sbp_telemetry::validate(&timeline) {
        Ok(stats) => format!(
            "{} events ({} spans, {} counters, {} gauges, {} marks)",
            stats.events, stats.spans, stats.counters, stats.gauges, stats.marks
        ),
        Err(e) => format!("{} events (VALIDATION FAILED: {e})", timeline.len()),
    };
    eprintln!(
        "campaign telemetry: {validated} -> {}",
        merged_path.display()
    );
    if let Some(trace_path) = trace_out {
        let trace = sbp_telemetry::to_chrome_trace(&timeline);
        std::fs::write(trace_path, trace).map_err(|e| {
            SbpError::campaign(format!("cannot write trace {}: {e}", trace_path.display()))
        })?;
        eprintln!(
            "campaign telemetry: Chrome trace -> {} (open in chrome://tracing)",
            trace_path.display()
        );
    }
    Ok(())
}

/// Per-entry wall-second costs from the tracked campaign benchmark
/// (`BENCH_8.json`, overridable via `SBP_BENCH_COSTS`): the `"sampled"`
/// stanza for sampling campaigns, `"exact"` otherwise. `None` (missing
/// file, malformed JSON, absent stanza) means "no cost model" and the
/// ETA falls back to the line-count-linear estimate.
fn load_entry_costs(sampling: bool) -> Option<HashMap<String, f64>> {
    let path = std::env::var("SBP_BENCH_COSTS").unwrap_or_else(|_| "BENCH_8.json".to_string());
    let text = std::fs::read_to_string(path).ok()?;
    let value = json::parse(&text).ok()?;
    let obj = value.as_object()?;
    let stanza = json::get(obj, if sampling { "sampled" } else { "exact" })
        .ok()?
        .as_object()?;
    let entries = json::get(stanza, "entries").ok()?.as_object()?;
    let mut costs = HashMap::new();
    for (name, _) in entries {
        costs.insert(name.clone(), json::get_f64(entries, name).ok()?);
    }
    Some(costs)
}

/// Joins one entry's report against its expectations and prints the
/// verdict table to stdout (below the report, so a `--check` run's
/// stdout is still deterministic and shard-invariant).
pub fn check_and_print(entry: &CatalogEntry, report: &SweepReport) -> VerdictTable {
    let table = expect::check_entry(entry, report);
    print!("{}", table.to_table());
    table
}

/// Prints the manifest-level conformance rollup and returns an error when
/// any entry failed. No-op for an empty list (a run without `--check`).
pub fn summarize_verdicts(verdicts: &[VerdictTable]) -> Result<(), SbpError> {
    if verdicts.is_empty() {
        return Ok(());
    }
    let (mut pass, mut fail, mut missing) = (0, 0, 0);
    let mut failed_entries = Vec::new();
    for table in verdicts {
        let (p, f, m) = table.counts();
        pass += p;
        fail += f;
        missing += m;
        if !table.passed() {
            failed_entries.push(table.entry.clone());
        }
    }
    let verdict = if failed_entries.is_empty() {
        "within tolerance of the paper"
    } else {
        "OUT OF TOLERANCE"
    };
    println!(
        "conformance: {verdict} — {} entr{}, {pass} pass, {fail} fail, {missing} missing",
        verdicts.len(),
        if verdicts.len() == 1 { "y" } else { "ies" },
    );
    if failed_entries.is_empty() {
        Ok(())
    } else {
        Err(SbpError::campaign(format!(
            "paper-expectation check failed for entr{}: {}",
            if failed_entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            failed_entries.join(", "),
        )))
    }
}

/// Shard store path for worker `k` (1-based) of `n`.
pub fn shard_store_path(out_dir: &Path, entry: &CatalogEntry, k: usize, n: usize) -> PathBuf {
    out_dir.join(format!("{}.shard{k}of{n}.jsonl", entry.name))
}

/// Sidecar telemetry stream for worker `k` (1-based) of `n` — next to
/// its shard store, so a crashed worker's events survive with it.
pub fn telemetry_sidecar_path(out_dir: &Path, entry: &CatalogEntry, k: usize, n: usize) -> PathBuf {
    out_dir.join(format!("{}.telemetry.shard{k}of{n}.jsonl", entry.name))
}

/// One worker subprocess being tracked by the progress loop.
struct WorkerProc {
    /// 0-based shard index.
    shard: usize,
    child: Child,
    /// Exit status once reaped.
    status: Option<std::process::ExitStatus>,
}

fn run_entry(
    manifest: &Manifest,
    entry: &CatalogEntry,
    spec: &SweepSpec,
    exe: &Path,
    options: &CampaignOptions,
    entry_secs: Option<f64>,
    tail_secs: Option<f64>,
) -> Result<SweepReport, SbpError> {
    let n = manifest.workers;
    let job_plan = plan(spec);
    let fps = plan_fingerprints(spec, &job_plan);
    let shard_paths: Vec<PathBuf> = (1..=n)
        .map(|k| shard_store_path(&manifest.out_dir, entry, k, n))
        .collect();
    let owned: Vec<usize> = (0..n)
        .map(|index| {
            let shard = Shard { index, count: n };
            fps.iter().filter(|fp| shard.owns(**fp)).count()
        })
        .collect();
    eprintln!(
        "campaign[{}]: {} — {} cells over {} worker(s)",
        entry.name,
        entry.artifact,
        fps.len(),
        n
    );
    // Benchmark-weighted ETA inputs: seconds per cell for this entry
    // plus the later entries' total cost (both `None` without
    // benchmark data, falling back to the entry-local linear estimate).
    let eta_costs = match (entry_secs, tail_secs) {
        (Some(secs), Some(tail)) if !fps.is_empty() => Some(EtaCosts {
            per_cell: secs / fps.len() as f64,
            tail_secs: tail,
        }),
        _ => None,
    };

    let mut pending: Vec<usize> = (0..n).collect();
    let mut attempt = 0u32;
    loop {
        let mut procs = Vec::with_capacity(pending.len());
        for &shard in &pending {
            let child = spawn_worker(manifest, entry, exe, shard, n, attempt, options)?;
            procs.push(WorkerProc {
                shard,
                child,
                status: None,
            });
        }
        let failed = wait_with_progress(
            entry,
            &mut procs,
            &shard_paths,
            &owned,
            n,
            options.stall_timeout,
            eta_costs,
        )?;
        if failed.is_empty() {
            break;
        }
        if attempt >= manifest.retries {
            let shards: Vec<String> = failed.iter().map(|s| format!("{}/{n}", s + 1)).collect();
            return Err(SbpError::campaign(format!(
                "{}: shard(s) {} failed after {} attempt(s); the shard stores are \
                 resumable — re-run the campaign to execute only the missing jobs",
                entry.name,
                shards.join(", "),
                attempt + 1,
            )));
        }
        attempt += 1;
        eprintln!(
            "campaign[{}]: retrying {} crashed worker(s), attempt {}",
            entry.name,
            failed.len(),
            attempt + 1,
        );
        sbp_telemetry::control_mark(
            "retry",
            &format!(
                "attempt {} for shard(s) {}",
                attempt + 1,
                failed
                    .iter()
                    .map(|s| format!("{}/{n}", s + 1))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
        pending = failed;
    }

    // Every shard completed: merge into the canonical store, emit the
    // report, then garbage-collect stale cells out of all stores.
    let canonical = manifest.out_dir.join(entry.store);
    let report = merge_stores(spec, &shard_paths, Some(&canonical))?;
    print!("{}", report.to_table());
    let mut dropped = 0;
    for path in shard_paths.iter().chain(std::iter::once(&canonical)) {
        dropped += gc_store(path, std::slice::from_ref(spec))?;
    }
    eprintln!(
        "campaign[{}]: merged {} shard store(s) into {}; gc dropped {} stale cell(s)",
        entry.name,
        n,
        canonical.display(),
        dropped,
    );
    sbp_telemetry::control_gauge("gc_dropped", dropped as f64, entry.name);
    Ok(report)
}

fn spawn_worker(
    manifest: &Manifest,
    entry: &CatalogEntry,
    exe: &Path,
    shard: usize,
    n: usize,
    attempt: u32,
    options: &CampaignOptions,
) -> Result<Child, SbpError> {
    let store = shard_store_path(&manifest.out_dir, entry, shard + 1, n);
    let mut cmd = Command::new(exe);
    cmd.arg("--worker")
        .arg(entry.name)
        .arg("--shard")
        .arg(format!("{}/{n}", shard + 1))
        .arg("--store")
        .arg(&store)
        .stdout(Stdio::piped());
    if let Some(seeds) = manifest.seeds {
        cmd.arg("--seeds").arg(seeds.to_string());
    }
    if manifest.sampling {
        cmd.arg("--sampled");
        if manifest.gap_mode == sbp_sim::GapMode::Functional {
            cmd.arg("--gap-mode").arg("functional");
        }
    }
    if let Some(threads) = manifest.window_threads {
        cmd.arg("--window-threads").arg(threads.to_string());
    }
    if options.profile {
        cmd.arg("--profile");
    }
    if options.telemetry {
        cmd.arg("--telemetry").arg(telemetry_sidecar_path(
            &manifest.out_dir,
            entry,
            shard + 1,
            n,
        ));
    }
    if let Some(scale) = manifest.scale {
        cmd.env("SBP_SCALE", format!("{scale}"));
    }
    if attempt > 0 {
        // A retried shard must not re-inherit the fault-injection knobs,
        // or an injected crash/hang would burn the whole retry budget.
        cmd.env_remove(DIE_AFTER_ENV);
        cmd.env_remove(STALL_AFTER_ENV);
    }
    cmd.spawn().map_err(|e| {
        SbpError::campaign(format!(
            "cannot spawn worker for {} shard {}/{n}: {e}",
            entry.name,
            shard + 1
        ))
    })
}

/// Benchmark-derived ETA inputs for one entry (see `load_entry_costs`).
#[derive(Debug, Clone, Copy)]
struct EtaCosts {
    /// Benchmark seconds per cell of this entry.
    per_cell: f64,
    /// Benchmark seconds for every entry after this one.
    tail_secs: f64,
}

/// Polls the worker processes to completion, streaming per-shard
/// `done/owned` progress — with each worker's heartbeat age (seconds
/// since its store last grew) and an ETA estimated from the observed
/// completion rate — to stderr whenever a count changes; a quiet worker
/// re-prints its line every few seconds so a wedging shard is visible
/// before any stall-timeout fires. With benchmark costs, the label
/// adds a campaign-level remainder weighted by the later entries' cost
/// (the per-entry cost model the linear estimate lacks). With a stall
/// timeout, a still-running worker whose store has not grown for that
/// long is killed (its kill-status lands it in the failed list, so the
/// ordinary retry path reruns exactly the missing jobs). Returns the
/// 0-based shard indices whose workers exited unsuccessfully.
#[allow(clippy::too_many_arguments)]
fn wait_with_progress(
    entry: &CatalogEntry,
    procs: &mut [WorkerProc],
    shard_paths: &[PathBuf],
    owned: &[usize],
    n: usize,
    stall_timeout: Option<Duration>,
    eta_costs: Option<EtaCosts>,
) -> Result<Vec<usize>, SbpError> {
    let start = Instant::now();
    let done0: usize = procs
        .iter()
        .map(|p| count_lines(&shard_paths[p.shard]))
        .sum();
    // Cells this pass is responsible for: only the running shards' —
    // on a retry pass the completed shards' cells are not remaining
    // work, and counting them would inflate the ETA.
    let owned_this_pass: usize = procs.iter().map(|p| owned[p.shard]).sum();
    let mut last_done: Vec<usize> = vec![usize::MAX; procs.len()];
    // Per-worker heartbeat: the last time its store-line count grew (or
    // the spawn time before the first append).
    let mut last_growth: Vec<Instant> = vec![start; procs.len()];
    // Last time a quiet (no-growth) worker's line was echoed anyway.
    let mut last_echo: Vec<Instant> = vec![start; procs.len()];
    loop {
        let mut all_exited = true;
        for p in procs.iter_mut() {
            if p.status.is_none() {
                match p.child.try_wait() {
                    Ok(Some(status)) => p.status = Some(status),
                    Ok(None) => all_exited = false,
                    Err(e) => {
                        return Err(SbpError::campaign(format!(
                            "cannot wait for {} shard {}/{n}: {e}",
                            entry.name,
                            p.shard + 1
                        )))
                    }
                }
            }
        }
        let done: Vec<usize> = procs
            .iter()
            .map(|p| count_lines(&shard_paths[p.shard]))
            .collect();
        if done != last_done {
            let total_done: usize = done.iter().sum();
            let eta = eta_label(start, done0, total_done, owned_this_pass, eta_costs);
            for ((i, p), d) in procs.iter().enumerate().zip(&done) {
                if last_done[i] != *d {
                    last_growth[i] = Instant::now();
                }
                last_echo[i] = Instant::now();
                eprintln!(
                    "campaign[{}] shard {}/{n}: {d}/{} cells, hb {:.1}s{eta}",
                    entry.name,
                    p.shard + 1,
                    owned[p.shard],
                    last_growth[i].elapsed().as_secs_f64(),
                );
            }
            last_done = done;
        }
        if all_exited {
            break;
        }
        // A worker whose store is not growing prints nothing through the
        // change-driven path above; echo its heartbeat age periodically
        // so a wedging shard is visible before any stall-kill fires.
        const QUIET_ECHO: Duration = Duration::from_secs(5);
        for (i, p) in procs.iter().enumerate() {
            let age = last_growth[i].elapsed();
            if p.status.is_none() && age >= QUIET_ECHO && last_echo[i].elapsed() >= QUIET_ECHO {
                last_echo[i] = Instant::now();
                eprintln!(
                    "campaign[{}] shard {}/{n}: {}/{} cells, hb {:.1}s — no store growth",
                    entry.name,
                    p.shard + 1,
                    last_done.get(i).copied().unwrap_or(0),
                    owned[p.shard],
                    age.as_secs_f64(),
                );
                sbp_telemetry::control_gauge(
                    "heartbeat_age_s",
                    age.as_secs_f64(),
                    &format!("shard {}/{n}", p.shard + 1),
                );
            }
        }
        if let Some(timeout) = stall_timeout {
            for (i, p) in procs.iter_mut().enumerate() {
                let stalled = last_growth[i].elapsed();
                if p.status.is_none() && stalled > timeout {
                    eprintln!(
                        "campaign[{}] shard {}/{n}: stalled — no store growth for \
                         {:.1}s (timeout {:.1}s), killing worker",
                        entry.name,
                        p.shard + 1,
                        stalled.as_secs_f64(),
                        timeout.as_secs_f64(),
                    );
                    sbp_telemetry::control_mark(
                        "stall_kill",
                        &format!(
                            "shard {}/{n} after {:.1}s without store growth",
                            p.shard + 1,
                            stalled.as_secs_f64()
                        ),
                    );
                    // A kill failure means the process already exited;
                    // the next try_wait round reaps it either way.
                    let _ = p.child.kill();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // Relay each worker's summary line (its whole stdout) to stderr and
    // collect the crashed shards.
    let mut failed = Vec::new();
    for p in procs.iter_mut() {
        let mut out = String::new();
        if let Some(stdout) = p.child.stdout.as_mut() {
            let _ = stdout.read_to_string(&mut out);
        }
        for line in out.lines() {
            eprintln!("campaign[{}] {line}", entry.name);
        }
        let status = p.status.expect("all workers reaped");
        if !status.success() {
            eprintln!(
                "campaign[{}] shard {}/{n}: worker crashed ({status})",
                entry.name,
                p.shard + 1,
            );
            failed.push(p.shard);
        }
    }
    Ok(failed)
}

/// Completed-cell count of a shard store (missing file = 0 — a shard
/// owning no jobs never creates its store).
fn count_lines(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(_) => 0,
    }
}

/// `", ETA 12s"` once at least one cell completed this run, `""` before.
///
/// With benchmark costs ([`EtaCosts`]), the label adds a campaign-level
/// remainder: the observed per-cell pace calibrates the later entries'
/// benchmark seconds (this machine vs. the benchmark machine), so
/// `campaign 240s` means "this entry's remainder plus the cost-weighted
/// tail of the catalog at the current pace".
fn eta_label(
    start: Instant,
    done0: usize,
    done: usize,
    total: usize,
    costs: Option<EtaCosts>,
) -> String {
    let fresh = done.saturating_sub(done0);
    let remaining = total.saturating_sub(done);
    if fresh == 0 || remaining == 0 {
        return String::new();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let entry_secs = elapsed * remaining as f64 / fresh as f64;
    match costs {
        Some(c) if c.per_cell > 0.0 => {
            // How much faster/slower this machine runs a cell than the
            // benchmark that produced the per-entry costs.
            let calibration = elapsed / (fresh as f64 * c.per_cell);
            let campaign_secs = entry_secs + c.tail_secs * calibration;
            format!(
                ", ETA {}s (campaign {}s)",
                entry_secs.ceil() as u64,
                campaign_secs.ceil() as u64
            )
        }
        _ => format!(", ETA {}s", entry_secs.ceil() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn shard_store_paths_are_distinct_per_worker() {
        let entry = Catalog::get("smoke_single").expect("registered");
        let a = shard_store_path(Path::new("/tmp/c"), entry, 1, 2);
        let b = shard_store_path(Path::new("/tmp/c"), entry, 2, 2);
        assert_ne!(a, b);
        assert_eq!(a, PathBuf::from("/tmp/c/smoke_single.shard1of2.jsonl"));
    }

    #[test]
    fn eta_appears_only_once_cells_complete() {
        let t = Instant::now();
        assert_eq!(eta_label(t, 3, 3, 10, None), "");
        assert_eq!(eta_label(t, 0, 10, 10, None), "");
        let label = eta_label(t, 2, 5, 10, None);
        assert!(label.starts_with(", ETA "), "{label}");
        assert!(!label.contains("campaign"), "{label}");
        let costs = Some(EtaCosts {
            per_cell: 0.5,
            tail_secs: 120.0,
        });
        let weighted = eta_label(t, 2, 5, 10, costs);
        assert!(weighted.contains("(campaign "), "{weighted}");
        // Degenerate benchmark (zero per-cell cost) falls back to the
        // entry-only label instead of dividing by zero.
        let degenerate = eta_label(
            t,
            2,
            5,
            10,
            Some(EtaCosts {
                per_cell: 0.0,
                tail_secs: 120.0,
            }),
        );
        assert!(!degenerate.contains("campaign"), "{degenerate}");
    }

    #[test]
    fn count_lines_tolerates_missing_files() {
        assert_eq!(count_lines(Path::new("/no/such/store.jsonl")), 0);
    }
}
