//! Table 4: privilege switches per million cycles under Noisy-XOR-BP-12M,
//! compared to the (much rarer) timer context switches.
//!
//! Paper: case1 ≈ 4.9 ... case6 ≈ 1.6 privilege switches per Mcycle;
//! context switches ≈ 0.08 per Mcycle — privilege changes dominate the
//! rekey rate, so the timer interval barely matters for XOR-BP.

use sbp_bench::{header, parallel_map};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{run_single_case, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_single;

const PAPER: [f64; 12] = [4.9, 7.0, 1.9, 2.0, 1.7, 1.6, 1.7, 2.0, 1.8, 2.7, 3.5, 1.9];

fn main() {
    header(
        "Table 4",
        "Privilege switches per million cycles (Noisy-XOR-BP-12M)",
    );
    let cases = cases_single();
    let budget = WorkBudget::single_default();
    let stats = parallel_map(cases.len(), |c| {
        run_single_case(
            &cases[c],
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            SwitchInterval::M12,
            budget,
            0x7ab4_0000 + c as u64,
        )
        .expect("run")
    });
    println!(
        "{:<8} {:>18} {:>10} {:>18}",
        "case", "priv/Mcycle", "paper", "ctx-sw/Mcycle"
    );
    for (c, case) in cases.iter().enumerate() {
        println!(
            "{:<8} {:>18.2} {:>10.1} {:>18.3}",
            case.id,
            stats[c].priv_switches_per_mcycle(),
            PAPER[c],
            stats[c].ctx_switches_per_mcycle(),
        );
    }
    println!("(paper: context switches ≈ 0.08/Mcycle — privilege switches dominate)");
}
