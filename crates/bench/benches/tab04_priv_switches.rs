//! Table 4: privilege switches per million cycles under Noisy-XOR-BP-12M,
//! compared to the (much rarer) timer context switches.
//!
//! Paper: case1 ≈ 4.9 ... case6 ≈ 1.6 privilege switches per Mcycle;
//! context switches ≈ 0.08 per Mcycle — privilege changes dominate the
//! rekey rate, so the timer interval barely matters for XOR-BP.

use sbp_bench::{catalog_entry, header};

const PAPER: [f64; 12] = [4.9, 7.0, 1.9, 2.0, 1.7, 1.6, 1.7, 2.0, 1.8, 2.7, 3.5, 1.9];

fn main() {
    header(
        "Table 4",
        "Privilege switches per million cycles (Noisy-XOR-BP-12M)",
    );
    let report = catalog_entry("tab04").spec().run().expect("sweep");
    println!(
        "{:<8} {:>18} {:>10} {:>18}",
        "case", "priv/Mcycle", "paper", "ctx-sw/Mcycle"
    );
    for (c, case) in report.case_ids.iter().enumerate() {
        let rec = report
            .records_for("Noisy-XOR-BP")
            .find(|r| &r.case_id == case)
            .expect("record per case");
        println!(
            "{:<8} {:>18.2} {:>10.1} {:>18.3}",
            case,
            rec.stats.priv_switches_per_mcycle(),
            PAPER[c],
            rec.stats.ctx_switches_per_mcycle(),
        );
    }
    println!("(paper: context switches ≈ 0.08/Mcycle — privilege switches dominate)");
}
