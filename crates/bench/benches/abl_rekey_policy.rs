//! Ablation: rekey triggers. The paper rekeys on context switches *and*
//! privilege switches; Table 4 shows privilege switches are 20–90× more
//! frequent, so they dominate the overhead. Rekeying on context switches
//! only (insecure across privilege levels!) isolates that cost.

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::{Mechanism, XorConfig};
use sbp_predictors::PredictorKind;
use sbp_sim::{single_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_single;

fn main() {
    header(
        "Ablation",
        "rekey on ctx+priv switches (paper) vs ctx switches only",
    );
    let policies = [
        ("ctx+priv (paper)", Mechanism::noisy_xor_bp()),
        (
            "ctx only (insecure)",
            Mechanism::Xor(XorConfig {
                rekey_on_privilege: false,
                ..XorConfig::full()
            }),
        ),
    ];
    let cases = cases_single();
    let budget = WorkBudget::single_default();
    for (label, mech) in policies {
        let overheads = parallel_map(cases.len(), |c| {
            single_overhead(
                &cases[c],
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                mech,
                SwitchInterval::M8,
                budget,
                0xab2e_0000 + c as u64,
            )
            .expect("run")
        });
        println!("{label:<22} avg overhead {}", pct(mean(&overheads)));
    }
    println!("expectation: most of Noisy-XOR-BP's (small) cost comes from privilege rekeys");
}
