//! Table 5: area and timing overhead of Noisy-XOR-BP at RTL (TSMC 28 nm in
//! the paper; analytical gate/SRAM model here — see `sbp-hwcost`).

use sbp_bench::header;
use sbp_hwcost::{table5_btb_rows, table5_pht_rows};

fn main() {
    header("Table 5", "Area and timing overhead of Noisy-XOR-BP");
    println!("-- BTB (2-way, entries per way) --");
    for row in table5_btb_rows() {
        println!("{}", row.format());
    }
    println!("-- PHT (TAGE tagged tables, entries per table) --");
    for row in table5_pht_rows() {
        println!("{}", row.format());
    }
    println!("(model constants calibrated on the BTB 2w256 / PHT 2048 rows;");
    println!(" trends — timing grows, area shrinks with size — are model output)");
}
