//! Figure 10: performance cost of CF / PF / Noisy-XOR-BP on four
//! predictors (Gshare, Tournament, LTAGE, TAGE-SC-L), SMT-2.
//!
//! Paper results: (1) a non-trivial range (some cases > 20 %), average a
//! few percent; (2) Noisy-XOR-BP generally below both flush mechanisms
//! (26–37 % lower than Complete Flush); (3) more accurate predictors show
//! more impact (avg ≈ 2.3 % on Gshare → ≈ 4.9 % on TAGE-SC-L).

use sbp_bench::{catalog_entry, header, pct};
use sbp_predictors::PredictorKind;

fn main() {
    header(
        "Figure 10",
        "CF / PF / Noisy-XOR-BP across predictors, SMT-2",
    );
    let report = catalog_entry("fig10").spec().run().expect("sweep");
    print!("{}", report.to_table());

    println!("--- averages ---");
    println!(
        "{:<12} {:>10} {:>10} {:>14}",
        "predictor", "CF", "PF", "Noisy-XOR-BP"
    );
    let mut noisy_avgs = Vec::new();
    for kind in PredictorKind::ALL {
        let avg = |series: &str| {
            report
                .series_mean(series, kind.label(), "8M")
                .expect("series present")
        };
        let (cf, pf, noisy) = (avg("CF"), avg("PF"), avg("Noisy-XOR-BP"));
        noisy_avgs.push(noisy);
        println!(
            "{:<12} {:>10} {:>10} {:>14}",
            kind.label(),
            pct(cf),
            pct(pf),
            pct(noisy)
        );
        if cf > 0.0 {
            println!(
                "   Noisy-XOR-BP vs CF: {:.0}% lower (paper: 26–37% lower)",
                (1.0 - noisy / cf) * 100.0
            );
        }
    }
    println!(
        "accuracy trend (paper: 2.3% on Gshare → 4.9% on TAGE_SC_L): {} → {}",
        pct(noisy_avgs[0]),
        pct(noisy_avgs[3])
    );
}
