//! Figure 10: performance cost of CF / PF / Noisy-XOR-BP on four
//! predictors (Gshare, Tournament, LTAGE, TAGE-SC-L), SMT-2.
//!
//! Paper results: (1) a non-trivial range (some cases > 20 %), average a
//! few percent; (2) Noisy-XOR-BP generally below both flush mechanisms
//! (26–37 % lower than Complete Flush); (3) more accurate predictors show
//! more impact (avg ≈ 2.3 % on Gshare → ≈ 4.9 % on TAGE-SC-L).

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{smt_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_smt2;

fn main() {
    header(
        "Figure 10",
        "CF / PF / Noisy-XOR-BP across predictors, SMT-2",
    );
    let budget = WorkBudget::smt_default();
    let pairs = cases_smt2();
    let mechs = [
        ("CF", Mechanism::CompleteFlush),
        ("PF", Mechanism::PreciseFlush),
        ("Noisy-XOR-BP", Mechanism::noisy_xor_bp()),
    ];
    let kinds = PredictorKind::ALL;
    // jobs: kind-major, mech, case.
    let jobs: Vec<(usize, usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..mechs.len()).flat_map(move |m| (0..pairs.len()).map(move |c| (k, m, c))))
        .collect();
    let overheads = parallel_map(jobs.len(), |j| {
        let (k, m, c) = jobs[j];
        smt_overhead(
            &[pairs[c].target, pairs[c].background],
            CoreConfig::gem5(),
            kinds[k],
            mechs[m].1,
            SwitchInterval::M8,
            budget,
            0xf16a_0000 + c as u64,
        )
        .expect("run")
    });
    let at = |k: usize, m: usize, c: usize| overheads[(k * mechs.len() + m) * pairs.len() + c];

    for (k, kind) in kinds.iter().enumerate() {
        println!("--- {kind} ---");
        print!("{:<8}", "case");
        for (label, _) in &mechs {
            print!(" {:>16}", label);
        }
        println!();
        for (c, case) in pairs.iter().enumerate() {
            print!("{:<8}", case.id);
            for m in 0..mechs.len() {
                print!(" {:>16}", pct(at(k, m, c)));
            }
            println!();
        }
    }

    println!("--- averages ---");
    println!(
        "{:<12} {:>10} {:>10} {:>14}",
        "predictor", "CF", "PF", "Noisy-XOR-BP"
    );
    let mut noisy_avgs = Vec::new();
    for (k, kind) in kinds.iter().enumerate() {
        let avg = |m: usize| mean(&(0..pairs.len()).map(|c| at(k, m, c)).collect::<Vec<_>>());
        let (cf, pf, noisy) = (avg(0), avg(1), avg(2));
        noisy_avgs.push(noisy);
        println!(
            "{:<12} {:>10} {:>10} {:>14}",
            kind.label(),
            pct(cf),
            pct(pf),
            pct(noisy)
        );
        if cf > 0.0 {
            println!(
                "   Noisy-XOR-BP vs CF: {:.0}% lower (paper: 26–37% lower)",
                (1.0 - noisy / cf) * 100.0
            );
        }
    }
    println!(
        "accuracy trend (paper: 2.3% on Gshare → 4.9% on TAGE_SC_L): {} → {}",
        pct(noisy_avgs[0]),
        pct(noisy_avgs[3])
    );
}
