//! Figure 8: performance overhead of XOR-PHT (Enhanced) and Noisy-XOR-PHT
//! on the single-threaded core.
//!
//! Paper result: average < 1.1 %, decreasing with the switch interval;
//! worst case is case 1 (gcc+calculix: high conditional ratio, accurate
//! PHT), case 7 (gromacs+GemsFDTD) barely affected.

use sbp_bench::{catalog_entry, header, run_single_figure};

fn main() {
    header(
        "Figure 8",
        "XOR-PHT and Noisy-XOR-PHT overhead, single-threaded core",
    );
    let avgs = run_single_figure(catalog_entry("fig08"));
    println!("paper: averages < 1.1 %; case1 is the worst; case7 barely affected");
    let _ = avgs;
}
