//! Figure 7: performance overhead of XOR-BTB and Noisy-XOR-BTB on the
//! single-threaded (FPGA-class) core, per case and switch interval.
//!
//! Paper result: average loss < 0.2 %; worst case ≈ 1 % (case 6,
//! gobmk+libquantum, many useful residual BTB entries); case 2
//! (milc+povray) slightly *negative* — losing the BTB overturns wrong
//! taken-predictions via fall-through.

use sbp_bench::{catalog_entry, header, run_single_figure};

fn main() {
    header(
        "Figure 7",
        "XOR-BTB and Noisy-XOR-BTB overhead, single-threaded core",
    );
    let avgs = run_single_figure(catalog_entry("fig07"));
    println!("paper: averages < 0.2 %; max ≈ 1.0 % (case6); case2 can be negative");
    println!(
        "check: Noisy adds no extra loss over XOR ({} vs {})",
        sbp_bench::pct(avgs[3..6].iter().sum::<f64>() / 3.0),
        sbp_bench::pct(avgs[0..3].iter().sum::<f64>() / 3.0)
    );
}
