//! §5.5(3): PoC attack & defense experiment — training accuracy over
//! 10 000 iterations.
//!
//! Paper: baseline training accuracy 96.5 % (BTB) / 97.2 % (PHT); with
//! XOR-based isolation both drop below 1 % (residual apparent successes
//! are measurement noise of the Flush+Reload channel, which our noise
//! model reproduces).

use sbp_attack::{BranchScope, SpectreV2};
use sbp_bench::header;
use sbp_core::Mechanism;

fn main() {
    header("Section 5.5(3)", "PoC training accuracy, 10 000 iterations");
    let iterations = ((10_000.0 * sbp_sim::scale()) as u64).max(1000);

    let btb_base = SpectreV2::new(Mechanism::Baseline, false).run(iterations, 55);
    let btb_xor = SpectreV2::new(Mechanism::xor_bp(), false).run(iterations, 55);
    println!(
        "BTB training accuracy: baseline {:.1}% (paper 96.5%) | XOR isolation {:.2}% (paper <1%)",
        btb_base.success_rate * 100.0,
        btb_xor.success_rate * 100.0
    );

    // The PHT criterion: 100 training attempts per iteration; success =
    // the victim follows the trained direction more than 90 times.
    let pht = |mech: Mechanism| {
        let scope = BranchScope::new(mech, false);
        let mut successes = 0u64;
        let iters = iterations / 100;
        for i in 0..iters {
            let out = scope.run(100, 5500 + i);
            if out.success_rate * 100.0 > 90.0 {
                successes += 1;
            }
        }
        successes as f64 / iters as f64
    };
    println!(
        "PHT training accuracy: baseline {:.1}% (paper 97.2%) | XOR isolation {:.2}% (paper <1%)",
        pht(Mechanism::Baseline) * 100.0,
        pht(Mechanism::enhanced_xor_pht()) * 100.0
    );
}
