//! §5.5(3): PoC attack & defense experiment — training accuracy over
//! 10 000 iterations.
//!
//! Paper: baseline training accuracy 96.5 % (BTB) / 97.2 % (PHT); with
//! XOR-based isolation both drop below 1 % (residual apparent successes
//! are measurement noise of the Flush+Reload channel, which our noise
//! model reproduces).
//!
//! Both halves are declarative attack sweeps. The PHT criterion — 100
//! training attempts per round, success when the victim follows the
//! trained direction more than 90 times — maps onto the engine's seed
//! axis: each seed replica is one 100-trial round, and the success
//! fraction is counted over the replica records.

use sbp_bench::{catalog_entry, header};
use sbp_core::Mechanism;
use sbp_types::SweepReport;

fn main() {
    header("Section 5.5(3)", "PoC training accuracy, 10 000 iterations");

    // The catalog entry's master seed stands in for the old harness's
    // fixed seed: one representative Flush+Reload noise stream, shared by
    // both mechanism columns (the engine seeds per campaign cell, not per
    // series).
    let btb = catalog_entry("sec55_btb")
        .spec()
        .run()
        .expect("BTB attack sweep");
    let rate = |report: &SweepReport, mech: Mechanism| {
        report
            .cell(mech.label(), "Gshare", "single-core", "SpectreV2")
            .expect("cell present")
            .mean
    };
    println!(
        "BTB training accuracy: baseline {:.1}% (paper 96.5%) | XOR isolation {:.2}% (paper <1%)",
        rate(&btb, Mechanism::Baseline) * 100.0,
        rate(&btb, Mechanism::xor_bp()) * 100.0
    );

    // The PHT criterion: 100 training attempts per round; success = the
    // victim follows the trained direction more than 90 times. One seed
    // replica per round (the entry's seed axis).
    let pht_spec = catalog_entry("sec55_pht").spec();
    let rounds = pht_spec.seeds;
    let pht = pht_spec.run().expect("PHT attack sweep");
    let round_success = |mech: Mechanism| {
        let successes = pht
            .records_for(mech.label())
            .filter(|r| r.attack.as_ref().expect("attack record").success_rate * 100.0 > 90.0)
            .count();
        successes as f64 / rounds as f64
    };
    println!(
        "PHT training accuracy: baseline {:.1}% (paper 97.2%) | XOR isolation {:.2}% (paper <1%)",
        round_success(Mechanism::Baseline) * 100.0,
        round_success(Mechanism::enhanced_xor_pht()) * 100.0
    );
}
