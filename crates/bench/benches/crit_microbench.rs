//! Criterion microbenchmarks: per-branch cost of each predictor with and
//! without the Noisy-XOR overlay. The software analogue of Table 5's
//! claim: the encode/decode path adds only marginal per-access work.

use criterion::{criterion_group, criterion_main, Criterion};

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_sim::{execute_branch, CoreConfig};
use sbp_trace::{TraceEvent, TraceGenerator, WorkloadProfile};
use sbp_types::{PredictionStats, ThreadId};

fn bench_predictors(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("gcc").expect("profile");
    let records: Vec<_> = TraceGenerator::new(&profile, 0x1000_0000, 99)
        .filter_map(|e| match e {
            TraceEvent::Branch(r) => Some(r),
            TraceEvent::PrivilegeSwitch(_) => None,
        })
        .take(10_000)
        .collect();
    let cfg = CoreConfig::fpga();

    let mut group = c.benchmark_group("per_branch");
    for kind in [PredictorKind::Gshare, PredictorKind::TageScL] {
        for (mech_label, mech) in [
            ("baseline", Mechanism::Baseline),
            ("noisy_xor", Mechanism::noisy_xor_bp()),
        ] {
            group.bench_function(format!("{}/{mech_label}", kind.label()), |b| {
                let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(kind, mech));
                let mut stats = PredictionStats::new();
                let mut i = 0;
                b.iter(|| {
                    let rec = &records[i % records.len()];
                    i += 1;
                    std::hint::black_box(execute_branch(
                        &mut fe,
                        &cfg,
                        ThreadId::new(0),
                        rec,
                        &mut stats,
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_predictors
}
criterion_main!(benches);
