//! Ablation: the reversible codec (paper §5.4 — "adding shifting and/or
//! scrambling in the process, or using small lookup tables are all
//! possible options").
//!
//! Expectation: the *performance* overhead is identical for every codec —
//! residual state is equally unreadable after a rekey — so the codec can
//! be chosen purely on hardware-cost / strength grounds.

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::{Mechanism, XorConfig};
use sbp_predictors::PredictorKind;
use sbp_sim::{single_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_single;
use sbp_types::Codec;

fn main() {
    header(
        "Ablation",
        "content codec: XOR vs shift-scramble vs 4-bit LUT",
    );
    let codecs = [
        ("XOR", Codec::Xor),
        ("ShiftScramble", Codec::ShiftScramble),
        ("LUT", Codec::Lut),
    ];
    let cases = cases_single();
    let budget = WorkBudget::single_default();
    for (label, codec) in codecs {
        let mech = Mechanism::Xor(XorConfig {
            codec,
            ..XorConfig::full()
        });
        let overheads = parallel_map(cases.len(), |c| {
            single_overhead(
                &cases[c],
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                mech,
                SwitchInterval::M8,
                budget,
                0xab1e_0000 + c as u64,
            )
            .expect("run")
        });
        println!(
            "Noisy-XOR-BP with {label:<14} avg overhead {}",
            pct(mean(&overheads))
        );
    }
    println!("expectation: all three within noise of each other");
}
