//! Figure 2: performance overhead of flushing branch history on an SMT
//! core (SMT-2 and SMT-4).
//!
//! Paper result: a significant increase over the single-threaded core
//! (≈6–8 % on SMT-2, more on SMT-4), because one thread's flush destroys
//! the other threads' state.

use sbp_bench::{header, pct};
use sbp_core::Mechanism;
use sbp_sweep::{CaseSpec, SweepSpec};
use sbp_trace::cases_smt4;

fn main() {
    header("Figure 2", "Complete Flush overhead on SMT-2 / SMT-4");
    let smt2 = SweepSpec::smt("fig02: CF SMT-2")
        .with_mechanisms(vec![Mechanism::CompleteFlush])
        .with_master_seed(0xf162_0000)
        .run()
        .expect("sweep");
    print!("{}", smt2.to_table());

    let quads: Vec<CaseSpec> = cases_smt4()
        .iter()
        .enumerate()
        .map(|(i, q)| CaseSpec::new(&format!("quad{}", i + 1), q))
        .collect();
    let smt4 = SweepSpec::smt("fig02: CF SMT-4")
        .with_cases(quads)
        .with_mechanisms(vec![Mechanism::CompleteFlush])
        .with_master_seed(0xf164_0000)
        .run()
        .expect("sweep");
    print!("{}", smt4.to_table());

    println!(
        "average SMT-2: {}   (paper: ≈6–8 %)",
        pct(smt2.series_mean("CF", "Tournament", "8M").expect("series"))
    );
    println!(
        "average SMT-4: {}   (paper: ≈10–13 %, worse than SMT-2)",
        pct(smt4.series_mean("CF", "Tournament", "8M").expect("series"))
    );
}
