//! Figure 2: performance overhead of flushing branch history on an SMT
//! core (SMT-2 and SMT-4).
//!
//! Paper result: a significant increase over the single-threaded core
//! (≈6–8 % on SMT-2, more on SMT-4), because one thread's flush destroys
//! the other threads' state.

use sbp_bench::{catalog_entry, header, pct};

fn main() {
    header("Figure 2", "Complete Flush overhead on SMT-2 / SMT-4");
    let smt2 = catalog_entry("fig02_smt2").spec().run().expect("sweep");
    print!("{}", smt2.to_table());

    let smt4 = catalog_entry("fig02_smt4").spec().run().expect("sweep");
    print!("{}", smt4.to_table());

    println!(
        "average SMT-2: {}   (paper: ≈6–8 %)",
        pct(smt2.series_mean("CF", "Tournament", "8M").expect("series"))
    );
    println!(
        "average SMT-4: {}   (paper: ≈10–13 %, worse than SMT-2)",
        pct(smt4.series_mean("CF", "Tournament", "8M").expect("series"))
    );
}
