//! Figure 2: performance overhead of flushing branch history on an SMT
//! core (SMT-2 and SMT-4).
//!
//! Paper result: a significant increase over the single-threaded core
//! (≈6–8 % on SMT-2, more on SMT-4), because one thread's flush destroys
//! the other threads' state.

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{smt_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::{cases_smt2, cases_smt4};

fn main() {
    header("Figure 2", "Complete Flush overhead on SMT-2 / SMT-4");
    let budget = WorkBudget::smt_default();
    let pairs = cases_smt2();
    let smt2 = parallel_map(pairs.len(), |i| {
        let c = pairs[i];
        smt_overhead(
            &[c.target, c.background],
            CoreConfig::gem5(),
            PredictorKind::Tournament,
            Mechanism::CompleteFlush,
            SwitchInterval::M8,
            budget,
            0xf162_0000 + i as u64,
        )
        .expect("run")
    });
    let quads = cases_smt4();
    let smt4 = parallel_map(quads.len(), |i| {
        let ws: Vec<&str> = quads[i].to_vec();
        smt_overhead(
            &ws,
            CoreConfig::gem5(),
            PredictorKind::Tournament,
            Mechanism::CompleteFlush,
            SwitchInterval::M8,
            budget,
            0xf164_0000 + i as u64,
        )
        .expect("run")
    });

    for (i, c) in pairs.iter().enumerate() {
        println!(
            "SMT-2 {:<8} ({:<12}+{:<12}) {}",
            c.id,
            c.target,
            c.background,
            pct(smt2[i])
        );
    }
    for (i, q) in quads.iter().enumerate() {
        println!("SMT-4 quad{:<3} ({:?}) {}", i + 1, q, pct(smt4[i]));
    }
    println!("average SMT-2: {}   (paper: ≈6–8 %)", pct(mean(&smt2)));
    println!(
        "average SMT-4: {}   (paper: ≈10–13 %, worse than SMT-2)",
        pct(mean(&smt4))
    );
}
