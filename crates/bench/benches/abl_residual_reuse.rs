//! Ablation: the residual-state effect behind Figure 7's outliers.
//!
//! For each single-core case this prints the baseline BTB hit rate of the
//! target benchmark next to its XOR-BTB overhead: cases that harvest many
//! residual BTB entries across switches (case 6) lose the most from
//! rekeying, while cases whose warm predictions were often *wrong*
//! (case 2) can even speed up.

use sbp_bench::{header, parallel_map, pct};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{run_single_case, single_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_single;

fn main() {
    header(
        "Ablation",
        "residual BTB reuse vs XOR-BTB overhead per case",
    );
    let cases = cases_single();
    let budget = WorkBudget::single_default();
    let rows = parallel_map(cases.len(), |c| {
        let base = run_single_case(
            &cases[c],
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            budget,
            0xab3e_0000 + c as u64,
        )
        .expect("run");
        let overhead = single_overhead(
            &cases[c],
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::xor_btb(),
            SwitchInterval::M8,
            budget,
            0xab3e_0000 + c as u64,
        )
        .expect("run");
        (base.btb_hit_rate(), base.cond_accuracy(), overhead)
    });
    println!(
        "{:<8} {:>12} {:>12} {:>16}",
        "case", "BTB hit", "cond acc", "XOR-BTB ovh"
    );
    for (c, case) in cases.iter().enumerate() {
        let (hit, acc, ovh) = rows[c];
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>16}",
            case.id,
            hit * 100.0,
            acc * 100.0,
            pct(ovh)
        );
    }
    println!("expectation: the highest-hit-rate cases pay the most; low-accuracy");
    println!("cases can show negative overhead (the paper's case2 effect)");
}
