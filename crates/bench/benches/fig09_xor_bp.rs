//! Figure 9: combined protection — XOR-BP and Noisy-XOR-BP overhead on the
//! single-threaded core.
//!
//! Paper result: average < 1.3 % (largely additive from Figures 7+8); the
//! worst case ≈ 2.5 % (case 1); no significant fluctuation across timer
//! intervals because privilege switches dominate rekeying (Table 4).

use sbp_bench::{catalog_entry, header, pct, run_single_figure};

fn main() {
    header(
        "Figure 9",
        "XOR-BP and Noisy-XOR-BP overhead, single-threaded core",
    );
    let avgs = run_single_figure(catalog_entry("fig09"));
    println!("paper: averages < 1.3 %; max ≈ 2.5 % (case1)");
    let spread = avgs[3..6]
        .iter()
        .zip(&avgs[0..3])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "check: index encoding adds ≈ nothing (max avg delta {})",
        pct(spread)
    );
}
