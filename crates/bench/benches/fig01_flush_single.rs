//! Figure 1: performance overhead of flushing the branch predictor on a
//! single-threaded core, for flush intervals of 4/8/12 M cycles.
//!
//! Paper result: average loss < 1 %, mildly decreasing with the interval.

use sbp_bench::{catalog_entry, header, run_single_figure};

fn main() {
    header("Figure 1", "Complete Flush overhead, single-threaded core");
    run_single_figure(catalog_entry("fig01"));
    println!("(paper: averages < 1%, mildly decreasing with the interval)");
}
