//! Figure 1: performance overhead of flushing the branch predictor on a
//! single-threaded core, for flush intervals of 4/8/12 M cycles.
//!
//! Paper result: average loss < 1 %, mildly decreasing with the interval.

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{single_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_single;

fn main() {
    header("Figure 1", "Complete Flush overhead, single-threaded core");
    let cases = cases_single();
    let budget = WorkBudget::single_default();
    let jobs: Vec<(usize, SwitchInterval)> = (0..cases.len())
        .flat_map(|c| SwitchInterval::ALL.into_iter().map(move |iv| (c, iv)))
        .collect();
    let overheads = parallel_map(jobs.len(), |j| {
        let (c, iv) = jobs[j];
        single_overhead(
            &cases[c],
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
            iv,
            budget,
            0xf160_0000 + c as u64,
        )
        .expect("run")
    });

    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "case", "flush-4M", "flush-8M", "flush-12M"
    );
    for (c, case) in cases.iter().enumerate() {
        let row: Vec<f64> = (0..3).map(|k| overheads[c * 3 + k]).collect();
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            case.id,
            pct(row[0]),
            pct(row[1]),
            pct(row[2])
        );
    }
    for (k, iv) in SwitchInterval::ALL.iter().enumerate() {
        let avg = mean(
            &(0..cases.len())
                .map(|c| overheads[c * 3 + k])
                .collect::<Vec<_>>(),
        );
        println!("average flush-{iv}: {}   (paper: < 1%)", pct(avg));
    }
}
