//! Figure 1: performance overhead of flushing the branch predictor on a
//! single-threaded core, for flush intervals of 4/8/12 M cycles.
//!
//! Paper result: average loss < 1 %, mildly decreasing with the interval.

use sbp_bench::{catalog_entry, header};

fn main() {
    header("Figure 1", "Complete Flush overhead, single-threaded core");
    let report = catalog_entry("fig01").spec().run().expect("sweep");
    print!("{}", report.to_table());
    println!("(paper: averages < 1%, mildly decreasing with the interval)");
}
