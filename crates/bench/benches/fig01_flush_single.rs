//! Figure 1: performance overhead of flushing the branch predictor on a
//! single-threaded core, for flush intervals of 4/8/12 M cycles.
//!
//! Paper result: average loss < 1 %, mildly decreasing with the interval.

use sbp_bench::header;
use sbp_core::Mechanism;
use sbp_sweep::SweepSpec;

fn main() {
    header("Figure 1", "Complete Flush overhead, single-threaded core");
    let report = SweepSpec::single("fig01: CF single-core")
        .with_mechanisms(vec![Mechanism::CompleteFlush])
        .with_master_seed(0xf160_0000)
        .run()
        .expect("sweep");
    print!("{}", report.to_table());
    println!("(paper: averages < 1%, mildly decreasing with the interval)");
}
