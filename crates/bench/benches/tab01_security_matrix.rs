//! Table 1: the security comparison matrix — Defend / Mitigate /
//! No Protection per (structure, mechanism, attack class, core mode).
//!
//! Reuse attacks: branch shadowing + Spectre-v2 training (BTB),
//! BranchScope + the scenario-4 reference variant (PHT). Contention
//! attacks: SBPA (BTB); the PHT has no eviction channel, so contention is
//! structurally defended (paper §2.1).

use sbp_attack::{BranchScope, BranchShadowing, ReferenceBranchScope, Sbpa, SpectreV2, Verdict};
use sbp_bench::header;
use sbp_core::Mechanism;

const TRIALS: u64 = 1500;

/// Worst verdict of two outcomes, with a variant-capped rule: if the
/// primary PoC is defended but a specialized variant succeeds, the cell is
/// at best Mitigate (the paper's XOR-PHT reasoning).
fn combine(primary: Verdict, variant_succeeds: bool) -> Verdict {
    match (primary, variant_succeeds) {
        (Verdict::NoProtection, _) => Verdict::NoProtection,
        (_, true) => Verdict::Mitigate,
        (v, false) => v,
    }
}

fn btb_row(label: &str, mech: Mechanism, paper: [&str; 4]) {
    let reuse_st = {
        let a = BranchShadowing::new(mech, false).run(TRIALS, 11).verdict();
        let b = SpectreV2::new(mech, false).run(TRIALS, 12).verdict();
        a.max_severity(b)
    };
    let cont_st = Sbpa::new(mech, false).run(TRIALS, 13).verdict();
    let reuse_smt = {
        let a = BranchShadowing::new(mech, true).run(TRIALS, 14).verdict();
        let b = SpectreV2::new(mech, true).run(TRIALS, 15).verdict();
        a.max_severity(b)
    };
    let cont_smt = Sbpa::new(mech, true).run(TRIALS, 16).verdict();
    print_row(
        "BTB",
        label,
        [reuse_st, cont_st, reuse_smt, cont_smt],
        paper,
    );
}

fn pht_row(label: &str, mech: Mechanism, paper: [&str; 4]) {
    let reuse = |smt: bool, seed: u64| {
        let primary = BranchScope::new(mech, smt).run(TRIALS, seed).verdict();
        let variant = ReferenceBranchScope::new(mech, smt).run(TRIALS, seed + 1);
        combine(primary, variant.advantage() > 0.35)
    };
    let reuse_st = reuse(false, 21);
    let reuse_smt = reuse(true, 23);
    // No eviction channel exists in a PHT: contention is defended by
    // construction for every mechanism (paper §2.1).
    print_row(
        "PHT",
        label,
        [reuse_st, Verdict::Defend, reuse_smt, Verdict::Defend],
        paper,
    );
}

trait MaxSeverity {
    fn max_severity(self, other: Verdict) -> Verdict;
}

impl MaxSeverity for Verdict {
    fn max_severity(self, other: Verdict) -> Verdict {
        use Verdict::*;
        match (self, other) {
            (NoProtection, _) | (_, NoProtection) => NoProtection,
            (Mitigate, _) | (_, Mitigate) => Mitigate,
            _ => Defend,
        }
    }
}

fn print_row(structure: &str, label: &str, v: [Verdict; 4], paper: [&str; 4]) {
    println!(
        "{structure:<4} {label:<18} | ST reuse {:<14} (paper {:<14}) | ST cont {:<14} (paper {:<14})",
        v[0].label(),
        paper[0],
        v[1].label(),
        paper[1]
    );
    println!(
        "{:<23} | SMT reuse {:<13} (paper {:<14}) | SMT cont {:<13} (paper {:<14})",
        "",
        v[2].label(),
        paper[2],
        v[3].label(),
        paper[3]
    );
}

fn main() {
    header(
        "Table 1",
        "Security comparison (Defend / Mitigate / No Protection)",
    );
    println!("-- BTB mechanisms --");
    btb_row(
        "Complete Flush",
        Mechanism::CompleteFlush,
        ["Defend", "Defend", "No Protection", "No Protection"],
    );
    btb_row(
        "Precise Flush",
        Mechanism::PreciseFlush,
        ["Defend", "Defend", "Defend", "No Protection"],
    );
    btb_row(
        "XOR-BTB",
        Mechanism::xor_btb(),
        ["Defend", "Defend", "Mitigate", "No Protection"],
    );
    btb_row(
        "Noisy-XOR-BTB",
        Mechanism::noisy_xor_btb(),
        ["Defend", "Defend", "Defend", "Mitigate"],
    );
    println!("-- PHT mechanisms --");
    pht_row(
        "Complete Flush",
        Mechanism::CompleteFlush,
        ["Defend", "Defend", "No Protection", "Defend"],
    );
    pht_row(
        "Precise Flush",
        Mechanism::PreciseFlush,
        ["Defend", "Defend", "Defend", "No Protection*"],
    );
    pht_row(
        "XOR-PHT",
        Mechanism::xor_pht(),
        ["Mitigate", "Defend", "No Protection", "Defend"],
    );
    pht_row(
        "Enhanced-XOR-PHT",
        Mechanism::enhanced_xor_pht(),
        ["Defend", "Defend", "Mitigate", "Defend"],
    );
    pht_row(
        "Noisy-XOR-PHT",
        Mechanism::noisy_xor_pht(),
        ["Defend", "Defend", "Mitigate", "Defend"],
    );
    println!("(* the paper's PF/PHT SMT-contention cell concerns thread-ID cost, see §4.1)");
}
