//! Table 1: the security comparison matrix — Defend / Mitigate /
//! No Protection per (structure, mechanism, attack class, core mode).
//!
//! Reuse attacks: branch shadowing + Spectre-v2 training (BTB),
//! BranchScope + the scenario-4 reference variant (PHT). Contention
//! attacks: SBPA (BTB); the PHT has no eviction channel, so contention is
//! structurally defended (paper §2.1).
//!
//! Both halves are declarative attack sweeps — the `tab01_btb` and
//! `tab01_pht` catalog entries, executed by the engine, with the paper's
//! verdict-combination rules applied to the report's cells. (The
//! `tab01_predictors` entry extends this grid with TAGE-family
//! front-ends; run it through the `campaign` binary.)

use sbp_attack::{AttackKind, Verdict};
use sbp_bench::{catalog_entry, header};
use sbp_core::Mechanism;
use sbp_sweep::attack_cell_outcome;
use sbp_types::SweepReport;

/// Worst verdict of two outcomes, with a variant-capped rule: if the
/// primary PoC is defended but a specialized variant succeeds, the cell is
/// at best Mitigate (the paper's XOR-PHT reasoning).
fn combine(primary: Verdict, variant_succeeds: bool) -> Verdict {
    match (primary, variant_succeeds) {
        (Verdict::NoProtection, _) => Verdict::NoProtection,
        (_, true) => Verdict::Mitigate,
        (v, false) => v,
    }
}

/// Verdict of one (mechanism, mode, attack) cell of an attack report.
fn verdict(report: &SweepReport, mech: Mechanism, mode: &str, attack: AttackKind) -> Verdict {
    attack_cell_outcome(report, mech.label(), "Gshare", mode, attack.label())
        .expect("cell present")
        .verdict()
}

fn btb_row(report: &SweepReport, label: &str, mech: Mechanism, paper: [&str; 4]) {
    let reuse = |mode: &str| {
        verdict(report, mech, mode, AttackKind::BranchShadowing).max_severity(verdict(
            report,
            mech,
            mode,
            AttackKind::SpectreV2,
        ))
    };
    let cont = |mode: &str| verdict(report, mech, mode, AttackKind::Sbpa);
    print_row(
        "BTB",
        label,
        [
            reuse("single-core"),
            cont("single-core"),
            reuse("smt"),
            cont("smt"),
        ],
        paper,
    );
}

fn pht_row(report: &SweepReport, label: &str, mech: Mechanism, paper: [&str; 4]) {
    let reuse = |mode: &str| {
        let primary = verdict(report, mech, mode, AttackKind::BranchScope);
        let variant = attack_cell_outcome(
            report,
            mech.label(),
            "Gshare",
            mode,
            AttackKind::ReferenceBranchScope.label(),
        )
        .expect("variant cell");
        combine(primary, variant.advantage() > 0.35)
    };
    // No eviction channel exists in a PHT: contention is defended by
    // construction for every mechanism (paper §2.1).
    print_row(
        "PHT",
        label,
        [
            reuse("single-core"),
            Verdict::Defend,
            reuse("smt"),
            Verdict::Defend,
        ],
        paper,
    );
}

trait MaxSeverity {
    fn max_severity(self, other: Verdict) -> Verdict;
}

impl MaxSeverity for Verdict {
    fn max_severity(self, other: Verdict) -> Verdict {
        use Verdict::*;
        match (self, other) {
            (NoProtection, _) | (_, NoProtection) => NoProtection,
            (Mitigate, _) | (_, Mitigate) => Mitigate,
            _ => Defend,
        }
    }
}

fn print_row(structure: &str, label: &str, v: [Verdict; 4], paper: [&str; 4]) {
    println!(
        "{structure:<4} {label:<18} | ST reuse {:<14} (paper {:<14}) | ST cont {:<14} (paper {:<14})",
        v[0].label(),
        paper[0],
        v[1].label(),
        paper[1]
    );
    println!(
        "{:<23} | SMT reuse {:<13} (paper {:<14}) | SMT cont {:<13} (paper {:<14})",
        "",
        v[2].label(),
        paper[2],
        v[3].label(),
        paper[3]
    );
}

fn main() {
    header(
        "Table 1",
        "Security comparison (Defend / Mitigate / No Protection)",
    );
    let btb = catalog_entry("tab01_btb")
        .spec()
        .run()
        .expect("BTB attack sweep");
    println!("-- BTB mechanisms --");
    btb_row(
        &btb,
        "Complete Flush",
        Mechanism::CompleteFlush,
        ["Defend", "Defend", "No Protection", "No Protection"],
    );
    btb_row(
        &btb,
        "Precise Flush",
        Mechanism::PreciseFlush,
        ["Defend", "Defend", "Defend", "No Protection"],
    );
    btb_row(
        &btb,
        "XOR-BTB",
        Mechanism::xor_btb(),
        ["Defend", "Defend", "Mitigate", "No Protection"],
    );
    btb_row(
        &btb,
        "Noisy-XOR-BTB",
        Mechanism::noisy_xor_btb(),
        ["Defend", "Defend", "Defend", "Mitigate"],
    );
    let pht = catalog_entry("tab01_pht")
        .spec()
        .run()
        .expect("PHT attack sweep");
    println!("-- PHT mechanisms --");
    pht_row(
        &pht,
        "Complete Flush",
        Mechanism::CompleteFlush,
        ["Defend", "Defend", "No Protection", "Defend"],
    );
    pht_row(
        &pht,
        "Precise Flush",
        Mechanism::PreciseFlush,
        ["Defend", "Defend", "Defend", "No Protection*"],
    );
    pht_row(
        &pht,
        "XOR-PHT",
        Mechanism::xor_pht(),
        ["Mitigate", "Defend", "No Protection", "Defend"],
    );
    pht_row(
        &pht,
        "Enhanced-XOR-PHT",
        Mechanism::enhanced_xor_pht(),
        ["Defend", "Defend", "Mitigate", "Defend"],
    );
    pht_row(
        &pht,
        "Noisy-XOR-PHT",
        Mechanism::noisy_xor_pht(),
        ["Defend", "Defend", "Mitigate", "Defend"],
    );
    println!("(* the paper's PF/PHT SMT-contention cell concerns thread-ID cost, see §4.1)");
}
