//! Figure 3: Complete Flush vs Precise Flush on SMT-2 (normalized to the
//! unprotected baseline).
//!
//! Paper result: Precise Flush reduces but does not eliminate the loss.

use sbp_bench::{header, pct};
use sbp_core::Mechanism;
use sbp_sweep::SweepSpec;

fn main() {
    header("Figure 3", "Complete Flush vs Precise Flush, SMT-2");
    let report = SweepSpec::smt("fig03: CF vs PF")
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::PreciseFlush])
        .with_master_seed(0xf163_0000)
        .run()
        .expect("sweep");
    print!("{}", report.to_table());
    println!(
        "average: CF {} vs PF {}   (paper: PF lower but still elevated)",
        pct(report
            .series_mean("CF", "Tournament", "8M")
            .expect("series")),
        pct(report
            .series_mean("PF", "Tournament", "8M")
            .expect("series")),
    );
}
