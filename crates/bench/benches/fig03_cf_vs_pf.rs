//! Figure 3: Complete Flush vs Precise Flush on SMT-2 (normalized to the
//! unprotected baseline).
//!
//! Paper result: Precise Flush reduces but does not eliminate the loss.

use sbp_bench::{catalog_entry, header, pct};

fn main() {
    header("Figure 3", "Complete Flush vs Precise Flush, SMT-2");
    let report = catalog_entry("fig03").spec().run().expect("sweep");
    print!("{}", report.to_table());
    println!(
        "average: CF {} vs PF {}   (paper: PF lower but still elevated)",
        pct(report
            .series_mean("CF", "Tournament", "8M")
            .expect("series")),
        pct(report
            .series_mean("PF", "Tournament", "8M")
            .expect("series")),
    );
}
