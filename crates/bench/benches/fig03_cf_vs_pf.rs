//! Figure 3: Complete Flush vs Precise Flush on SMT-2 (normalized to the
//! unprotected baseline).
//!
//! Paper result: Precise Flush reduces but does not eliminate the loss.

use sbp_bench::{header, mean, parallel_map, pct};
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{smt_overhead, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::cases_smt2;

fn main() {
    header("Figure 3", "Complete Flush vs Precise Flush, SMT-2");
    let budget = WorkBudget::smt_default();
    let pairs = cases_smt2();
    let jobs: Vec<(usize, Mechanism)> = (0..pairs.len())
        .flat_map(|i| {
            [Mechanism::CompleteFlush, Mechanism::PreciseFlush]
                .into_iter()
                .map(move |m| (i, m))
        })
        .collect();
    let overheads = parallel_map(jobs.len(), |j| {
        let (i, m) = jobs[j];
        smt_overhead(
            &[pairs[i].target, pairs[i].background],
            CoreConfig::gem5(),
            PredictorKind::Tournament,
            m,
            SwitchInterval::M8,
            budget,
            0xf163_0000 + i as u64,
        )
        .expect("run")
    });
    let cf: Vec<f64> = (0..pairs.len()).map(|i| overheads[i * 2]).collect();
    let pf: Vec<f64> = (0..pairs.len()).map(|i| overheads[i * 2 + 1]).collect();
    println!(
        "{:<8} {:>14} {:>14}",
        "case", "CompleteFlush", "PreciseFlush"
    );
    for (i, c) in pairs.iter().enumerate() {
        println!("{:<8} {:>14} {:>14}", c.id, pct(cf[i]), pct(pf[i]));
    }
    println!(
        "average: CF {} vs PF {}   (paper: PF lower but still elevated)",
        pct(mean(&cf)),
        pct(mean(&pf))
    );
}
