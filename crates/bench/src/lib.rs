//! # sbp-bench
//!
//! Shared support for the benchmark harnesses under `benches/`. Each bench
//! target reproduces one table or figure of the paper by declaring a
//! [`SweepSpec`](sbp_sweep::SweepSpec) grid and printing the engine's
//! report next to the paper's numbers; `cargo bench --workspace` runs them
//! all. Scale the work with `SBP_SCALE` (1.0 is the laptop default; ≈100
//! approximates the paper's 2 B-instruction runs).

pub use sbp_sweep::parallel_map;
pub use sbp_types::report::{mean, pct};

/// Prints the standard harness header.
pub fn header(exp: &str, title: &str) {
    println!("=============================================================");
    println!("{exp}: {title}");
    println!(
        "scale: SBP_SCALE={} (set higher for tighter estimates)",
        sbp_sim::scale()
    );
    println!("=============================================================");
}

/// Runs the Figure 7/8/9 style experiment: each mechanism × each switch
/// interval × the twelve single-core cases, printing per-case rows and
/// per-series averages. Returns the per-series averages in
/// `mechs × intervals` order.
pub fn run_single_figure(mechs: &[sbp_core::Mechanism], seed_base: u64) -> Vec<f64> {
    use sbp_sim::SwitchInterval;
    use sbp_sweep::SweepSpec;

    let report = SweepSpec::single("single-core figure")
        .with_mechanisms(mechs.to_vec())
        .with_master_seed(seed_base)
        .run()
        .expect("sweep");
    print!("{}", report.to_table());
    mechs
        .iter()
        .flat_map(|m| {
            SwitchInterval::ALL.iter().map(|iv| {
                report
                    .series_mean(m.label(), "Gshare", iv.label())
                    .expect("series present")
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.002), "-0.20%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
