//! # sbp-bench
//!
//! Shared support for the benchmark harnesses under `benches/`. Each bench
//! target reproduces one table or figure of the paper by pulling its named
//! grid out of the spec catalog
//! ([`sbp_campaign::Catalog`]) and printing the engine's report next to
//! the paper's numbers; `cargo bench --workspace` runs them all, and the
//! `campaign` binary runs the same grids fanned out across worker
//! processes. Scale the work with `SBP_SCALE` (1.0 is the laptop default;
//! ≈100 approximates the paper's 2 B-instruction runs).

pub mod bps;

pub use sbp_campaign::{Catalog, CatalogEntry};
pub use sbp_sweep::parallel_map;
pub use sbp_types::report::{mean, pct};

/// Prints the standard harness header.
pub fn header(exp: &str, title: &str) {
    println!("=============================================================");
    println!("{exp}: {title}");
    println!(
        "scale: SBP_SCALE={} (set higher for tighter estimates)",
        sbp_sim::scale()
    );
    println!("=============================================================");
}

/// Looks up a catalog entry, panicking with the registry listing on a
/// typo — bench harnesses have no error channel worth threading.
pub fn catalog_entry(name: &str) -> &'static CatalogEntry {
    Catalog::get(name).unwrap_or_else(|| {
        panic!(
            "no catalog entry {name:?} (registered: {})",
            Catalog::names().join(", ")
        )
    })
}

/// Runs a Figure 1/7/8/9 style catalog entry: each mechanism × each
/// switch interval × the single-core cases, printing the report table
/// followed by the entry's paper-expectation verdict table (the same
/// oracle `campaign --check` ends with). Returns the per-series averages
/// in `mechanisms × intervals` order (the entry's axis order).
pub fn run_single_figure(entry: &CatalogEntry) -> Vec<f64> {
    let spec = entry.spec();
    let report = spec.run().expect("sweep");
    print!("{}", report.to_table());
    if !entry.expectations().is_empty() {
        print!("{}", sbp_campaign::check_entry(entry, &report).to_table());
    }
    let predictor = spec.predictors[0].label();
    spec.series_mechanisms()
        .iter()
        .flat_map(|m| {
            spec.intervals.iter().map(|iv| {
                report
                    .series_mean(m.label(), predictor, iv.label())
                    .expect("series present")
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.002), "-0.20%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn catalog_entry_finds_registered_names() {
        assert_eq!(catalog_entry("fig07").name, "fig07");
    }

    #[test]
    #[should_panic(expected = "no catalog entry")]
    fn catalog_entry_panics_with_the_registry_on_typos() {
        catalog_entry("fig7");
    }
}
