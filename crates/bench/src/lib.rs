//! # sbp-bench
//!
//! Shared support for the benchmark harnesses under `benches/`. Each bench
//! target reproduces one table or figure of the paper and prints the
//! paper's rows/series next to the measured values; `cargo bench
//! --workspace` runs them all. Scale the work with `SBP_SCALE` (1.0 is the
//! laptop default; ≈100 approximates the paper's 2 B-instruction runs).

/// Runs `f(i)` for `i in 0..n` on a pool of worker threads (one per
/// available core) and returns the results in index order.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *results[i].lock() = Some(f(i));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker completed"))
        .collect()
}

/// Prints the standard harness header.
pub fn header(exp: &str, title: &str) {
    println!("=============================================================");
    println!("{exp}: {title}");
    println!(
        "scale: SBP_SCALE={} (set higher for tighter estimates)",
        sbp_sim::scale()
    );
    println!("=============================================================");
}

/// Formats a fraction as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Runs the Figure 7/8/9 style experiment: each mechanism × each switch
/// interval × the twelve single-core cases, printing per-case rows and
/// per-series averages. Returns the per-series averages in
/// `mechs × intervals` order.
pub fn run_single_figure(mechs: &[(&str, sbp_core::Mechanism)], seed_base: u64) -> Vec<f64> {
    use sbp_predictors::PredictorKind;
    use sbp_sim::{single_overhead, CoreConfig, SwitchInterval, WorkBudget};

    let cases = sbp_trace::cases_single();
    let budget = WorkBudget::single_default();
    let intervals = SwitchInterval::ALL;
    // jobs: mech-major, then interval, then case.
    let jobs: Vec<(usize, usize, usize)> = (0..mechs.len())
        .flat_map(|m| {
            (0..intervals.len()).flat_map(move |iv| (0..cases.len()).map(move |c| (m, iv, c)))
        })
        .collect();
    let overheads = parallel_map(jobs.len(), |j| {
        let (m, iv, c) = jobs[j];
        single_overhead(
            &cases[c],
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mechs[m].1,
            intervals[iv],
            budget,
            seed_base + c as u64, // same workload stream across mechanisms
        )
        .expect("run")
    });
    let at =
        |m: usize, iv: usize, c: usize| overheads[(m * intervals.len() + iv) * cases.len() + c];

    print!("{:<8}", "case");
    for (label, _) in mechs {
        for iv in intervals {
            print!(" {:>18}", format!("{label}-{iv}"));
        }
    }
    println!();
    for (c, case) in cases.iter().enumerate() {
        print!("{:<8}", case.id);
        for m in 0..mechs.len() {
            for iv in 0..intervals.len() {
                print!(" {:>18}", pct(at(m, iv, c)));
            }
        }
        println!();
    }
    let mut averages = Vec::new();
    for (m, (label, _)) in mechs.iter().enumerate() {
        for (k, iv) in intervals.iter().enumerate() {
            let avg = mean(&(0..cases.len()).map(|c| at(m, k, c)).collect::<Vec<_>>());
            println!("average {label}-{iv}: {}", pct(avg));
            averages.push(avg);
        }
    }
    averages
}

/// Arithmetic mean (the paper's "average" bars).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<usize> = parallel_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.002), "-0.20%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
