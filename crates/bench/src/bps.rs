//! The branches-per-second benchmark behind `BENCH_6.json`.
//!
//! Measures the simulator's hot-loop throughput — wall-clock branches per
//! second — through both front-end paths: the batched production path
//! ([`sbp_sim::SingleCoreSim::run_target`]) and the uncached scalar
//! reference path ([`sbp_sim::SingleCoreSim::run_target_scalar`]). Both
//! produce bit-identical simulation results (the measurement asserts it),
//! so their throughput ratio isolates what the batched rewrite buys.
//!
//! The emitted report is schema-stable JSON ([`SCHEMA`]) parsed
//! back with [`sbp_sweep::json`]; `bps --check BENCH_6.json` compares a
//! fresh measurement against the committed file and fails when the
//! machine-independent batched/scalar *speedup ratio* regresses by more
//! than [`CHECK_TOLERANCE`]. Absolute branches/sec depends on the host, so
//! CI gates on the ratio, not the raw rate — see `docs/PERFORMANCE.md`.

use std::time::Instant;

use sbp_campaign::Catalog;
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{CoreConfig, SingleCoreSim, SwitchInterval};
use sbp_sweep::json::{self, Value};
use sbp_types::PredictionStats;

/// Schema tag of the emitted report; bump on any breaking field change.
/// v2 added the per-series `scalar_spread`/`batched_spread` fields
/// (relative best-to-worst spread across the timing repeats); v3 added
/// `scalar_median_bps`/`batched_median_bps` (the median repeat, a
/// noise-robust central tendency to read next to the gated best-of); v4
/// added `scalar_samples`/`batched_samples` (every repeat's raw
/// branches/sec in chronological order, so offline tooling can compute
/// its own robust statistics instead of trusting the summarized ones).
pub const SCHEMA: &str = "sbp-bench/bps/v4";

/// The previous schema tag, still accepted by [`BpsReport::parse`]: a v3
/// document (like a committed `BENCH_6.json`) reads back with empty
/// sample arrays, so the CI gate keeps working across the bump.
pub const LEGACY_SCHEMA: &str = "sbp-bench/bps/v3";

/// Workload pair every series runs (first single-core case of the paper).
pub const CASE: (&str, &str) = ("gcc", "calculix");

/// RNG seed shared by every series.
pub const SEED: u64 = 42;

/// `--check` fails when a series' speedup drops below `committed × 0.8`.
pub const CHECK_TOLERANCE: f64 = 0.8;

/// Pre-rewrite throughput anchors: Mbranches/sec of the scalar-only hot
/// loop at the seed commit, measured 2026-08-09 on the development
/// machine (gcc+calculix, Gshare, release build). Absolute rates are
/// machine-specific — these are recorded for provenance, not gating.
pub const PRE_PR_ANCHORS: &[(&str, &str, f64)] = &[
    ("Baseline", "Off", 9.11),
    ("Noisy-XOR-BP", "Off", 6.48),
    ("CF", "Off", 8.43),
    ("Baseline", "8M", 5.25),
    ("Noisy-XOR-BP", "8M", 3.84),
    ("CF", "8M", 5.67),
];

/// Work sizes for one measurement run.
#[derive(Debug, Clone, Copy)]
pub struct BpsConfig {
    /// Measured branches per Gshare series.
    pub gshare_branches: u64,
    /// Measured branches per TAGE-SC-L series (slower predictor, fewer
    /// branches for comparable wall time).
    pub tage_branches: u64,
    /// Warm-up branches per run (counted in the throughput denominator —
    /// they execute the same hot loop).
    pub warmup: u64,
    /// Timing repetitions; the best (highest-throughput) run is reported
    /// to suppress scheduler noise. Simulation results are asserted
    /// identical across repeats and paths.
    pub repeats: u32,
    /// Whether to run and time the CI smoke catalog entries.
    pub smoke: bool,
}

impl BpsConfig {
    /// The tracked configuration `BENCH_6.json` is generated with.
    /// Best-of-21: with best-of-3 the observed run-to-run spread on a
    /// single-core VM (10–50% of a repeat's throughput, now recorded in
    /// the spread fields) was far larger than the smallest tracked
    /// speedups, so one lucky or unlucky repeat could swing a healthy
    /// series across the 1.0 line — the committed 0.989 TAGE-SC-L/CF
    /// "regression" was exactly that. Best-of-N converges on the
    /// machine's clean-run throughput as N grows; 21 repeats cost ~80 s
    /// total and make the recorded ratios reproducible to a few percent.
    pub fn full() -> Self {
        BpsConfig {
            gshare_branches: 1_000_000,
            tage_branches: 250_000,
            warmup: 50_000,
            repeats: 21,
            smoke: true,
        }
    }

    /// A small configuration for tests (seconds, not minutes).
    pub fn quick() -> Self {
        BpsConfig {
            gshare_branches: 40_000,
            tage_branches: 15_000,
            warmup: 5_000,
            repeats: 1,
            smoke: false,
        }
    }
}

/// One measured predictor × mechanism series.
#[derive(Debug, Clone, PartialEq)]
pub struct BpsSeries {
    /// Predictor label ([`PredictorKind::label`]).
    pub predictor: String,
    /// Mechanism label ([`Mechanism::label`]).
    pub mechanism: String,
    /// Branches executed per timed run (warm-up + measured).
    pub branches: u64,
    /// Scalar reference path throughput, branches/second (best repeat).
    pub scalar_bps: f64,
    /// Scalar path throughput of the *median* repeat (by wall time) —
    /// the noise-robust central tendency; equals `scalar_bps` with a
    /// single repeat.
    pub scalar_median_bps: f64,
    /// Every scalar repeat's raw branches/sec in chronological order
    /// (empty when parsed from a pre-v4 document).
    pub scalar_samples: Vec<f64>,
    /// Relative best-to-worst throughput spread across the scalar
    /// repeats, `(best − worst) / best`; 0 with a single repeat. A large
    /// spread flags a noisy measurement whose `speedup` should not be
    /// trusted to fine margins.
    pub scalar_spread: f64,
    /// Batched production path throughput, branches/second (best repeat).
    pub batched_bps: f64,
    /// Batched path throughput of the median repeat.
    pub batched_median_bps: f64,
    /// Every batched repeat's raw branches/sec in chronological order
    /// (empty when parsed from a pre-v4 document).
    pub batched_samples: Vec<f64>,
    /// Relative best-to-worst spread across the batched repeats.
    pub batched_spread: f64,
    /// `batched_bps / scalar_bps` — the machine-independent gate metric.
    pub speedup: f64,
}

/// Wall time of one smoke catalog entry run end-to-end through the sweep
/// engine (plan → parallel execute → report).
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeTiming {
    /// Catalog entry name.
    pub entry: String,
    /// Report records produced (grid size sanity check).
    pub records: u64,
    /// End-to-end wall seconds.
    pub wall_seconds: f64,
}

/// The full benchmark report — everything `BENCH_6.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BpsReport {
    /// `SBP_SCALE` in effect during the measurement.
    pub scale: f64,
    /// Per-series throughput measurements.
    pub series: Vec<BpsSeries>,
    /// Smoke-entry wall times (empty when smoke timing was skipped).
    pub smoke: Vec<SmokeTiming>,
}

fn round_to(x: f64, decimals: i32) -> f64 {
    let p = 10f64.powi(decimals);
    (x * p).round() / p
}

fn timed_run(
    sim: &mut SingleCoreSim,
    scalar: bool,
    warmup: u64,
    measure: u64,
) -> (f64, PredictionStats) {
    let start = Instant::now();
    let stats = if scalar {
        sim.run_target_scalar(warmup, measure)
    } else {
        sim.run_target(warmup, measure)
    };
    (start.elapsed().as_secs_f64(), stats)
}

/// One path's throughput summary across the timing repeats.
struct PathTiming {
    /// Best-repeat branches/sec (the gated metric).
    best_bps: f64,
    /// Median-repeat branches/sec (noise-robust central tendency).
    median_bps: f64,
    /// Relative best-to-worst spread, `(best − worst) / best`.
    spread: f64,
    /// Every repeat's branches/sec in chronological order.
    samples: Vec<f64>,
}

/// Best-of-`repeats` branches/sec through one path (plus the median
/// repeat and the relative best-to-worst spread), asserting every repeat
/// produces identical simulation results.
fn measure_path(
    predictor: PredictorKind,
    mechanism: Mechanism,
    scalar: bool,
    cfg: &BpsConfig,
    measure: u64,
) -> (PathTiming, PredictionStats) {
    let mut secs = Vec::with_capacity(cfg.repeats.max(1) as usize);
    let mut first_stats: Option<PredictionStats> = None;
    for _ in 0..cfg.repeats.max(1) {
        let mut sim = SingleCoreSim::new(
            CoreConfig::fpga(),
            predictor,
            mechanism,
            SwitchInterval::Off,
            &[CASE.0, CASE.1],
            SEED,
        )
        .expect("benchmark workloads are registered");
        let (run_secs, stats) = timed_run(&mut sim, scalar, cfg.warmup, measure);
        match &first_stats {
            None => first_stats = Some(stats),
            Some(prev) => assert_eq!(*prev, stats, "nondeterministic run"),
        }
        secs.push(run_secs);
    }
    let branches = cfg.warmup + measure;
    // Raw per-repeat samples keep chronological order (captured before
    // the sort below) so warm-up drift stays visible in the record.
    let samples: Vec<f64> = secs
        .iter()
        .map(|s| round_to(branches as f64 / s, 1))
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let n = secs.len();
    let median_secs = if n % 2 == 1 {
        secs[n / 2]
    } else {
        (secs[n / 2 - 1] + secs[n / 2]) / 2.0
    };
    let best_bps = branches as f64 / secs[0];
    let worst_bps = branches as f64 / secs[n - 1];
    (
        PathTiming {
            best_bps,
            median_bps: branches as f64 / median_secs,
            spread: (best_bps - worst_bps) / best_bps,
            samples,
        },
        first_stats.expect("ran at least once"),
    )
}

/// Runs the full measurement: every predictor × mechanism series through
/// both paths (asserting bit-identical results between them), plus the
/// smoke catalog entries when `cfg.smoke` is set.
///
/// Mechanism coverage follows the paper's main comparison: the insecure
/// baseline, Complete Flush (the OS-assisted competitor) and
/// Noisy-XOR-BP (the paper's mechanism, where per-access key derivation
/// made the pre-rewrite scalar path most expensive).
pub fn measure(cfg: &BpsConfig) -> BpsReport {
    let grid: &[(PredictorKind, u64)] = &[
        (PredictorKind::Gshare, cfg.gshare_branches),
        (PredictorKind::TageScL, cfg.tage_branches),
    ];
    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::noisy_xor_bp(),
    ];
    let mut series = Vec::new();
    for &(predictor, branches) in grid {
        for mechanism in mechanisms {
            let (scalar, scalar_stats) = measure_path(predictor, mechanism, true, cfg, branches);
            let (batched, batched_stats) = measure_path(predictor, mechanism, false, cfg, branches);
            assert_eq!(
                scalar_stats,
                batched_stats,
                "batched and scalar paths diverged for {} / {}",
                predictor.label(),
                mechanism.label()
            );
            series.push(BpsSeries {
                predictor: predictor.label().to_string(),
                mechanism: mechanism.label().to_string(),
                branches: cfg.warmup + branches,
                scalar_bps: round_to(scalar.best_bps, 1),
                scalar_median_bps: round_to(scalar.median_bps, 1),
                scalar_samples: scalar.samples,
                scalar_spread: round_to(scalar.spread, 3),
                batched_bps: round_to(batched.best_bps, 1),
                batched_median_bps: round_to(batched.median_bps, 1),
                batched_samples: batched.samples,
                batched_spread: round_to(batched.spread, 3),
                speedup: round_to(batched.best_bps / scalar.best_bps, 3),
            });
        }
    }
    let mut smoke = Vec::new();
    if cfg.smoke {
        for name in ["smoke_single", "smoke_attack"] {
            let entry = Catalog::get(name).expect("smoke entries are registered");
            let start = Instant::now();
            let report = entry.spec().run().expect("smoke entry runs");
            smoke.push(SmokeTiming {
                entry: name.to_string(),
                records: report.records.len() as u64,
                wall_seconds: round_to(start.elapsed().as_secs_f64(), 3),
            });
        }
    }
    BpsReport {
        scale: sbp_sim::scale(),
        series,
        smoke,
    }
}

fn fmt_f64(x: f64) -> String {
    // Shortest-roundtrip decimal, same as the sweep store's emitter. The
    // report never contains non-finite numbers (throughputs are positive
    // finite by construction), so no NaN/Inf escape is needed.
    debug_assert!(x.is_finite());
    format!("{x}")
}

impl BpsReport {
    /// Serializes the report as the `BENCH_6.json` document. Field order
    /// and formatting are stable so diffs stay meaningful; only the
    /// `*_bps`, `speedup` and `wall_seconds` values change run-to-run.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"scale\": {},\n", fmt_f64(self.scale)));
        out.push_str("  \"interval\": \"Off\",\n");
        out.push_str(&format!("  \"case\": \"{}+{}\",\n", CASE.0, CASE.1));
        out.push_str(&format!("  \"seed\": {},\n", SEED));
        out.push_str("  \"series\": [\n");
        let samples_of = |samples: &[f64]| {
            let toks: Vec<String> = samples.iter().map(|v| fmt_f64(*v)).collect();
            format!("[{}]", toks.join(", "))
        };
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"predictor\": \"{}\", \"mechanism\": \"{}\", \"branches\": {}, \
                 \"scalar_bps\": {}, \"scalar_median_bps\": {}, \"scalar_samples\": {}, \
                 \"scalar_spread\": {}, \
                 \"batched_bps\": {}, \"batched_median_bps\": {}, \"batched_samples\": {}, \
                 \"batched_spread\": {}, \
                 \"speedup\": {}}}{}\n",
                s.predictor,
                s.mechanism,
                s.branches,
                fmt_f64(s.scalar_bps),
                fmt_f64(s.scalar_median_bps),
                samples_of(&s.scalar_samples),
                fmt_f64(s.scalar_spread),
                fmt_f64(s.batched_bps),
                fmt_f64(s.batched_median_bps),
                samples_of(&s.batched_samples),
                fmt_f64(s.batched_spread),
                fmt_f64(s.speedup),
                if i + 1 < self.series.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"smoke\": [\n");
        for (i, t) in self.smoke.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"entry\": \"{}\", \"records\": {}, \"wall_seconds\": {}}}{}\n",
                t.entry,
                t.records,
                fmt_f64(t.wall_seconds),
                if i + 1 < self.smoke.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(
            "  \"pre_pr_anchors\": {\n    \"note\": \"scalar-only hot loop at the seed commit, \
             Mbranches/sec, gcc+calculix Gshare, measured 2026-08-09; machine-specific, kept for \
             provenance\",\n    \"points\": [\n",
        );
        for (i, (mech, interval, mbps)) in PRE_PR_ANCHORS.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"mechanism\": \"{mech}\", \"interval\": \"{interval}\", \"mbps\": {}}}{}\n",
                fmt_f64(*mbps),
                if i + 1 < PRE_PR_ANCHORS.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    /// Parses a `BENCH_6.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field, or
    /// a schema-tag mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let obj = doc.as_object().ok_or("report is not a JSON object")?;
        let schema = json::get_str(obj, "schema")?;
        if schema != SCHEMA && schema != LEGACY_SCHEMA {
            return Err(format!(
                "schema {schema:?}, expected {SCHEMA:?} (or legacy {LEGACY_SCHEMA:?})"
            ));
        }
        let scale = json::get_f64(obj, "scale")?;
        // Pre-v4 documents carry no raw samples; they read back empty.
        let samples_of = |s: &[(String, Value)], key: &str| -> Result<Vec<f64>, String> {
            match json::opt(s, key) {
                None => Ok(Vec::new()),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("field {key:?} is not an array"))?
                    .iter()
                    .map(|x| match x {
                        Value::Num(raw) => raw
                            .parse::<f64>()
                            .map_err(|e| format!("field {key:?}: {e}")),
                        other => Err(format!("field {key:?} holds a non-number: {other:?}")),
                    })
                    .collect(),
            }
        };
        let series_of = |v: &Value| -> Result<BpsSeries, String> {
            let s = v.as_object().ok_or("series entry is not an object")?;
            Ok(BpsSeries {
                predictor: json::get_str(s, "predictor")?.to_string(),
                mechanism: json::get_str(s, "mechanism")?.to_string(),
                branches: json::get_u64(s, "branches")?,
                scalar_bps: json::get_f64(s, "scalar_bps")?,
                scalar_median_bps: json::get_f64(s, "scalar_median_bps")?,
                scalar_samples: samples_of(s, "scalar_samples")?,
                scalar_spread: json::get_f64(s, "scalar_spread")?,
                batched_bps: json::get_f64(s, "batched_bps")?,
                batched_median_bps: json::get_f64(s, "batched_median_bps")?,
                batched_samples: samples_of(s, "batched_samples")?,
                batched_spread: json::get_f64(s, "batched_spread")?,
                speedup: json::get_f64(s, "speedup")?,
            })
        };
        let series = json::get(obj, "series")?
            .as_array()
            .ok_or("\"series\" is not an array")?
            .iter()
            .map(series_of)
            .collect::<Result<Vec<_>, _>>()?;
        let smoke_of = |v: &Value| -> Result<SmokeTiming, String> {
            let s = v.as_object().ok_or("smoke entry is not an object")?;
            Ok(SmokeTiming {
                entry: json::get_str(s, "entry")?.to_string(),
                records: json::get_u64(s, "records")?,
                wall_seconds: json::get_f64(s, "wall_seconds")?,
            })
        };
        let smoke = json::get(obj, "smoke")?
            .as_array()
            .ok_or("\"smoke\" is not an array")?
            .iter()
            .map(smoke_of)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BpsReport {
            scale,
            series,
            smoke,
        })
    }

    /// The deterministic (non-timing) identity of the report: schema,
    /// scale and the measured grid. Two runs of the same configuration
    /// have equal fingerprints even though their timings differ.
    pub fn fingerprint(&self) -> String {
        let mut out = format!("{SCHEMA};scale={}", fmt_f64(self.scale));
        for s in &self.series {
            out.push_str(&format!(";{}/{}/{}", s.predictor, s.mechanism, s.branches));
        }
        for t in &self.smoke {
            out.push_str(&format!(";{}/{}", t.entry, t.records));
        }
        out
    }

    /// Gates a fresh measurement against the committed report.
    ///
    /// Compares the **speedup ratio** per (predictor, mechanism) series —
    /// absolute branches/sec varies across machines, the batched/scalar
    /// ratio does not — and fails when any ratio drops below
    /// `committed × CHECK_TOLERANCE`, when a committed series is missing,
    /// or when any current throughput is non-positive. Returns one log
    /// line per compared series on success.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first regression found.
    pub fn check_against(&self, committed: &BpsReport) -> Result<Vec<String>, String> {
        let mut lines = Vec::new();
        for s in &self.series {
            if !(s.scalar_bps > 0.0 && s.batched_bps > 0.0) {
                return Err(format!(
                    "non-positive throughput in {}/{}",
                    s.predictor, s.mechanism
                ));
            }
        }
        for want in &committed.series {
            let got = self
                .series
                .iter()
                .find(|s| s.predictor == want.predictor && s.mechanism == want.mechanism)
                .ok_or_else(|| {
                    format!(
                        "committed series {}/{} missing from current measurement",
                        want.predictor, want.mechanism
                    )
                })?;
            let floor = want.speedup * CHECK_TOLERANCE;
            if got.speedup < floor {
                return Err(format!(
                    "{}/{}: speedup {:.3} fell below {:.3} (committed {:.3} × {})",
                    want.predictor,
                    want.mechanism,
                    got.speedup,
                    floor,
                    want.speedup,
                    CHECK_TOLERANCE
                ));
            }
            lines.push(format!(
                "{:<10} {:<13} speedup {:.3} (committed {:.3}, floor {:.3}) ok",
                got.predictor, got.mechanism, got.speedup, want.speedup, floor
            ));
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BpsReport {
        BpsReport {
            scale: 1.0,
            series: vec![
                BpsSeries {
                    predictor: "Gshare".into(),
                    mechanism: "Baseline".into(),
                    branches: 45_000,
                    scalar_bps: 9_000_000.0,
                    scalar_median_bps: 8_800_000.0,
                    scalar_samples: vec![8_800_000.0, 9_000_000.0, 8_700_000.0],
                    scalar_spread: 0.031,
                    batched_bps: 10_000_000.0,
                    batched_median_bps: 9_950_000.0,
                    batched_samples: vec![9_950_000.0, 9_880_000.0, 10_000_000.0],
                    batched_spread: 0.012,
                    speedup: 1.111,
                },
                BpsSeries {
                    predictor: "Gshare".into(),
                    mechanism: "Noisy-XOR-BP".into(),
                    branches: 45_000,
                    scalar_bps: 6_000_000.0,
                    scalar_median_bps: 6_000_000.0,
                    scalar_samples: vec![6_000_000.0],
                    scalar_spread: 0.0,
                    batched_bps: 9_000_000.0,
                    batched_median_bps: 8_500_000.0,
                    batched_samples: vec![9_000_000.0],
                    batched_spread: 0.08,
                    speedup: 1.5,
                },
            ],
            smoke: vec![SmokeTiming {
                entry: "smoke_single".into(),
                records: 4,
                wall_seconds: 2.25,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = BpsReport::parse(&r.to_json()).expect("parse own output");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = sample().to_json().replace(SCHEMA, "sbp-bench/bps/v0");
        assert!(BpsReport::parse(&text).is_err());
    }

    #[test]
    fn legacy_v3_documents_parse_with_empty_samples() {
        // A committed pre-v4 report: legacy schema tag, no sample arrays.
        let text = format!(
            "{{\"schema\": \"{LEGACY_SCHEMA}\", \"scale\": 1, \"series\": [\n\
             {{\"predictor\": \"Gshare\", \"mechanism\": \"Baseline\", \"branches\": 100,\n\
             \"scalar_bps\": 5.0, \"scalar_median_bps\": 5.0, \"scalar_spread\": 0,\n\
             \"batched_bps\": 6.0, \"batched_median_bps\": 6.0, \"batched_spread\": 0,\n\
             \"speedup\": 1.2}}], \"smoke\": []}}"
        );
        let report = BpsReport::parse(&text).expect("legacy document parses");
        assert!(report.series[0].scalar_samples.is_empty());
        assert!(report.series[0].batched_samples.is_empty());
    }

    #[test]
    fn check_passes_against_itself_and_catches_regressions() {
        let committed = sample();
        let lines = committed.check_against(&committed).expect("self-check");
        assert_eq!(lines.len(), 2);

        let mut regressed = committed.clone();
        regressed.series[1].speedup = 1.0; // 1.5 × 0.8 = 1.2 floor
        let err = regressed.check_against(&committed).unwrap_err();
        assert!(err.contains("Noisy-XOR-BP"), "unexpected error: {err}");

        let mut shrunk = committed.clone();
        shrunk.series.pop();
        assert!(shrunk.check_against(&committed).is_err(), "missing series");
    }

    #[test]
    fn fingerprint_ignores_timing_fields() {
        let a = sample();
        let mut b = sample();
        b.series[0].scalar_bps *= 2.0;
        b.series[0].scalar_median_bps *= 2.0;
        b.series[0].batched_bps *= 0.5;
        b.series[0].batched_median_bps *= 0.5;
        b.smoke[0].wall_seconds = 99.0;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.series[0].branches += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn quick_measurement_is_sane_and_deterministic_outside_timing() {
        let cfg = BpsConfig::quick();
        let a = measure(&cfg);
        assert_eq!(a.series.len(), 6, "2 predictors × 3 mechanisms");
        for s in &a.series {
            assert!(
                s.scalar_bps > 0.0 && s.batched_bps > 0.0,
                "bad series {s:?}"
            );
            assert!(s.speedup > 0.0);
            // A single repeat has no spread, and its median IS the best.
            assert_eq!(s.scalar_spread, 0.0, "spread with one repeat {s:?}");
            assert_eq!(s.batched_spread, 0.0, "spread with one repeat {s:?}");
            // One raw sample per repeat, and with a single repeat the
            // sample IS the best-of.
            assert_eq!(s.scalar_samples.len(), 1, "one sample per repeat {s:?}");
            assert_eq!(s.batched_samples.len(), 1, "one sample per repeat {s:?}");
            assert_eq!(s.scalar_samples[0], s.scalar_bps, "{s:?}");
            assert_eq!(s.batched_samples[0], s.batched_bps, "{s:?}");
            assert_eq!(
                s.scalar_median_bps, s.scalar_bps,
                "median != best with one repeat {s:?}"
            );
            assert_eq!(
                s.batched_median_bps, s.batched_bps,
                "median != best with one repeat {s:?}"
            );
        }
        assert!(a.smoke.is_empty(), "quick config skips smoke timing");
        let b = measure(&cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // And the document itself parses back.
        let parsed = BpsReport::parse(&a.to_json()).expect("parse");
        assert_eq!(parsed.fingerprint(), a.fingerprint());
    }
}
