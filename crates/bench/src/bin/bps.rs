//! `bps` — the tracked branches-per-second benchmark.
//!
//! ```text
//! bps                       # full measurement, writes BENCH_6.json
//! bps --out path.json       # write elsewhere
//! bps --quick               # small work sizes (CI smoke / tests)
//! bps --no-smoke            # skip the smoke catalog entry timings
//! bps --check BENCH_6.json  # measure, then gate on the committed file
//! bps --json                # print the report JSON (with per-repeat
//!                           # raw samples) to stdout instead of a file
//! ```
//!
//! `--check` exits non-zero when any series' batched/scalar speedup ratio
//! falls below the committed ratio × 0.8 — the machine-independent
//! regression gate CI runs (see `docs/PERFORMANCE.md`).

use std::process::ExitCode;

use sbp_bench::bps::{measure, BpsConfig, BpsReport};

fn main() -> ExitCode {
    let mut cfg = BpsConfig::full();
    let mut out_path = String::from("BENCH_6.json");
    let mut out_explicit = false;
    let mut json_out = false;
    let mut check_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = BpsConfig::quick(),
            "--no-smoke" => cfg.smoke = false,
            "--repeats" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => cfg.repeats = n,
                _ => return usage("--repeats needs a count >= 1"),
            },
            "--out" => match args.next() {
                Some(p) => {
                    out_path = p;
                    out_explicit = true;
                }
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => return usage("--check needs a path"),
            },
            "--json" => json_out = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "measuring branches/sec (scale {}, {} series branches Gshare / {} TAGE-SC-L, smoke: {})...",
        sbp_sim::scale(),
        cfg.gshare_branches,
        cfg.tage_branches,
        cfg.smoke
    );
    let report = measure(&cfg);
    for s in &report.series {
        eprintln!(
            "  {:<10} {:<13} scalar {:>12.1} bps (median {:>12.1}, ±{:.1}%), \
             batched {:>12.1} bps (median {:>12.1}, ±{:.1}%), speedup {:.3}",
            s.predictor,
            s.mechanism,
            s.scalar_bps,
            s.scalar_median_bps,
            100.0 * s.scalar_spread,
            s.batched_bps,
            s.batched_median_bps,
            100.0 * s.batched_spread,
            s.speedup
        );
    }
    for t in &report.smoke {
        eprintln!(
            "  {:<24} {} records in {:.3}s",
            t.entry, t.records, t.wall_seconds
        );
    }

    // --json streams the document to stdout (stderr already carries the
    // human summary), for piping into offline analysis.
    if json_out {
        print!("{}", report.to_json());
    }

    // With --check the measurement is a gate, not an update: nothing is
    // written unless --out asks for a copy. Written *before* the gate so
    // CI can upload the fresh report even from a failed run.
    if out_explicit || (check_path.is_none() && !json_out) {
        if let Err(e) = std::fs::write(&out_path, report.to_json()) {
            eprintln!("error: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out_path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed = match BpsReport::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {path} is not a valid bps report: {e}");
                return ExitCode::FAILURE;
            }
        };
        match report.check_against(&committed) {
            Ok(lines) => {
                for line in lines {
                    eprintln!("  {line}");
                }
                eprintln!("bps check passed against {path}");
            }
            Err(e) => {
                eprintln!("bps regression vs {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    print_usage();
    ExitCode::FAILURE
}

fn print_usage() {
    eprintln!(
        "usage: bps [--quick] [--no-smoke] [--repeats N] [--out PATH] [--check PATH] [--json]\n\
         measures branches/sec through the scalar and batched simulator paths;\n\
         by default writes BENCH_6.json, with --check gates against a committed report,\n\
         with --json prints the report (incl. per-repeat raw samples) to stdout"
    );
}
