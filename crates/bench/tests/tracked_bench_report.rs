//! Schema tests for the tracked `BENCH_6.json` at the repository root:
//! the committed benchmark report must stay parseable by the workspace's
//! own JSON reader with the fields the CI gate and `docs/PERFORMANCE.md`
//! rely on. Regenerate it with `cargo run --release -p sbp-bench --bin
//! bps` after a hot-loop change.

use std::path::PathBuf;

use sbp_bench::bps::{BpsReport, LEGACY_SCHEMA, SCHEMA};
use sbp_sweep::json;

fn tracked_report() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read tracked {}: {e}", path.display()))
}

#[test]
fn tracked_report_parses_with_required_keys() {
    let text = tracked_report();
    // Raw structural pass with the sweep JSON reader first, so a failure
    // names the missing field rather than a downstream type error.
    let doc = json::parse(&text).expect("BENCH_6.json is valid JSON");
    let obj = doc.as_object().expect("top level is an object");
    // The committed report may predate the current schema by one rev:
    // `BpsReport::parse` accepts both, and the file is only regenerated
    // when the hot loop changes.
    let schema = json::get_str(obj, "schema").expect("schema");
    assert!(
        schema == SCHEMA || schema == LEGACY_SCHEMA,
        "tracked schema {schema:?} is neither {SCHEMA:?} nor {LEGACY_SCHEMA:?}"
    );
    for key in ["scale", "seed"] {
        json::get_f64(obj, key).unwrap_or_else(|e| panic!("{e}"));
    }
    for key in ["interval", "case"] {
        json::get_str(obj, key).unwrap_or_else(|e| panic!("{e}"));
    }
    let anchors = json::get(obj, "pre_pr_anchors")
        .expect("anchors present")
        .as_object()
        .expect("anchors object");
    json::get_str(anchors, "note").expect("provenance note");
    assert!(
        !json::get(anchors, "points")
            .expect("points")
            .as_array()
            .expect("points array")
            .is_empty(),
        "anchor points present"
    );
}

#[test]
fn tracked_report_series_are_positive_and_cover_the_grid() {
    let report = BpsReport::parse(&tracked_report()).expect("typed parse");
    assert_eq!(
        report.series.len(),
        6,
        "2 predictors × 3 mechanisms tracked"
    );
    for s in &report.series {
        assert!(s.branches > 0, "empty series {s:?}");
        assert!(
            s.scalar_bps > 0.0 && s.scalar_bps.is_finite(),
            "bad scalar_bps in {s:?}"
        );
        assert!(
            s.batched_bps > 0.0 && s.batched_bps.is_finite(),
            "bad batched_bps in {s:?}"
        );
        assert!(s.speedup > 0.0, "bad speedup in {s:?}");
        // The median repeat can never beat the best repeat, and with the
        // spread recorded it can't be slower than the worst either.
        for (label, median, best, spread) in [
            ("scalar", s.scalar_median_bps, s.scalar_bps, s.scalar_spread),
            (
                "batched",
                s.batched_median_bps,
                s.batched_bps,
                s.batched_spread,
            ),
        ] {
            assert!(
                median > 0.0 && median.is_finite(),
                "bad {label} median in {s:?}"
            );
            assert!(median <= best * 1.001, "{label} median beats best in {s:?}");
            assert!(
                median >= best * (1.0 - spread) * 0.999,
                "{label} median below worst in {s:?}"
            );
        }
        // Spreads are relative best-to-worst deltas: [0, 1) by
        // construction. Single repeats legitimately stall 2x on a shared
        // VM (the gated metric is the best-of ratio, which best-of-21
        // stabilizes), so the bound only catches corrupted values, not
        // honest noise.
        for (label, spread) in [("scalar", s.scalar_spread), ("batched", s.batched_spread)] {
            assert!(
                (0.0..0.9).contains(&spread),
                "{label} spread {spread} out of range in {s:?}"
            );
        }
        // The recorded speedup must be the recorded ratio (to the file's
        // own rounding), not an independently edited number.
        let ratio = s.batched_bps / s.scalar_bps;
        assert!(
            (s.speedup - ratio).abs() < 0.01,
            "speedup {} inconsistent with bps ratio {ratio} in {s:?}",
            s.speedup
        );
    }
    for predictor in ["Gshare", "TAGE_SC_L"] {
        for mechanism in ["Baseline", "CF", "Noisy-XOR-BP"] {
            assert!(
                report
                    .series
                    .iter()
                    .any(|s| s.predictor == predictor && s.mechanism == mechanism),
                "missing tracked series {predictor}/{mechanism}"
            );
        }
    }
    // The committed file is generated with smoke timings included.
    assert!(!report.smoke.is_empty(), "smoke entry timings missing");
    for t in &report.smoke {
        assert!(t.records > 0 && t.wall_seconds > 0.0, "bad smoke row {t:?}");
    }
    // A committed report must gate cleanly against itself.
    report.check_against(&report).expect("self-check passes");
}
