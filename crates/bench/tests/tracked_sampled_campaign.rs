//! Schema tests for the tracked `BENCH_7.json` at the repository root:
//! the sampled-campaign headline numbers (wall seconds per catalog entry
//! for an exact `SBP_SCALE=1` full-catalog `--check` run and the sampled
//! run of the same entries). The `paper-scale-check` CI job reads the
//! sampled total as its wall-time budget, and `docs/PERFORMANCE.md`
//! quotes the speedup, so the committed file must stay parseable and
//! internally consistent. Regenerated manually when the sampling
//! subsystem changes (see the file's own `note`).

use std::path::PathBuf;

use sbp_campaign::Catalog;
use sbp_sweep::json;

/// The total speedup the sampled campaign must deliver to stay worth
/// its extra machinery (and the bound quoted in docs/PERFORMANCE.md).
const MIN_SPEEDUP: f64 = 5.0;

fn tracked_report() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_7.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read tracked {}: {e}", path.display()))
}

/// Parses one `{"total_seconds": ..., "entries": {...}}` stanza and
/// checks every catalog entry is present with a positive time summing
/// (to rounding) to the recorded total. Returns the total.
fn checked_stanza(obj: &[(String, json::Value)], key: &str) -> f64 {
    let stanza = json::get(obj, key)
        .unwrap_or_else(|e| panic!("{e}"))
        .as_object()
        .unwrap_or_else(|| panic!("\"{key}\" is not an object"));
    let total = json::get_f64(stanza, "total_seconds").unwrap_or_else(|e| panic!("{e}"));
    assert!(total > 0.0 && total.is_finite(), "{key}: bad total {total}");
    let entries = json::get(stanza, "entries")
        .unwrap_or_else(|e| panic!("{e}"))
        .as_object()
        .unwrap_or_else(|| panic!("{key}.entries is not an object"));
    let mut sum = 0.0;
    for entry in Catalog::entries() {
        let secs = json::get_f64(entries, entry.name)
            .unwrap_or_else(|e| panic!("{key}: catalog entry missing: {e}"));
        assert!(
            secs > 0.0 && secs.is_finite(),
            "{key}.{}: bad wall seconds {secs}",
            entry.name
        );
        sum += secs;
    }
    assert_eq!(
        entries.len(),
        Catalog::entries().len(),
        "{key}.entries holds names outside the catalog"
    );
    assert!(
        (sum - total).abs() < 0.1 * entries.len() as f64,
        "{key}: entries sum to {sum}, total_seconds says {total}"
    );
    total
}

#[test]
fn tracked_sampled_campaign_report_is_consistent_and_fast_enough() {
    let doc = json::parse(&tracked_report()).expect("BENCH_7.json is valid JSON");
    let obj = doc.as_object().expect("top level is an object");
    assert_eq!(
        json::get_str(obj, "schema").expect("schema"),
        "sbp-bench/sampled-campaign/v1"
    );
    assert_eq!(
        json::get_f64(obj, "scale").expect("scale"),
        1.0,
        "the headline numbers are paper scale"
    );
    json::get_str(obj, "note").expect("provenance note");

    let exact_total = checked_stanza(obj, "exact");
    let sampled_total = checked_stanza(obj, "sampled");

    let speedup = json::get_f64(obj, "speedup").expect("speedup");
    let ratio = exact_total / sampled_total;
    assert!(
        (speedup - ratio).abs() < 0.1,
        "recorded speedup {speedup} inconsistent with totals ratio {ratio}"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "sampled campaign speedup {speedup} fell below the {MIN_SPEEDUP}x headline"
    );
}
