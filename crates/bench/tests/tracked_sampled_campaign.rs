//! Schema tests for the tracked `BENCH_8.json` at the repository root:
//! the hybrid sampled-campaign headline numbers (wall seconds per
//! catalog entry for an exact `SBP_SCALE=1` full-catalog `--check` run
//! and the `--gap-mode functional` sampled run of the same entries,
//! plus the storm-cell estimator-error table). The `paper-scale-check`
//! CI job reads the sampled total as its wall-time budget, and
//! `docs/PERFORMANCE.md` quotes the speedup and the error table, so
//! the committed file must stay parseable and internally consistent.
//! Regenerated manually when the sampling subsystem changes (see the
//! file's own `note`). `BENCH_7.json` (the pre-hybrid fast-forward
//! numbers) is kept for provenance but no longer gated.

use std::path::PathBuf;

use sbp_campaign::Catalog;
use sbp_sweep::json;

/// The total speedup the hybrid sampled campaign must deliver to stay
/// worth its extra machinery (and the bound quoted in
/// docs/PERFORMANCE.md).
const MIN_SPEEDUP: f64 = 5.0;

/// The worst sampled-vs-exact relative error any calibrated cell may
/// carry — the hybrid plans' reason to exist is holding the
/// storm-dominated cells inside this (the fast-forward sampler read
/// them up to ~35% low).
const MAX_CELL_REL_ERROR: f64 = 0.10;

fn tracked_report() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read tracked {}: {e}", path.display()))
}

/// The catalog entries the tracked report must cover: everything except
/// the `*_replay` twins, which need trace files recorded first and are
/// excluded from the paper-scale run for the same reason (the
/// `paper-scale-check` job's entry list applies the same filter).
fn tracked_entries() -> Vec<&'static str> {
    Catalog::entries()
        .iter()
        .map(|e| e.name)
        .filter(|n| !n.ends_with("_replay"))
        .collect()
}

/// Parses one `{"total_seconds": ..., "entries": {...}}` stanza and
/// checks every tracked catalog entry is present with a positive time
/// summing (to rounding) to the recorded total. Returns the total.
fn checked_stanza(obj: &[(String, json::Value)], key: &str) -> f64 {
    let stanza = json::get(obj, key)
        .unwrap_or_else(|e| panic!("{e}"))
        .as_object()
        .unwrap_or_else(|| panic!("\"{key}\" is not an object"));
    let total = json::get_f64(stanza, "total_seconds").unwrap_or_else(|e| panic!("{e}"));
    assert!(total > 0.0 && total.is_finite(), "{key}: bad total {total}");
    let entries = json::get(stanza, "entries")
        .unwrap_or_else(|e| panic!("{e}"))
        .as_object()
        .unwrap_or_else(|| panic!("{key}.entries is not an object"));
    let tracked = tracked_entries();
    let mut sum = 0.0;
    for name in &tracked {
        let secs = json::get_f64(entries, name)
            .unwrap_or_else(|e| panic!("{key}: catalog entry missing: {e}"));
        assert!(
            secs > 0.0 && secs.is_finite(),
            "{key}.{name}: bad wall seconds {secs}"
        );
        sum += secs;
    }
    assert_eq!(
        entries.len(),
        tracked.len(),
        "{key}.entries holds names outside the tracked (non-replay) catalog"
    );
    assert!(
        (sum - total).abs() < 0.1 * entries.len() as f64,
        "{key}: entries sum to {sum}, total_seconds says {total}"
    );
    total
}

#[test]
fn tracked_sampled_campaign_report_is_consistent_and_fast_enough() {
    let doc = json::parse(&tracked_report()).expect("BENCH_8.json is valid JSON");
    let obj = doc.as_object().expect("top level is an object");
    assert_eq!(
        json::get_str(obj, "schema").expect("schema"),
        "sbp-bench/sampled-campaign/v2"
    );
    assert_eq!(
        json::get_f64(obj, "scale").expect("scale"),
        1.0,
        "the headline numbers are paper scale"
    );
    assert_eq!(
        json::get_str(obj, "gap_mode").expect("gap_mode"),
        "functional",
        "the sampled stanza must be the hybrid run"
    );
    json::get_str(obj, "note").expect("provenance note");

    let exact_total = checked_stanza(obj, "exact");
    let sampled_total = checked_stanza(obj, "sampled");

    let speedup = json::get_f64(obj, "speedup").expect("speedup");
    let ratio = exact_total / sampled_total;
    assert!(
        (speedup - ratio).abs() < 0.1,
        "recorded speedup {speedup} inconsistent with totals ratio {ratio}"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "sampled campaign speedup {speedup} fell below the {MIN_SPEEDUP}x headline"
    );
}

#[test]
fn tracked_estimator_error_cells_stay_within_the_hybrid_bound() {
    let doc = json::parse(&tracked_report()).expect("BENCH_8.json is valid JSON");
    let obj = doc.as_object().expect("top level is an object");
    let stanza = json::get(obj, "estimator_error")
        .expect("estimator_error stanza")
        .as_object()
        .expect("estimator_error is an object");
    json::get_str(stanza, "note").expect("methodology note");
    let cells = json::get(stanza, "cells")
        .expect("cells")
        .as_array()
        .expect("cells is an array");
    assert!(
        cells.len() >= 4,
        "the calibration table must keep at least the four storm cells"
    );
    for cell in cells {
        let cell = cell.as_object().expect("cell is an object");
        let name = json::get_str(cell, "cell").expect("cell name");
        let exact = json::get_f64(cell, "exact").expect("exact mean");
        let sampled = json::get_f64(cell, "sampled").expect("sampled mean");
        assert!(
            exact > 0.0 && exact.is_finite() && sampled.is_finite(),
            "{name}: bad means exact={exact} sampled={sampled}"
        );
        let rel = (sampled - exact).abs() / exact;
        assert!(
            rel <= MAX_CELL_REL_ERROR,
            "{name}: sampled {sampled} is {:.1}% off exact {exact} — the \
             hybrid estimator bound is {:.0}%",
            rel * 100.0,
            MAX_CELL_REL_ERROR * 100.0
        );
    }
}
