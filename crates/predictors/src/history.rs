//! Branch history registers: global, path, folded and per-PC local
//! histories.
//!
//! Every history structure is *per hardware thread*: commercial SMT cores
//! keep architectural history registers per thread context, and doing so in
//! the model isolates the history registers themselves from cross-thread
//! effects, leaving the *tables* as the shared attack surface the paper
//! studies.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{KeyCtx, PackedTable, Pc, ThreadId};

/// A long global branch-direction history register (shift register of
/// outcomes, newest at position 0), bit-packed.
///
/// ```
/// use sbp_predictors::history::GlobalHistory;
///
/// let mut h = GlobalHistory::new(64);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // newest
/// assert!(h.bit(1));
/// assert_eq!(h.low_bits(2), 0b10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalHistory {
    bits: Vec<u64>,
    capacity: u32,
}

impl GlobalHistory {
    /// Creates an all-not-taken history of `capacity` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        GlobalHistory {
            bits: vec![0; capacity.div_ceil(64) as usize],
            capacity,
        }
    }

    /// Shifts in a new outcome (newest at bit 0). Returns the evicted
    /// oldest bit (at position `capacity`), needed by folded histories.
    pub fn push(&mut self, taken: bool) -> bool {
        let evicted = self.bit(self.capacity - 1);
        let mut carry = taken as u64;
        for word in &mut self.bits {
            let out = *word >> 63;
            *word = (*word << 1) | carry;
            carry = out;
        }
        let top = self.capacity % 64;
        if top != 0 {
            let last = self.bits.len() - 1;
            self.bits[last] &= mask_u64(top);
        }
        evicted
    }

    /// The outcome `age` branches ago (0 = newest).
    ///
    /// # Panics
    ///
    /// Panics if `age >= capacity`.
    pub fn bit(&self, age: u32) -> bool {
        assert!(age < self.capacity, "history age out of range");
        (self.bits[(age / 64) as usize] >> (age % 64)) & 1 == 1
    }

    /// The newest `n` outcomes as an integer (`n <= 64`).
    pub fn low_bits(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = self.bits[0];
        if self.bits.len() > 1 && n > 0 {
            // low word already holds the newest 64 bits.
        }
        v &= mask_u64(n.min(self.capacity));
        v
    }

    /// History capacity in bits.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Resets all history to not-taken.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

/// A path history register: low bits of recent branch addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathHistory {
    value: u64,
    bits: u32,
}

impl PathHistory {
    /// Creates a `bits`-wide path history.
    pub fn new(bits: u32) -> Self {
        PathHistory {
            value: 0,
            bits: bits.min(64),
        }
    }

    /// Shifts in one address bit of the branch at `pc`.
    pub fn push(&mut self, pc: Pc) {
        self.value = ((self.value << 1) | (pc.word() & 1)) & mask_u64(self.bits);
    }

    /// Current packed path history.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Resets the register.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

/// Incrementally folded history (Seznec's circular-shift-register scheme),
/// compressing an `original_len`-bit history into `compressed_len` bits for
/// TAGE index/tag computation in O(1) per branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldedHistory {
    comp: u64,
    original_len: u32,
    compressed_len: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates a fold of an `original_len`-bit history into
    /// `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is 0 or > 63.
    pub fn new(original_len: u32, compressed_len: u32) -> Self {
        assert!(
            (1..64).contains(&compressed_len),
            "compressed length must be 1..=63"
        );
        FoldedHistory {
            comp: 0,
            original_len,
            compressed_len,
            outpoint: original_len % compressed_len,
        }
    }

    /// Updates the fold after the global history pushed `new_bit` and
    /// evicted `evicted_bit` (the bit that fell off position
    /// `original_len`).
    pub fn update(&mut self, new_bit: bool, evicted_bit: bool) {
        self.comp = (self.comp << 1) | new_bit as u64;
        self.comp ^= (evicted_bit as u64) << self.outpoint;
        self.comp ^= self.comp >> self.compressed_len;
        self.comp &= mask_u64(self.compressed_len);
    }

    /// Current folded value.
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// Resets the fold (must accompany a [`GlobalHistory::clear`]).
    pub fn clear(&mut self) {
        self.comp = 0;
    }

    /// Recomputes the fold from scratch over `history`; used by tests to
    /// validate the incremental update.
    pub fn recompute(&mut self, history: &GlobalHistory) {
        self.comp = 0;
        // Fold oldest-to-newest so the incremental and batch versions agree.
        for age in (0..self.original_len.min(history.capacity())).rev() {
            let bit = history.bit(age);
            self.comp = (self.comp << 1) | bit as u64;
            self.comp ^= self.comp >> self.compressed_len;
            self.comp &= mask_u64(self.compressed_len);
        }
    }
}

/// A first-level local history table: per-PC pattern registers stored in a
/// [`PackedTable`] (and therefore subject to content/index encoding).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalHistoryTable {
    table: PackedTable,
    pattern_bits: u32,
}

impl LocalHistoryTable {
    /// Creates a table of `entries` local histories of `pattern_bits` each.
    pub fn new(entries: usize, pattern_bits: u32) -> Self {
        LocalHistoryTable {
            table: PackedTable::new(entries, pattern_bits, 0),
            pattern_bits,
        }
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.table = self.table.with_owner_tags();
        self
    }

    /// Table index for `pc`.
    fn index_of(&self, pc: Pc) -> usize {
        pc.btb_index(self.table.index_bits())
    }

    /// Reads the local pattern for `pc` under the thread's keys.
    pub fn pattern(&self, pc: Pc, ctx: &KeyCtx) -> u64 {
        self.table.get(self.index_of(pc), ctx)
    }

    /// Shifts the branch outcome into `pc`'s local pattern.
    pub fn record(&mut self, pc: Pc, taken: bool, ctx: &KeyCtx) {
        let idx = self.index_of(pc);
        self.table.update(idx, ctx, |p| {
            ((p << 1) | taken as u64) & mask_u64(self.pattern_bits)
        });
    }

    /// Pattern width in bits.
    pub fn pattern_bits(&self) -> u32 {
        self.pattern_bits
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Clears all local histories.
    pub fn flush_all(&mut self) {
        self.table.flush_all();
    }

    /// Clears local histories owned by `thread` (needs owner tags).
    pub fn flush_thread(&mut self, thread: ThreadId) {
        self.table.flush_thread(thread);
    }

    /// Storage bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::KeyPair;

    #[test]
    fn global_history_shifts() {
        let mut h = GlobalHistory::new(8);
        for taken in [true, false, true, true] {
            h.push(taken);
        }
        // Newest first: T T F T -> bit0=1(bit for last push true)
        assert!(h.bit(0));
        assert!(h.bit(1));
        assert!(!h.bit(2));
        assert!(h.bit(3));
        assert_eq!(h.low_bits(4), 0b1011);
    }

    #[test]
    fn global_history_eviction_across_words() {
        let mut h = GlobalHistory::new(130);
        // Push a single taken then 129 not-taken: the taken bit must ride
        // to the oldest position and then be evicted.
        h.push(true);
        for _ in 0..129 {
            assert!(!h.push(false));
        }
        assert!(h.bit(129));
        let evicted = h.push(false);
        assert!(evicted, "the taken bit should fall off the end");
        assert!(!h.bit(129));
    }

    #[test]
    fn global_history_clear() {
        let mut h = GlobalHistory::new(16);
        h.push(true);
        h.clear();
        assert_eq!(h.low_bits(16), 0);
    }

    #[test]
    #[should_panic(expected = "history age out of range")]
    fn global_history_bounds() {
        GlobalHistory::new(8).bit(8);
    }

    #[test]
    fn path_history_tracks_pc_bits() {
        let mut p = PathHistory::new(4);
        p.push(Pc::new(0x4)); // word 0x1, bit 1
        p.push(Pc::new(0x8)); // word 0x2, bit 0
        p.push(Pc::new(0xc)); // word 0x3, bit 1
        assert_eq!(p.value(), 0b101);
        p.clear();
        assert_eq!(p.value(), 0);
    }

    #[test]
    fn folded_history_matches_batch_recompute() {
        for (orig, comp) in [(12u32, 10u32), (27, 10), (44, 9), (63, 11), (130, 12)] {
            let mut h = GlobalHistory::new(orig);
            let mut inc = FoldedHistory::new(orig, comp);
            let mut rng = sbp_types::rng::Xoshiro256::new(orig as u64 * 31 + comp as u64);
            for _ in 0..500 {
                let bit = rng.chance(0.5);
                let evicted = h.push(bit);
                inc.update(bit, evicted);
            }
            let mut batch = FoldedHistory::new(orig, comp);
            batch.recompute(&h);
            assert_eq!(inc.value(), batch.value(), "orig={orig} comp={comp}");
        }
    }

    #[test]
    fn folded_history_clear() {
        let mut f = FoldedHistory::new(20, 7);
        f.update(true, false);
        assert_ne!(f.value(), 0);
        f.clear();
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn local_history_table_roundtrip() {
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        let mut lht = LocalHistoryTable::new(1024, 11);
        let pc = Pc::new(0x1234);
        lht.record(pc, true, &ctx);
        lht.record(pc, true, &ctx);
        lht.record(pc, false, &ctx);
        assert_eq!(lht.pattern(pc, &ctx), 0b110);
        assert_eq!(lht.pattern_bits(), 11);
        assert_eq!(lht.len(), 1024);
    }

    #[test]
    fn local_history_encoded_isolation() {
        let a = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(5));
        let b = KeyCtx::xor(ThreadId::new(1), KeyPair::from_random(6));
        let mut lht = LocalHistoryTable::new(256, 11);
        let pc = Pc::new(0x888);
        for _ in 0..11 {
            lht.record(pc, true, &a);
        }
        assert_eq!(lht.pattern(pc, &a), mask_u64(11));
        // Different key: decorrelated pattern.
        assert_ne!(lht.pattern(pc, &b), mask_u64(11));
    }

    #[test]
    fn local_history_flushes() {
        let mut ctx = KeyCtx::disabled(ThreadId::new(0));
        ctx.owner_tracking = true;
        let mut lht = LocalHistoryTable::new(64, 8).with_owner_tags();
        let pc = Pc::new(0x40);
        lht.record(pc, true, &ctx);
        assert_ne!(lht.pattern(pc, &ctx), 0);
        lht.flush_thread(ThreadId::new(0));
        assert_eq!(lht.pattern(pc, &ctx), 0);
        lht.record(pc, true, &ctx);
        lht.flush_all();
        assert_eq!(lht.pattern(pc, &ctx), 0);
    }

    #[test]
    fn storage_accounting() {
        let lht = LocalHistoryTable::new(2048, 11);
        assert_eq!(lht.storage_bits(), 2048 * 11);
    }
}
