//! TAGE-SC-L: TAGE + Statistical Corrector + Loop predictor (Seznec,
//! CBP-5).
//!
//! This is a faithful-in-structure, simplified-in-detail implementation:
//! the TAGE core uses 12 tagged tables (the paper's CBP-5 version uses two
//! bank-interleaved groups of 10 and 20 banks), the loop predictor is the
//! 256-entry 4-way component, and the statistical corrector sums a bias
//! table with global-history, path-history, IMLI and local-history GEHL
//! components, with the usual adaptive update threshold. The simplification
//! is recorded in `DESIGN.md`; it preserves the property the paper's
//! evaluation depends on — the most accurate predictor of the set, with the
//! largest state and therefore the largest warm-up loss under isolation.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, PackedTable, Pc, ThreadId};

use crate::counter::{sat_dec, sat_inc, signed_update, to_signed};
use crate::gehl::GehlTable;
use crate::history::LocalHistoryTable;
use crate::loop_pred::LoopPredictor;
use crate::tage::{Tage, TageConfig, TaggedTableConfig};

/// Per-thread statistical corrector history inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct ScHistory {
    /// Recent global outcomes (newest at bit 0).
    ghist: u64,
    /// Recent branch address bits.
    path: u64,
    /// Inner-most-loop-iteration proxy: consecutive taken streak.
    imli: u64,
}

impl ScHistory {
    fn push(&mut self, pc: Pc, taken: bool) {
        self.ghist = (self.ghist << 1) | taken as u64;
        self.path = (self.path << 1) | (pc.word() & 1);
        self.imli = if taken { (self.imli + 1).min(1023) } else { 0 };
    }

    /// Resets all SC history inputs (used by ablations and future
    /// SMT-context-clear extensions).
    #[allow(dead_code)]
    fn clear(&mut self) {
        *self = ScHistory::default();
    }
}

/// TAGE-SC-L predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TageScL {
    tage: Tage,
    loops: LoopPredictor,
    use_loop: u64,
    // Statistical corrector state.
    bias: PackedTable,
    gehl_global: Vec<GehlTable>,
    gehl_path: GehlTable,
    gehl_imli: GehlTable,
    gehl_local: Vec<GehlTable>,
    local_hist: LocalHistoryTable,
    sc_hist: Vec<ScHistory>,
    /// Adaptive SC update threshold (O-GEHL style).
    threshold: i64,
    threshold_ctr: i64,
    last: Option<LastScl>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LastScl {
    thread: u8,
    pc_word: u64,
    tage_pred: bool,
    pre_pred: bool,
    loop_valid: bool,
    loop_pred: bool,
    sum: i64,
    final_pred: bool,
}

const BIAS_CTR_BITS: u32 = 6;
/// Weight given to the TAGE/loop pre-prediction inside the SC sum.
const PRE_PRED_WEIGHT: i64 = 16;

impl TageScL {
    /// The TAGE core configuration behind [`TageScL::paper`]: 12 tagged
    /// tables with geometric lengths 4..640, 1K entries each. Public so
    /// geometry consumers (the hardware-cost join) derive table shapes
    /// from the same struct the predictor instantiates.
    pub fn paper_tage_config(threads: usize) -> TageConfig {
        let lens = [4u32, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640];
        TageConfig {
            base_entries: 16384,
            base_ctr_bits: 2,
            tagged: lens
                .iter()
                .enumerate()
                .map(|(i, &history_len)| TaggedTableConfig {
                    log_entries: 10,
                    tag_bits: 8 + (i as u32 + 1) / 3,
                    history_len,
                })
                .collect(),
            ctr_bits: 3,
            u_bits: 2,
            threads,
            u_reset_period: 256 * 1024,
        }
    }

    /// Creates a TAGE-SC-L predictor for `threads` hardware contexts.
    pub fn new(threads: usize) -> Self {
        let cfg = Self::paper_tage_config(threads);
        TageScL {
            tage: Tage::new(cfg),
            loops: LoopPredictor::paper(),
            use_loop: 64,
            bias: PackedTable::new(4096, BIAS_CTR_BITS, 0),
            gehl_global: vec![
                GehlTable::new(10, 6, 6),
                GehlTable::new(10, 6, 13),
                GehlTable::new(10, 6, 27),
            ],
            gehl_path: GehlTable::new(10, 6, 16),
            gehl_imli: GehlTable::new(8, 6, 10),
            gehl_local: vec![GehlTable::new(10, 6, 11), GehlTable::new(8, 6, 5)],
            local_hist: LocalHistoryTable::new(256, 11),
            sc_hist: (0..threads.max(1)).map(|_| ScHistory::default()).collect(),
            threshold: 20,
            threshold_ctr: 0,
            last: None,
        }
    }

    /// The paper's gem5 configuration (≈ 66 KB class).
    pub fn paper(threads: usize) -> Self {
        TageScL::new(threads)
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.tage = self.tage.with_owner_tags();
        self.loops = self.loops.with_owner_tags();
        self.bias = self.bias.with_owner_tags();
        self.gehl_global = self
            .gehl_global
            .into_iter()
            .map(GehlTable::with_owner_tags)
            .collect();
        self.gehl_path = self.gehl_path.with_owner_tags();
        self.gehl_imli = self.gehl_imli.with_owner_tags();
        self.gehl_local = self
            .gehl_local
            .into_iter()
            .map(GehlTable::with_owner_tags)
            .collect();
        self.local_hist = self.local_hist.with_owner_tags();
        self
    }

    fn bias_index(&self, pc: Pc, pre_pred: bool) -> usize {
        let bits = self.bias.index_bits();
        ((pc.word() << 1 | pre_pred as u64) & mask_u64(bits)) as usize
    }

    /// Computes the SC sum (positive = taken) for a branch given the
    /// TAGE/loop pre-prediction.
    fn sc_sum(&self, info: BranchInfo, pre_pred: bool, ctx: &KeyCtx) -> i64 {
        let h = &self.sc_hist[info.thread.index()];
        let mut sum: i64 = to_signed(
            self.bias.get(self.bias_index(info.pc, pre_pred), ctx),
            BIAS_CTR_BITS,
        ) * 2;
        for g in &self.gehl_global {
            sum += 2 * g.read(info.pc, h.ghist, ctx) + 1;
        }
        sum += 2 * self.gehl_path.read(info.pc, h.path, ctx) + 1;
        sum += 2 * self.gehl_imli.read(info.pc, h.imli, ctx) + 1;
        let local = self.local_hist.pattern(info.pc, ctx);
        for g in &self.gehl_local {
            sum += 2 * g.read(info.pc, local, ctx) + 1;
        }
        sum + if pre_pred {
            PRE_PRED_WEIGHT
        } else {
            -PRE_PRED_WEIGHT
        }
    }

    fn train_sc(&mut self, info: BranchInfo, pre_pred: bool, taken: bool, ctx: &KeyCtx) {
        let h = self.sc_hist[info.thread.index()];
        let bidx = self.bias_index(info.pc, pre_pred);
        self.bias
            .update(bidx, ctx, |c| signed_update(c, BIAS_CTR_BITS, taken));
        for g in &mut self.gehl_global {
            g.train(info.pc, h.ghist, taken, ctx);
        }
        self.gehl_path.train(info.pc, h.path, taken, ctx);
        self.gehl_imli.train(info.pc, h.imli, taken, ctx);
        let local = self.local_hist.pattern(info.pc, ctx);
        for g in &mut self.gehl_local {
            g.train(info.pc, local, taken, ctx);
        }
    }

    /// Access to the underlying TAGE engine (tests / ablations).
    pub fn tage(&self) -> &Tage {
        &self.tage
    }
}

impl DirectionPredictor for TageScL {
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool {
        let tl = self.tage.lookup(info, ctx);
        let lp = self.loops.lookup(info, ctx);
        let used_loop = lp.valid && self.use_loop >= 64;
        let pre_pred = if used_loop { lp.taken } else { tl.pred };
        let sum = self.sc_sum(info, pre_pred, ctx);
        // The SC overrides the pre-prediction only when confident.
        let final_pred = if sum.unsigned_abs() as i64 >= self.threshold {
            sum >= 0
        } else {
            pre_pred
        };
        self.last = Some(LastScl {
            thread: info.thread.index() as u8,
            pc_word: info.pc.word(),
            tage_pred: tl.pred,
            pre_pred,
            loop_valid: lp.valid,
            loop_pred: lp.taken,
            sum,
            final_pred,
        });
        final_pred
    }

    fn update(&mut self, info: BranchInfo, taken: bool, _predicted: bool, ctx: &KeyCtx) {
        let last = self
            .last
            .take()
            .filter(|l| l.thread as usize == info.thread.index() && l.pc_word == info.pc.word());
        if let Some(l) = last {
            // Loop gate training.
            if l.loop_valid && l.loop_pred != l.tage_pred {
                self.use_loop = if l.loop_pred == taken {
                    sat_inc(self.use_loop, 7)
                } else {
                    sat_dec(self.use_loop)
                };
            }
            // SC training on mispredict or low confidence.
            let sc_pred = l.sum >= 0;
            let low_conf = l.sum.unsigned_abs() as i64 <= self.threshold;
            if sc_pred != taken || low_conf {
                self.train_sc(info, l.pre_pred, taken, ctx);
            }
            // Adaptive threshold (O-GEHL style): balance flips.
            if sc_pred != l.pre_pred {
                let sc_right = sc_pred == taken;
                self.threshold_ctr += if sc_right { -1 } else { 1 };
                if self.threshold_ctr >= 32 {
                    self.threshold = (self.threshold + 1).min(127);
                    self.threshold_ctr = 0;
                } else if self.threshold_ctr <= -32 {
                    self.threshold = (self.threshold - 1).max(4);
                    self.threshold_ctr = 0;
                }
            }
        }
        self.loops.train(info, taken, ctx);
        self.tage.train(info, taken, ctx);
        // Update SC histories last.
        self.local_hist.record(info.pc, taken, ctx);
        self.sc_hist[info.thread.index()].push(info.pc, taken);
    }

    fn flush_all(&mut self) {
        self.tage.flush_tables();
        self.loops.flush_all();
        self.bias.flush_all();
        for g in &mut self.gehl_global {
            g.flush_all();
        }
        self.gehl_path.flush_all();
        self.gehl_imli.flush_all();
        for g in &mut self.gehl_local {
            g.flush_all();
        }
        self.local_hist.flush_all();
        self.last = None;
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        self.tage.flush_thread_tables(thread);
        self.loops.flush_thread(thread);
        self.bias.flush_thread(thread);
        for g in &mut self.gehl_global {
            g.flush_thread(thread);
        }
        self.gehl_path.flush_thread(thread);
        self.gehl_imli.flush_thread(thread);
        for g in &mut self.gehl_local {
            g.flush_thread(thread);
        }
        self.local_hist.flush_thread(thread);
        self.last = None;
    }

    fn storage_bits(&self) -> u64 {
        self.tage.storage_bits()
            + self.loops.storage_bits()
            + self.bias.storage_bits()
            + self
                .gehl_global
                .iter()
                .map(GehlTable::storage_bits)
                .sum::<u64>()
            + self.gehl_path.storage_bits()
            + self.gehl_imli.storage_bits()
            + self
                .gehl_local
                .iter()
                .map(GehlTable::storage_bits)
                .sum::<u64>()
            + self.local_hist.storage_bits()
    }

    fn name(&self) -> &'static str {
        "tage_sc_l"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::BranchKind;

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn instantiates_with_plausible_size() {
        let p = TageScL::paper(2);
        let kb = p.storage_bits() as f64 / 8192.0;
        assert!((20.0..80.0).contains(&kb), "TAGE-SC-L size {kb} KB");
        assert_eq!(p.name(), "tage_sc_l");
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = TageScL::paper(1);
        let c = ctx();
        let i = info(0x600);
        let mut correct = 0;
        for n in 0..300 {
            let pr = p.predict(i, &c);
            if n >= 50 && pr {
                correct += 1;
            }
            p.update(i, true, pr, &c);
        }
        assert!(correct >= 230, "correct={correct}");
    }

    #[test]
    fn learns_global_pattern() {
        let mut p = TageScL::paper(1);
        let c = ctx();
        let i = info(0x77c);
        let pattern = [true, false, false, true, true, false];
        let mut correct = 0;
        let total = 1500;
        for n in 0..total {
            let taken = pattern[n % pattern.len()];
            let pr = p.predict(i, &c);
            if n >= 600 && pr == taken {
                correct += 1;
            }
            p.update(i, taken, pr, &c);
        }
        let acc = correct as f64 / (total - 600) as f64;
        assert!(acc > 0.85, "pattern accuracy {acc}");
    }

    #[test]
    fn statistically_biased_branch_uses_sc() {
        // 85%-taken branch with no pattern: the SC specializes in exactly
        // this case. Require better-than-bimodal-cold behavior overall.
        let mut p = TageScL::paper(1);
        let c = ctx();
        let i = info(0x1200);
        let mut rng = sbp_types::rng::Xoshiro256::new(33);
        let mut correct = 0;
        let total = 3000;
        for n in 0..total {
            let taken = rng.chance(0.85);
            let pr = p.predict(i, &c);
            if n >= 500 && pr == taken {
                correct += 1;
            }
            p.update(i, taken, pr, &c);
        }
        let acc = correct as f64 / (total - 500) as f64;
        assert!(acc > 0.78, "biased accuracy {acc}");
    }

    #[test]
    fn flushes_cleanly() {
        let mut p = TageScL::paper(1);
        let c = ctx();
        let i = info(0x2000);
        for _ in 0..300 {
            let pr = p.predict(i, &c);
            p.update(i, true, pr, &c);
        }
        p.flush_all();
        let pr = p.predict(i, &c);
        p.update(i, true, pr, &c);
        // Also exercise the precise-flush path (no owner tags -> no-op).
        p.flush_thread(ThreadId::new(0));
    }

    #[test]
    fn loop_component_handles_long_loops() {
        let mut p = TageScL::paper(1);
        let c = ctx();
        let i = info(0x3000);
        let trip = 70u64;
        let mut exit_errors = 0;
        let mut exits = 0;
        for it in 0..50 {
            for k in 0..trip {
                let taken = k + 1 < trip;
                let pr = p.predict(i, &c);
                if !taken && it >= 25 {
                    exits += 1;
                    if pr != taken {
                        exit_errors += 1;
                    }
                }
                p.update(i, taken, pr, &c);
            }
        }
        assert!(exits >= 20);
        assert!(
            exit_errors as f64 / (exits as f64) < 0.35,
            "long-loop exits mispredicted {exit_errors}/{exits}"
        );
    }
}
