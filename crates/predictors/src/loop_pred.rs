//! Loop predictor: recognizes branches with a constant trip count.
//!
//! Modeled after the LTAGE / TAGE-SC-L loop component: a small 4-way
//! set-associative table whose entries track the observed iteration count
//! of a loop-closing branch and predict "not taken" exactly at the exit
//! iteration once confident.
//!
//! Entries are packed into encoded [`PackedTable`] words so that XOR-BP
//! content encoding covers the loop history too (the paper encodes "both
//! direction and destination histories").

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{BranchInfo, KeyCtx, PackedTable, Pc, ThreadId};

/// Field widths for the packed loop entry.
const TAG_BITS: u32 = 10;
const COUNT_BITS: u32 = 12;
const CONF_BITS: u32 = 3;
/// Packed entry: tag | past_count | current_count | confidence.
const ENTRY_BITS: u32 = TAG_BITS + 2 * COUNT_BITS + CONF_BITS;
/// Confidence needed before the loop prediction is used.
const CONF_THRESHOLD: u64 = 3;

/// A decoded loop table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct LoopEntry {
    tag: u64,
    past_count: u64,
    current_count: u64,
    confidence: u64,
}

impl LoopEntry {
    fn unpack(word: u64) -> Self {
        let mut w = word;
        let tag = w & mask_u64(TAG_BITS);
        w >>= TAG_BITS;
        let past_count = w & mask_u64(COUNT_BITS);
        w >>= COUNT_BITS;
        let current_count = w & mask_u64(COUNT_BITS);
        w >>= COUNT_BITS;
        let confidence = w & mask_u64(CONF_BITS);
        LoopEntry {
            tag,
            past_count,
            current_count,
            confidence,
        }
    }

    fn pack(self) -> u64 {
        self.tag
            | (self.past_count << TAG_BITS)
            | (self.current_count << (TAG_BITS + COUNT_BITS))
            | (self.confidence << (TAG_BITS + 2 * COUNT_BITS))
    }

    fn is_empty(self) -> bool {
        self.tag == 0 && self.past_count == 0 && self.confidence == 0
    }
}

/// The result of a loop predictor lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the entry is confident enough to override TAGE.
    pub valid: bool,
}

/// The loop predictor (default: 64 sets × 4 ways = 256 entries, as in the
/// paper's TAGE-SC-L description).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopPredictor {
    ways: Vec<PackedTable>,
    sets_bits: u32,
    last: Option<(u8, u64, usize, Option<usize>)>, // thread, pc_word, set, way
}

impl LoopPredictor {
    /// Creates a loop predictor with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is 0.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways > 0, "at least one way required");
        LoopPredictor {
            ways: (0..ways)
                .map(|_| PackedTable::new(sets, ENTRY_BITS, 0))
                .collect(),
            sets_bits: (sets as u64).trailing_zeros(),
            last: None,
        }
    }

    /// The paper's 256-entry 4-way configuration.
    pub fn paper() -> Self {
        LoopPredictor::new(64, 4)
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.ways = self
            .ways
            .into_iter()
            .map(PackedTable::with_owner_tags)
            .collect();
        self
    }

    fn set_of(&self, pc: Pc) -> usize {
        pc.btb_index(self.sets_bits)
    }

    fn tag_of(&self, pc: Pc) -> u64 {
        let t = pc.tag(self.sets_bits, TAG_BITS);
        // Tag 0 is the "empty" sentinel; remap.
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// Looks up the loop prediction for a branch.
    pub fn lookup(&mut self, info: BranchInfo, ctx: &KeyCtx) -> LoopPrediction {
        let set = self.set_of(info.pc);
        let tag = self.tag_of(info.pc);
        for (w, table) in self.ways.iter().enumerate() {
            let e = LoopEntry::unpack(table.get(set, ctx));
            if e.tag == tag {
                self.last = Some((info.thread.index() as u8, info.pc.word(), set, Some(w)));
                let exit_now = e.current_count + 1 == e.past_count || e.past_count == 0;
                return LoopPrediction {
                    taken: !exit_now || e.past_count == 0,
                    valid: e.confidence >= CONF_THRESHOLD && e.past_count > 0,
                };
            }
        }
        self.last = Some((info.thread.index() as u8, info.pc.word(), set, None));
        LoopPrediction {
            taken: true,
            valid: false,
        }
    }

    /// Trains the loop predictor with the resolved direction.
    pub fn train(&mut self, info: BranchInfo, taken: bool, ctx: &KeyCtx) {
        let (set, way) = match self.last.take() {
            Some((t, w, set, way)) if t as usize == info.thread.index() && w == info.pc.word() => {
                (set, way)
            }
            _ => {
                let _ = self.lookup(info, ctx);
                match self.last.take() {
                    Some((_, _, set, way)) => (set, way),
                    None => return,
                }
            }
        };
        let tag = self.tag_of(info.pc);
        match way {
            Some(w) => {
                let mut e = LoopEntry::unpack(self.ways[w].get(set, ctx));
                if e.tag != tag {
                    return; // entry was reclaimed between lookup and train
                }
                if taken {
                    e.current_count = (e.current_count + 1) & mask_u64(COUNT_BITS);
                    // Overran the recorded trip count: the recorded count is
                    // wrong, restart learning.
                    if e.past_count != 0 && e.current_count >= e.past_count {
                        e.past_count = 0;
                        e.confidence = 0;
                    }
                } else {
                    // Loop exit: compare against the recorded trip count.
                    let trip = e.current_count + 1;
                    if e.past_count == trip {
                        e.confidence = (e.confidence + 1).min(mask_u64(CONF_BITS));
                    } else {
                        e.past_count = trip;
                        e.confidence = 0;
                    }
                    e.current_count = 0;
                }
                self.ways[w].set(set, e.pack(), ctx);
            }
            None if !taken => {
                // Allocate on a not-taken (potential loop exit) only; find a
                // free way.
                for table in &mut self.ways {
                    let e = LoopEntry::unpack(table.get(set, ctx));
                    if e.is_empty() {
                        let fresh = LoopEntry {
                            tag,
                            past_count: 1,
                            current_count: 0,
                            confidence: 0,
                        };
                        table.set(set, fresh.pack(), ctx);
                        break;
                    }
                }
            }
            None => {}
        }
    }

    /// Complete Flush.
    pub fn flush_all(&mut self) {
        for t in &mut self.ways {
            t.flush_all();
        }
        self.last = None;
    }

    /// Precise Flush of one thread's entries.
    pub fn flush_thread(&mut self, thread: ThreadId) {
        for t in &mut self.ways {
            t.flush_thread(thread);
        }
        self.last = None;
    }

    /// Storage bits.
    pub fn storage_bits(&self) -> u64 {
        self.ways.iter().map(PackedTable::storage_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, KeyPair};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    /// Drives `iters` full loop executions with trip count `trip` and
    /// returns (correct_at_exit, exits_after_warmup).
    fn run_loop(p: &mut LoopPredictor, trip: u64, iters: usize) -> (usize, usize) {
        let c = ctx();
        let i = info(0xbeef0);
        let mut exit_correct = 0;
        let mut exits = 0;
        for it in 0..iters {
            for k in 0..trip {
                let taken = k + 1 < trip; // last iteration exits
                let pred = p.lookup(i, &c);
                if !taken && it >= 4 {
                    exits += 1;
                    if pred.valid && !pred.taken {
                        exit_correct += 1;
                    }
                }
                p.train(i, taken, &c);
            }
        }
        (exit_correct, exits)
    }

    #[test]
    fn entry_packing_roundtrip() {
        let e = LoopEntry {
            tag: 0x2aa,
            past_count: 1234,
            current_count: 777,
            confidence: 5,
        };
        assert_eq!(LoopEntry::unpack(e.pack()), e);
    }

    #[test]
    fn learns_constant_trip_count() {
        let mut p = LoopPredictor::paper();
        let (correct, exits) = run_loop(&mut p, 10, 30);
        assert!(exits > 0);
        assert!(
            correct as f64 / exits as f64 > 0.9,
            "loop exit prediction {correct}/{exits}"
        );
    }

    #[test]
    fn irregular_loop_never_gains_confidence() {
        let mut p = LoopPredictor::paper();
        let c = ctx();
        let i = info(0x500);
        let mut rng = sbp_types::rng::Xoshiro256::new(8);
        let mut confident = 0;
        for _ in 0..600 {
            let taken = rng.chance(0.5);
            let pred = p.lookup(i, &c);
            if pred.valid {
                confident += 1;
            }
            p.train(i, taken, &c);
        }
        assert!(
            confident < 60,
            "random branch got confident {confident} times"
        );
    }

    #[test]
    fn rekey_invalidates_loop_entries() {
        let mut p = LoopPredictor::paper();
        let k1 = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(4));
        let i = info(0xbeef0);
        // Warm up under key 1.
        for _ in 0..20 {
            for k in 0..8u64 {
                let _ = p.lookup(i, &k1);
                p.train(i, k + 1 < 8, &k1);
            }
        }
        let warm = p.lookup(i, &k1);
        p.train(i, true, &k1);
        assert!(warm.valid || warm.taken);
        // Rekey: the tag decodes to garbage, no confident hit.
        let k2 = k1.rekeyed(KeyPair::from_random(5));
        let cold = p.lookup(i, &k2);
        assert!(!cold.valid, "loop entry survived rekey");
        p.train(i, true, &k2);
    }

    #[test]
    fn flush_clears_entries() {
        let mut p = LoopPredictor::paper();
        let (c1, e1) = run_loop(&mut p, 6, 20);
        assert!(c1 as f64 / e1 as f64 > 0.9);
        p.flush_all();
        let c = ctx();
        let pred = p.lookup(info(0xbeef0), &c);
        assert!(!pred.valid);
        p.train(info(0xbeef0), true, &c);
    }

    #[test]
    fn storage_is_about_paper_size() {
        // 256 entries × 37 bits ≈ 1.2 KB (paper: 256 × 52 bits; our packed
        // entry is narrower).
        let p = LoopPredictor::paper();
        assert_eq!(p.storage_bits(), 256 * ENTRY_BITS as u64);
    }
}
