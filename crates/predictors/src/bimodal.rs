//! Bimodal (per-PC 2-bit counter) direction predictor.
//!
//! Used standalone as the simplest PHT and as the base component of TAGE.

use serde::{Deserialize, Serialize};

use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, PackedTable, Pc, ThreadId};

use crate::counter::{counter_taken, sat_update, weak_not_taken};

/// A bimodal predictor: a table of `entries` saturating counters of
/// `ctr_bits`, indexed directly by the branch PC.
///
/// ```
/// use sbp_predictors::bimodal::Bimodal;
/// use sbp_types::{BranchInfo, BranchKind, DirectionPredictor, KeyCtx, Pc, ThreadId};
///
/// let mut p = Bimodal::new(1024, 2);
/// let ctx = KeyCtx::disabled(ThreadId::new(0));
/// let info = BranchInfo::new(ThreadId::new(0), Pc::new(0x40), BranchKind::Conditional);
/// for _ in 0..4 {
///     let pred = p.predict(info, &ctx);
///     p.update(info, true, pred, &ctx);
/// }
/// assert!(p.predict(info, &ctx)); // trained taken
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bimodal {
    table: PackedTable,
    ctr_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters of `ctr_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `ctr_bits` is 0.
    pub fn new(entries: usize, ctr_bits: u32) -> Self {
        Bimodal {
            table: PackedTable::new(entries, ctr_bits, weak_not_taken(ctr_bits)),
            ctr_bits,
        }
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.table = self.table.with_owner_tags();
        self
    }

    fn index_of(&self, pc: Pc) -> usize {
        pc.btb_index(self.table.index_bits())
    }

    /// Reads the raw counter value for `pc` (used by TAGE's base predictor
    /// and by attack observability helpers).
    pub fn counter(&self, pc: Pc, ctx: &KeyCtx) -> u64 {
        self.table.get(self.index_of(pc), ctx)
    }

    /// Directly sets the counter for `pc` (attack priming helper).
    pub fn set_counter(&mut self, pc: Pc, value: u64, ctx: &KeyCtx) {
        self.table.set(self.index_of(pc), value, ctx);
    }

    /// Counter width in bits.
    pub fn ctr_bits(&self) -> u32 {
        self.ctr_bits
    }
}

impl DirectionPredictor for Bimodal {
    #[inline]
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool {
        counter_taken(self.counter(info.pc, ctx), self.ctr_bits)
    }

    #[inline]
    fn update(&mut self, info: BranchInfo, taken: bool, _predicted: bool, ctx: &KeyCtx) {
        let bits = self.ctr_bits;
        self.table
            .update(self.index_of(info.pc), ctx, |c| sat_update(c, bits, taken));
    }

    fn flush_all(&mut self) {
        self.table.flush_all();
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        self.table.flush_thread(thread);
    }

    fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, KeyPair};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    #[test]
    fn initial_prediction_is_not_taken() {
        let mut p = Bimodal::new(256, 2);
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        assert!(!p.predict(info(0x100), &ctx));
    }

    #[test]
    fn trains_toward_taken_and_back() {
        let mut p = Bimodal::new(256, 2);
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        let i = info(0x200);
        for _ in 0..3 {
            let pr = p.predict(i, &ctx);
            p.update(i, true, pr, &ctx);
        }
        assert!(p.predict(i, &ctx));
        for _ in 0..3 {
            let pr = p.predict(i, &ctx);
            p.update(i, false, pr, &ctx);
        }
        assert!(!p.predict(i, &ctx));
    }

    #[test]
    fn aliasing_maps_to_same_entry() {
        let mut p = Bimodal::new(16, 2);
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        // PCs 16 word-entries apart alias in a 16-entry table.
        let a = info(0x100);
        let b = info(0x100 + 16 * 4);
        for _ in 0..3 {
            p.update(a, true, false, &ctx);
        }
        assert!(p.predict(b, &ctx), "aliased entry shares state");
    }

    #[test]
    fn rekey_invalidates_residual_state() {
        let mut p = Bimodal::new(1024, 2);
        let k1 = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(1));
        let mut taken_after = 0;
        // Train 64 branches strongly taken under key 1.
        for b in 0..64u64 {
            let i = info(0x1000 + b * 4);
            for _ in 0..4 {
                p.update(i, true, false, &k1);
            }
        }
        // Rekey (context switch); residual counters decode to garbage.
        let k2 = k1.rekeyed(KeyPair::from_random(2));
        for b in 0..64u64 {
            if p.predict(info(0x1000 + b * 4), &k2) {
                taken_after += 1;
            }
        }
        assert!(
            taken_after < 55,
            "residual state survived rekey: {taken_after}/64"
        );
    }

    #[test]
    fn storage_and_name() {
        let p = Bimodal::new(4096, 2);
        assert_eq!(p.storage_bits(), 8192);
        assert_eq!(p.name(), "bimodal");
        assert_eq!(p.ctr_bits(), 2);
    }

    #[test]
    fn set_counter_primes_state() {
        let mut p = Bimodal::new(64, 2);
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        p.set_counter(Pc::new(0x80), 3, &ctx);
        assert!(p.predict(info(0x80), &ctx));
        assert_eq!(p.counter(Pc::new(0x80), &ctx), 3);
    }
}
