//! GEHL components: tables of signed counters indexed by hashed history,
//! summed by the statistical corrector.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{KeyCtx, PackedTable, Pc, ThreadId};

use crate::counter::{signed_update, to_signed};

/// One GEHL table: `2^log_entries` signed `ctr_bits` counters indexed by a
/// hash of the PC and a caller-supplied history value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GehlTable {
    table: PackedTable,
    ctr_bits: u32,
    history_bits: u32,
}

impl GehlTable {
    /// Creates a GEHL table using `history_bits` of the supplied history.
    pub fn new(log_entries: u32, ctr_bits: u32, history_bits: u32) -> Self {
        GehlTable {
            table: PackedTable::new(1 << log_entries, ctr_bits, 0),
            ctr_bits,
            history_bits,
        }
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.table = self.table.with_owner_tags();
        self
    }

    fn index_of(&self, pc: Pc, history: u64) -> usize {
        let h = history & mask_u64(self.history_bits);
        let bits = self.table.index_bits();
        let v = pc.word() ^ (pc.word() >> 3) ^ h ^ (h >> bits);
        (v & mask_u64(bits)) as usize
    }

    /// Signed counter value for this branch/history.
    pub fn read(&self, pc: Pc, history: u64, ctx: &KeyCtx) -> i64 {
        to_signed(
            self.table.get(self.index_of(pc, history), ctx),
            self.ctr_bits,
        )
    }

    /// Trains the counter toward `taken`.
    pub fn train(&mut self, pc: Pc, history: u64, taken: bool, ctx: &KeyCtx) {
        let bits = self.ctr_bits;
        self.table.update(self.index_of(pc, history), ctx, |c| {
            signed_update(c, bits, taken)
        });
    }

    /// Complete Flush.
    pub fn flush_all(&mut self) {
        self.table.flush_all();
    }

    /// Precise Flush.
    pub fn flush_thread(&mut self, thread: ThreadId) {
        self.table.flush_thread(thread);
    }

    /// Storage bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    /// History bits consumed.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{KeyPair, Pc};

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn counters_start_neutral() {
        let t = GehlTable::new(8, 6, 12);
        assert_eq!(t.read(Pc::new(0x40), 0, &ctx()), 0);
    }

    #[test]
    fn trains_toward_direction() {
        let mut t = GehlTable::new(8, 6, 12);
        let c = ctx();
        for _ in 0..10 {
            t.train(Pc::new(0x40), 0x5, true, &c);
        }
        assert!(t.read(Pc::new(0x40), 0x5, &c) > 5);
        for _ in 0..25 {
            t.train(Pc::new(0x40), 0x5, false, &c);
        }
        assert!(t.read(Pc::new(0x40), 0x5, &c) < -5);
    }

    #[test]
    fn saturates_at_range_limits() {
        let mut t = GehlTable::new(4, 4, 4);
        let c = ctx();
        for _ in 0..100 {
            t.train(Pc::new(0x8), 1, true, &c);
        }
        assert_eq!(t.read(Pc::new(0x8), 1, &c), 7); // 4-bit signed max
        for _ in 0..100 {
            t.train(Pc::new(0x8), 1, false, &c);
        }
        assert_eq!(t.read(Pc::new(0x8), 1, &c), -8);
    }

    #[test]
    fn different_histories_use_different_entries() {
        let mut t = GehlTable::new(10, 6, 16);
        let c = ctx();
        for _ in 0..10 {
            t.train(Pc::new(0x100), 0xaaaa, true, &c);
        }
        // Another history is (almost certainly) a different entry, still 0.
        assert_eq!(t.read(Pc::new(0x100), 0x5555, &c), 0);
    }

    #[test]
    fn encoded_contents_isolate() {
        let mut t = GehlTable::new(8, 6, 8);
        let a = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(21));
        let b = KeyCtx::xor(ThreadId::new(1), KeyPair::from_random(22));
        // Under a fresh key the reset entry decodes to an arbitrary value
        // (that is the isolation), so train to saturation: 6-bit signed
        // range is [-32, 31], 100 updates always saturate.
        for _ in 0..100 {
            t.train(Pc::new(0x200), 3, true, &a);
        }
        let own = t.read(Pc::new(0x200), 3, &a);
        let foreign = t.read(Pc::new(0x200), 3, &b);
        assert_eq!(own, 31, "owner must see the saturated counter");
        assert_ne!(own, foreign, "foreign key must not see the true value");
    }

    #[test]
    fn flush_resets() {
        let mut t = GehlTable::new(6, 5, 6);
        let c = ctx();
        t.train(Pc::new(0x44), 2, true, &c);
        t.flush_all();
        assert_eq!(t.read(Pc::new(0x44), 2, &c), 0);
        assert_eq!(t.storage_bits(), 64 * 5);
        assert_eq!(t.history_bits(), 6);
    }
}
