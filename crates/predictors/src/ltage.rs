//! LTAGE: TAGE plus a loop predictor (Seznec's CBP-2 predictor).

use serde::{Deserialize, Serialize};

use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, ThreadId};

use crate::counter::{sat_dec, sat_inc};
use crate::loop_pred::LoopPredictor;
use crate::tage::{Tage, TageConfig};

/// LTAGE: a TAGE core whose prediction can be overridden by a confident
/// loop predictor, gated by a global `use_loop` confidence counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ltage {
    tage: Tage,
    loops: LoopPredictor,
    /// 7-bit confidence that the loop predictor is worth using.
    use_loop: u64,
    last: Option<LastLtage>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LastLtage {
    thread: u8,
    pc_word: u64,
    tage_pred: bool,
    loop_pred: bool,
    loop_valid: bool,
    used_loop: bool,
}

impl Ltage {
    /// Creates an LTAGE predictor over a TAGE configuration.
    pub fn new(cfg: TageConfig) -> Self {
        Ltage {
            tage: Tage::new(cfg),
            loops: LoopPredictor::paper(),
            use_loop: 64,
            last: None,
        }
    }

    /// The paper's ≈32 KB gem5 configuration.
    pub fn paper(threads: usize) -> Self {
        Ltage::new(TageConfig::ltage_32kb(threads))
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.tage = self.tage.with_owner_tags();
        self.loops = self.loops.with_owner_tags();
        self
    }

    /// Access to the underlying TAGE engine (for tests and ablations).
    pub fn tage(&self) -> &Tage {
        &self.tage
    }
}

impl DirectionPredictor for Ltage {
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool {
        let tl = self.tage.lookup(info, ctx);
        let lp = self.loops.lookup(info, ctx);
        let used_loop = lp.valid && self.use_loop >= 64;
        let pred = if used_loop { lp.taken } else { tl.pred };
        self.last = Some(LastLtage {
            thread: info.thread.index() as u8,
            pc_word: info.pc.word(),
            tage_pred: tl.pred,
            loop_pred: lp.taken,
            loop_valid: lp.valid,
            used_loop,
        });
        pred
    }

    fn update(&mut self, info: BranchInfo, taken: bool, _predicted: bool, ctx: &KeyCtx) {
        let last = self
            .last
            .take()
            .filter(|l| l.thread as usize == info.thread.index() && l.pc_word == info.pc.word());
        if let Some(l) = last {
            // Gate training: reward the loop predictor when it disagreed
            // with TAGE and was right.
            if l.loop_valid && l.loop_pred != l.tage_pred {
                self.use_loop = if l.loop_pred == taken {
                    sat_inc(self.use_loop, 7)
                } else {
                    sat_dec(self.use_loop)
                };
            }
        }
        self.loops.train(info, taken, ctx);
        self.tage.train(info, taken, ctx);
    }

    fn flush_all(&mut self) {
        self.tage.flush_tables();
        self.loops.flush_all();
        self.last = None;
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        self.tage.flush_thread_tables(thread);
        self.loops.flush_thread(thread);
        self.last = None;
    }

    fn storage_bits(&self) -> u64 {
        self.tage.storage_bits() + self.loops.storage_bits()
    }

    fn name(&self) -> &'static str {
        "ltage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, Pc};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn paper_config_instantiates() {
        let p = Ltage::paper(2);
        let kb = p.storage_bits() as f64 / 8192.0;
        assert!((20.0..50.0).contains(&kb), "LTAGE size {kb} KB");
        assert_eq!(p.name(), "ltage");
    }

    #[test]
    fn beats_tage_on_long_constant_loop() {
        // Trip count 50 is beyond the short history tables' reach early on;
        // the loop predictor nails the exit.
        let mut ltage = Ltage::paper(1);
        let c = ctx();
        let i = info(0x800);
        let trip = 50u64;
        let mut exit_errors = 0;
        let mut exits = 0;
        for it in 0..60 {
            for k in 0..trip {
                let taken = k + 1 < trip;
                let pred = ltage.predict(i, &c);
                if !taken && it >= 20 {
                    exits += 1;
                    if pred != taken {
                        exit_errors += 1;
                    }
                }
                ltage.update(i, taken, pred, &c);
            }
        }
        assert!(exits >= 30);
        assert!(
            (exit_errors as f64 / exits as f64) < 0.25,
            "loop exits mispredicted {exit_errors}/{exits}"
        );
    }

    #[test]
    fn flush_resets_everything() {
        let mut p = Ltage::paper(1);
        let c = ctx();
        let i = info(0x300);
        for _ in 0..200 {
            let pr = p.predict(i, &c);
            p.update(i, true, pr, &c);
        }
        p.flush_all();
        // Falls back to the cold not-taken default.
        assert!(!p.predict(i, &c));
        p.update(i, true, false, &c);
    }

    #[test]
    fn learns_simple_bias_quickly() {
        let mut p = Ltage::paper(1);
        let c = ctx();
        let i = info(0x9000);
        let mut correct = 0;
        for n in 0..200 {
            let pr = p.predict(i, &c);
            if n >= 20 && pr {
                correct += 1;
            }
            p.update(i, true, pr, &c);
        }
        assert!(correct >= 170, "correct={correct}");
    }
}
