//! Saturating counter arithmetic on packed words.
//!
//! Prediction tables store counters as raw `width`-bit fields inside
//! [`sbp_types::PackedTable`] words; these free functions implement the
//! unsigned and signed (center-biased) saturating update rules used by all
//! predictors.

use sbp_types::ids::mask_u64;

/// Increments an unsigned `width`-bit saturating counter.
#[inline]
pub fn sat_inc(value: u64, width: u32) -> u64 {
    let max = mask_u64(width);
    if value >= max {
        max
    } else {
        value + 1
    }
}

/// Decrements an unsigned `width`-bit saturating counter.
#[inline]
pub fn sat_dec(value: u64) -> u64 {
    value.saturating_sub(1)
}

/// Updates an unsigned `width`-bit counter toward `taken`.
#[inline]
pub fn sat_update(value: u64, width: u32, taken: bool) -> u64 {
    if taken {
        sat_inc(value, width)
    } else {
        sat_dec(value)
    }
}

/// Whether an unsigned `width`-bit counter predicts taken (MSB set).
#[inline]
pub fn counter_taken(value: u64, width: u32) -> bool {
    value >= (1 << (width - 1))
}

/// Whether an unsigned `width`-bit counter is at one of its two weak states.
#[inline]
pub fn counter_is_weak(value: u64, width: u32) -> bool {
    let mid = 1u64 << (width - 1);
    value == mid || value == mid - 1
}

/// The weakly-taken state of a `width`-bit counter.
#[inline]
pub fn weak_taken(width: u32) -> u64 {
    1 << (width - 1)
}

/// The weakly-not-taken state of a `width`-bit counter.
#[inline]
pub fn weak_not_taken(width: u32) -> u64 {
    (1 << (width - 1)) - 1
}

/// Interprets a `width`-bit field as a signed counter in
/// `[-2^(width-1), 2^(width-1) - 1]` (two's complement).
#[inline]
pub fn to_signed(value: u64, width: u32) -> i64 {
    let sign = 1u64 << (width - 1);
    if value & sign != 0 {
        (value | !mask_u64(width)) as i64
    } else {
        value as i64
    }
}

/// Packs a signed counter back into a `width`-bit field.
#[inline]
pub fn from_signed(value: i64, width: u32) -> u64 {
    (value as u64) & mask_u64(width)
}

/// Updates a signed `width`-bit saturating counter toward `taken`
/// (+1 saturating at max, -1 saturating at min).
#[inline]
pub fn signed_update(value: u64, width: u32, taken: bool) -> u64 {
    let v = to_signed(value, width);
    let max = (1i64 << (width - 1)) - 1;
    let min = -(1i64 << (width - 1));
    let nv = if taken {
        (v + 1).min(max)
    } else {
        (v - 1).max(min)
    };
    from_signed(nv, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_saturation() {
        assert_eq!(sat_inc(3, 2), 3);
        assert_eq!(sat_inc(2, 2), 3);
        assert_eq!(sat_dec(0), 0);
        assert_eq!(sat_dec(1), 0);
        assert_eq!(sat_update(1, 2, true), 2);
        assert_eq!(sat_update(2, 2, false), 1);
    }

    #[test]
    fn taken_threshold_is_msb() {
        assert!(!counter_taken(0, 2));
        assert!(!counter_taken(1, 2));
        assert!(counter_taken(2, 2));
        assert!(counter_taken(3, 2));
        assert!(counter_taken(4, 3));
        assert!(!counter_taken(3, 3));
    }

    #[test]
    fn weak_states() {
        assert!(counter_is_weak(1, 2));
        assert!(counter_is_weak(2, 2));
        assert!(!counter_is_weak(0, 2));
        assert!(!counter_is_weak(3, 2));
        assert_eq!(weak_taken(2), 2);
        assert_eq!(weak_not_taken(2), 1);
        assert_eq!(weak_taken(3), 4);
    }

    #[test]
    fn signed_roundtrip() {
        for w in [2u32, 3, 5, 8] {
            let min = -(1i64 << (w - 1));
            let max = (1i64 << (w - 1)) - 1;
            for v in min..=max {
                assert_eq!(to_signed(from_signed(v, w), w), v, "w={w} v={v}");
            }
        }
    }

    #[test]
    fn signed_saturation() {
        // 3-bit signed: range [-4, 3].
        let mut v = from_signed(2, 3);
        v = signed_update(v, 3, true);
        assert_eq!(to_signed(v, 3), 3);
        v = signed_update(v, 3, true);
        assert_eq!(to_signed(v, 3), 3, "saturates at max");
        let mut v = from_signed(-3, 3);
        v = signed_update(v, 3, false);
        assert_eq!(to_signed(v, 3), -4);
        v = signed_update(v, 3, false);
        assert_eq!(to_signed(v, 3), -4, "saturates at min");
    }

    #[test]
    fn counter_walks_through_all_states() {
        let mut c = 0u64;
        let states: Vec<u64> = (0..5)
            .map(|_| {
                c = sat_update(c, 2, true);
                c
            })
            .collect();
        assert_eq!(states, vec![1, 2, 3, 3, 3]);
    }
}
