//! # sbp-predictors
//!
//! The branch-predictor substrate of the `secure-bp` workspace: the four
//! direction predictors evaluated by the paper (Gshare, Tournament, LTAGE,
//! TAGE-SC-L), the bimodal building block, the set-associative BTB and the
//! per-thread RAS.
//!
//! Every table access is routed through [`sbp_types::KeyCtx`], so all
//! predictors transparently support the XOR-BP content encoding and
//! Noisy-XOR-BP index scrambling implemented in `sbp-core` — with a
//! disabled context they are bit-identical to conventional unprotected
//! designs.
//!
//! ```
//! use sbp_predictors::gshare::Gshare;
//! use sbp_types::{BranchInfo, BranchKind, DirectionPredictor, KeyCtx, Pc, ThreadId};
//!
//! let mut pht = Gshare::paper_2kb(1);
//! let ctx = KeyCtx::disabled(ThreadId::new(0));
//! let info = BranchInfo::new(ThreadId::new(0), Pc::new(0x40), BranchKind::Conditional);
//! let pred = pht.predict(info, &ctx);
//! pht.update(info, true, pred, &ctx);
//! ```
//!
//! ## Units
//!
//! Table sizes are in **entries** (counters, BTB slots), storage figures
//! in **bits**, and history lengths in **branches**. Flush operations
//! (`flush_all` and friends) clear at whole-table granularity; per-thread
//! precise flushes live at the `sbp-core` mechanism layer.

#![deny(missing_docs)]

pub mod bimodal;
pub mod btb;
pub mod counter;
pub mod gehl;
pub mod gshare;
pub mod history;
pub mod loop_pred;
pub mod ltage;
pub mod ras;
pub mod tage;
pub mod tage_sc_l;
pub mod tournament;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbConfig};
pub use gshare::Gshare;
pub use loop_pred::LoopPredictor;
pub use ltage::Ltage;
pub use ras::Ras;
pub use tage::{Tage, TageConfig, TaggedTableConfig};
pub use tage_sc_l::TageScL;
pub use tournament::{Tournament, TournamentConfig};

use sbp_types::DirectionPredictor;

/// The four direction-predictor families evaluated in the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PredictorKind {
    /// 2 KB gshare.
    Gshare,
    /// Alpha 21264-style tournament (≈6.3 KB).
    Tournament,
    /// ≈32 KB LTAGE.
    Ltage,
    /// TAGE-SC-L (largest, most accurate).
    TageScL,
}

impl PredictorKind {
    /// All four kinds in the paper's accuracy order (least to most
    /// accurate).
    pub const ALL: [PredictorKind; 4] = [
        PredictorKind::Gshare,
        PredictorKind::Tournament,
        PredictorKind::Ltage,
        PredictorKind::TageScL,
    ];

    /// Instantiates the predictor with the paper's configuration for
    /// `threads` hardware contexts.
    pub fn build(self, threads: usize) -> Box<dyn DirectionPredictor + Send> {
        match self {
            PredictorKind::Gshare => Box::new(Gshare::paper_2kb(threads)),
            PredictorKind::Tournament => Box::new(Tournament::paper(threads)),
            PredictorKind::Ltage => Box::new(Ltage::paper(threads)),
            PredictorKind::TageScL => Box::new(TageScL::paper(threads)),
        }
    }

    /// Same as [`PredictorKind::build`] with owner tags enabled (required
    /// by the Precise Flush mechanism).
    pub fn build_with_owner_tags(self, threads: usize) -> Box<dyn DirectionPredictor + Send> {
        match self {
            PredictorKind::Gshare => Box::new(Gshare::paper_2kb(threads).with_owner_tags()),
            PredictorKind::Tournament => Box::new(Tournament::paper(threads).with_owner_tags()),
            PredictorKind::Ltage => Box::new(Ltage::paper(threads).with_owner_tags()),
            PredictorKind::TageScL => Box::new(TageScL::paper(threads).with_owner_tags()),
        }
    }

    /// `(entries, bits per entry)` of the dominant direction-table macro
    /// of the paper configuration [`PredictorKind::build`] instantiates —
    /// the largest SRAM the XOR overlay's critical path runs through.
    ///
    /// Derived programmatically from the same config structs
    /// ([`TageConfig`], [`TournamentConfig`], the [`Gshare`] paper
    /// constants) that build the predictors, so hardware-cost geometry
    /// cannot drift from the simulated configuration.
    pub fn dominant_direction_macro(self) -> (usize, u32) {
        match self {
            PredictorKind::Gshare => (Gshare::PAPER_ENTRIES, Gshare::PAPER_CTR_BITS),
            PredictorKind::Tournament => TournamentConfig::paper(1).dominant_macro(),
            PredictorKind::Ltage => TageConfig::ltage_32kb(1).dominant_macro(),
            PredictorKind::TageScL => TageScL::paper_tage_config(1).dominant_macro(),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::Gshare => "Gshare",
            PredictorKind::Tournament => "Tournament",
            PredictorKind::Ltage => "LTAGE",
            PredictorKind::TageScL => "TAGE_SC_L",
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Statically dispatched direction-predictor engine for the hot loop.
///
/// The simulator executes tens of millions of predict/update pairs per
/// sweep cell; routing them through `Box<dyn DirectionPredictor>` costs an
/// indirect call per table access. `DirectionEngine` enumerates the four
/// paper predictors so the per-branch dispatch is a direct (inlinable)
/// match, while [`DirectionEngine::Custom`] keeps arbitrary user
/// predictors working at the old virtual-call cost.
///
/// The engine implements [`DirectionPredictor`] itself, so any code written
/// against the trait (including `&mut dyn` accessors) keeps working.
#[allow(missing_docs)] // variant payloads are self-describing
pub enum DirectionEngine {
    Gshare(Gshare),
    Tournament(Tournament),
    Ltage(Ltage),
    TageScL(Box<TageScL>),
    /// Escape hatch for user-supplied predictors (dynamic dispatch).
    Custom(Box<dyn DirectionPredictor + Send>),
}

impl std::fmt::Debug for DirectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DirectionEngine({})", self.name())
    }
}

impl DirectionEngine {
    /// Instantiates the paper configuration of `kind` for `threads`
    /// hardware contexts (the enum-dispatch analogue of
    /// [`PredictorKind::build`]).
    pub fn build(kind: PredictorKind, threads: usize) -> Self {
        match kind {
            PredictorKind::Gshare => DirectionEngine::Gshare(Gshare::paper_2kb(threads)),
            PredictorKind::Tournament => DirectionEngine::Tournament(Tournament::paper(threads)),
            PredictorKind::Ltage => DirectionEngine::Ltage(Ltage::paper(threads)),
            PredictorKind::TageScL => DirectionEngine::TageScL(Box::new(TageScL::paper(threads))),
        }
    }

    /// Same as [`DirectionEngine::build`] with owner tags enabled
    /// (required by the Precise Flush mechanism).
    pub fn build_with_owner_tags(kind: PredictorKind, threads: usize) -> Self {
        match kind {
            PredictorKind::Gshare => {
                DirectionEngine::Gshare(Gshare::paper_2kb(threads).with_owner_tags())
            }
            PredictorKind::Tournament => {
                DirectionEngine::Tournament(Tournament::paper(threads).with_owner_tags())
            }
            PredictorKind::Ltage => DirectionEngine::Ltage(Ltage::paper(threads).with_owner_tags()),
            PredictorKind::TageScL => {
                DirectionEngine::TageScL(Box::new(TageScL::paper(threads).with_owner_tags()))
            }
        }
    }

    /// Wraps an arbitrary predictor (dynamically dispatched).
    pub fn custom(inner: Box<dyn DirectionPredictor + Send>) -> Self {
        DirectionEngine::Custom(inner)
    }

    /// Deep-copies the engine including all learned table state, or `None`
    /// for [`DirectionEngine::Custom`] (trait objects are not cloneable).
    ///
    /// This is the basis of warm-state checkpoints: a clone taken after
    /// warmup continues bit-identically to the original, so the four paper
    /// predictors are snapshot-restorable while user predictors simply fall
    /// back to re-warming.
    pub fn try_clone(&self) -> Option<Self> {
        match self {
            DirectionEngine::Gshare(p) => Some(DirectionEngine::Gshare(p.clone())),
            DirectionEngine::Tournament(p) => Some(DirectionEngine::Tournament(p.clone())),
            DirectionEngine::Ltage(p) => Some(DirectionEngine::Ltage(p.clone())),
            DirectionEngine::TageScL(p) => Some(DirectionEngine::TageScL(p.clone())),
            DirectionEngine::Custom(_) => None,
        }
    }
}

impl DirectionPredictor for DirectionEngine {
    #[inline]
    fn predict(&mut self, info: sbp_types::BranchInfo, ctx: &sbp_types::KeyCtx) -> bool {
        match self {
            DirectionEngine::Gshare(p) => p.predict(info, ctx),
            DirectionEngine::Tournament(p) => p.predict(info, ctx),
            DirectionEngine::Ltage(p) => p.predict(info, ctx),
            DirectionEngine::TageScL(p) => p.predict(info, ctx),
            DirectionEngine::Custom(p) => p.predict(info, ctx),
        }
    }

    #[inline]
    fn update(
        &mut self,
        info: sbp_types::BranchInfo,
        taken: bool,
        predicted: bool,
        ctx: &sbp_types::KeyCtx,
    ) {
        match self {
            DirectionEngine::Gshare(p) => p.update(info, taken, predicted, ctx),
            DirectionEngine::Tournament(p) => p.update(info, taken, predicted, ctx),
            DirectionEngine::Ltage(p) => p.update(info, taken, predicted, ctx),
            DirectionEngine::TageScL(p) => p.update(info, taken, predicted, ctx),
            DirectionEngine::Custom(p) => p.update(info, taken, predicted, ctx),
        }
    }

    #[inline]
    fn train(&mut self, info: sbp_types::BranchInfo, taken: bool, ctx: &sbp_types::KeyCtx) -> bool {
        // Direct match dispatch so the concrete fused overrides (Gshare,
        // Tournament) are reached instead of the trait default resolving
        // against the enum's own predict/update.
        match self {
            DirectionEngine::Gshare(p) => p.train(info, taken, ctx),
            DirectionEngine::Tournament(p) => p.train(info, taken, ctx),
            DirectionEngine::Ltage(p) => p.train(info, taken, ctx),
            DirectionEngine::TageScL(p) => p.train(info, taken, ctx),
            DirectionEngine::Custom(p) => p.train(info, taken, ctx),
        }
    }

    fn flush_all(&mut self) {
        match self {
            DirectionEngine::Gshare(p) => p.flush_all(),
            DirectionEngine::Tournament(p) => p.flush_all(),
            DirectionEngine::Ltage(p) => p.flush_all(),
            DirectionEngine::TageScL(p) => p.flush_all(),
            DirectionEngine::Custom(p) => p.flush_all(),
        }
    }

    fn flush_thread(&mut self, thread: sbp_types::ThreadId) {
        match self {
            DirectionEngine::Gshare(p) => p.flush_thread(thread),
            DirectionEngine::Tournament(p) => p.flush_thread(thread),
            DirectionEngine::Ltage(p) => p.flush_thread(thread),
            DirectionEngine::TageScL(p) => p.flush_thread(thread),
            DirectionEngine::Custom(p) => p.flush_thread(thread),
        }
    }

    fn storage_bits(&self) -> u64 {
        match self {
            DirectionEngine::Gshare(p) => p.storage_bits(),
            DirectionEngine::Tournament(p) => p.storage_bits(),
            DirectionEngine::Ltage(p) => p.storage_bits(),
            DirectionEngine::TageScL(p) => p.storage_bits(),
            DirectionEngine::Custom(p) => p.storage_bits(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DirectionEngine::Gshare(p) => p.name(),
            DirectionEngine::Tournament(p) => p.name(),
            DirectionEngine::Ltage(p) => p.name(),
            DirectionEngine::TageScL(p) => p.name(),
            DirectionEngine::Custom(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchInfo, BranchKind, KeyCtx, Pc, ThreadId};

    #[test]
    fn all_kinds_build_and_predict() {
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        let info = BranchInfo::new(ThreadId::new(0), Pc::new(0x400), BranchKind::Conditional);
        for kind in PredictorKind::ALL {
            let mut p = kind.build(2);
            let pred = p.predict(info, &ctx);
            p.update(info, true, pred, &ctx);
            assert!(p.storage_bits() > 0, "{kind}");
        }
    }

    #[test]
    fn engine_matches_boxed_build_exactly() {
        // The enum-dispatch engine must be behaviourally identical to the
        // Box<dyn> build for every kind: same predictions, same storage.
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        for kind in PredictorKind::ALL {
            let mut boxed = kind.build(2);
            let mut engine = DirectionEngine::build(kind, 2);
            assert_eq!(engine.storage_bits(), boxed.storage_bits(), "{kind}");
            assert_eq!(engine.name(), boxed.name(), "{kind}");
            let mut rng = sbp_types::rng::Xoshiro256::new(7);
            for n in 0..2000u64 {
                let pc = Pc::new(0x1000 + (n % 61) * 4);
                let info = BranchInfo::new(ThreadId::new(0), pc, BranchKind::Conditional);
                let taken = rng.chance(0.6);
                let a = boxed.predict(info, &ctx);
                let b = engine.predict(info, &ctx);
                assert_eq!(a, b, "{kind} diverged at branch {n}");
                boxed.update(info, taken, a, &ctx);
                engine.update(info, taken, b, &ctx);
            }
        }
    }

    #[test]
    fn engine_custom_wraps_dyn_predictors() {
        let mut engine = DirectionEngine::custom(PredictorKind::Gshare.build(1));
        assert_eq!(engine.name(), "gshare");
        engine.flush_all();
        let owner_tagged = DirectionEngine::build_with_owner_tags(PredictorKind::Gshare, 2);
        assert!(
            owner_tagged.storage_bits()
                > DirectionEngine::build(PredictorKind::Gshare, 2).storage_bits()
        );
    }

    #[test]
    fn try_clone_preserves_learned_state() {
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        for kind in PredictorKind::ALL {
            let mut original = DirectionEngine::build(kind, 2);
            let mut rng = sbp_types::rng::Xoshiro256::new(42);
            for n in 0..3000u64 {
                let pc = Pc::new(0x2000 + (n % 53) * 4);
                let info = BranchInfo::new(ThreadId::new(0), pc, BranchKind::Conditional);
                let taken = rng.chance(0.55);
                let pred = original.predict(info, &ctx);
                original.update(info, taken, pred, &ctx);
            }
            let mut clone = original.try_clone().expect("static engines clone");
            // Clone and original must continue identically.
            let mut rng = sbp_types::rng::Xoshiro256::new(43);
            for n in 0..3000u64 {
                let pc = Pc::new(0x2000 + (n % 53) * 4);
                let info = BranchInfo::new(ThreadId::new(0), pc, BranchKind::Conditional);
                let taken = rng.chance(0.55);
                let a = original.predict(info, &ctx);
                let b = clone.predict(info, &ctx);
                assert_eq!(a, b, "{kind} clone diverged at branch {n}");
                original.update(info, taken, a, &ctx);
                clone.update(info, taken, b, &ctx);
            }
        }
        assert!(DirectionEngine::custom(PredictorKind::Gshare.build(1))
            .try_clone()
            .is_none());
    }

    #[test]
    fn train_is_bit_identical_to_split_predict_update() {
        // The fused functional-stepping entry point must leave every
        // predictor in the same state as the split calls: interleave
        // long fused and split phases and require identical predictions
        // throughout, under both a disabled and a scrambling key context.
        for scrambled in [false, true] {
            let ctx = if scrambled {
                KeyCtx::noisy_xor(ThreadId::new(0), sbp_types::KeyPair::from_random(11))
            } else {
                KeyCtx::disabled(ThreadId::new(0))
            };
            for kind in PredictorKind::ALL {
                let mut fused = DirectionEngine::build(kind, 2);
                let mut split = DirectionEngine::build(kind, 2);
                let mut rng = sbp_types::rng::Xoshiro256::new(77);
                for n in 0..6000u64 {
                    let pc = Pc::new(0x3000 + (n % 97) * 4);
                    let info = BranchInfo::new(ThreadId::new(0), pc, BranchKind::Conditional);
                    let taken = rng.chance(0.6);
                    let a = fused.train(info, taken, &ctx);
                    let b = split.predict(info, &ctx);
                    split.update(info, taken, b, &ctx);
                    assert_eq!(a, b, "{kind} fused/split diverged at branch {n}");
                }
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PredictorKind::Gshare.label(), "Gshare");
        assert_eq!(PredictorKind::TageScL.to_string(), "TAGE_SC_L");
    }

    #[test]
    fn dominant_macro_tracks_the_built_configuration() {
        // Gshare: the single 8192 × 2-bit counter array.
        assert_eq!(
            PredictorKind::Gshare.dominant_direction_macro(),
            (Gshare::PAPER_ENTRIES, Gshare::PAPER_CTR_BITS)
        );
        // Tournament: the 2048 × 11-bit local history table (22528 bits)
        // dominates the 8192 × 2-bit global table (16384 bits).
        assert_eq!(
            PredictorKind::Tournament.dominant_direction_macro(),
            (2048, 11)
        );
        // Both TAGE-family paper configs are dominated by their 16K-entry
        // bimodal base (tagged tables are 1K entries at ≤ 18 bits).
        for kind in [PredictorKind::Ltage, PredictorKind::TageScL] {
            let (entries, bits) = kind.dominant_direction_macro();
            assert_eq!((entries, bits), (16384, 2), "{kind}");
        }
        // The derived macro is never smaller than any table the predictor
        // would instantiate at larger tag widths (drift guard): tagged
        // tables of the 32 KB LTAGE config stay below the base table.
        let cfg = TageConfig::ltage_32kb(1);
        for t in &cfg.tagged {
            let bits = (1u64 << t.log_entries) * (cfg.ctr_bits + t.tag_bits + cfg.u_bits) as u64;
            assert!(bits <= 16384 * 2);
        }
    }

    #[test]
    fn all_predictors_learn_a_mixed_workload() {
        // A workload mixing biased, patterned and correlated branches: all
        // four predictors must reach a sane accuracy. (The strict MPKI
        // ordering is validated end-to-end in sbp-sim.)
        let ctx = KeyCtx::disabled(ThreadId::new(0));
        for kind in PredictorKind::ALL {
            let mut p = kind.build(1);
            let mut rng = sbp_types::rng::Xoshiro256::new(1234);
            let mut correct = 0u32;
            let mut total = 0u32;
            for n in 0..20_000u64 {
                let site = (n.wrapping_mul(2654435761)) % 37;
                let pc = Pc::new(0x1000 + site * 4);
                let info = BranchInfo::new(ThreadId::new(0), pc, BranchKind::Conditional);
                let taken = match site % 3 {
                    0 => true,
                    1 => (n / 37) % 4 != 0,
                    _ => rng.chance(0.7),
                };
                let pred = p.predict(info, &ctx);
                if n > 5000 {
                    total += 1;
                    if pred == taken {
                        correct += 1;
                    }
                }
                p.update(info, taken, pred, &ctx);
            }
            let acc = correct as f64 / total as f64;
            assert!(acc > 0.70, "{kind} accuracy {acc}");
        }
    }
}
