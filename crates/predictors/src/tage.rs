//! TAGE: TAgged GEometric-history-length predictor (Seznec).
//!
//! A bimodal base predictor plus a set of partially-tagged tables indexed
//! with geometrically increasing history lengths. This module provides the
//! TAGE engine reused by [`crate::ltage::Ltage`] and
//! [`crate::tage_sc_l::TageScL`].
//!
//! Isolation plumbing: counters and tags live in encoded [`PackedTable`]s,
//! so XOR-BP content encoding and Noisy-XOR index scrambling apply to every
//! component. The 2-bit usefulness (replacement hint) bits are kept in a
//! *separate, unencoded* sidecar table: they never contain branch history
//! content (only replacement age), hardware periodically clears them in
//! bulk — an operation that is only possible on raw bits — and encoding
//! them would make the paper's periodic useful-bit reset unimplementable.
//! This matches the paper's focus on encoding "direction and destination
//! histories".

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::rng::Xoshiro256;
use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, PackedTable, Pc, ThreadId};

use crate::bimodal::Bimodal;
use crate::counter::{sat_dec, sat_inc, signed_update, to_signed};
use crate::history::{FoldedHistory, GlobalHistory, PathHistory};

/// Maximum number of tagged tables supported by the fixed-size scratch
/// buffers.
pub const MAX_TAGGED: usize = 24;

/// Configuration of one tagged table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedTableConfig {
    /// log2 of the number of entries.
    pub log_entries: u32,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// History length used for indexing/tagging.
    pub history_len: u32,
}

/// TAGE configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageConfig {
    /// Entries in the bimodal base predictor.
    pub base_entries: usize,
    /// Base counter width.
    pub base_ctr_bits: u32,
    /// Tagged tables, ordered by increasing history length.
    pub tagged: Vec<TaggedTableConfig>,
    /// Signed prediction counter width in tagged entries.
    pub ctr_bits: u32,
    /// Usefulness counter width.
    pub u_bits: u32,
    /// Hardware thread contexts.
    pub threads: usize,
    /// Updates between bulk useful-bit clears.
    pub u_reset_period: u64,
}

impl TageConfig {
    /// The paper's FPGA configuration: 6 tagged tables × 4096 entries with
    /// history lengths 12, 27, 44, 63, 90, 130 (≈ 33 KB total).
    pub fn paper_fpga(threads: usize) -> Self {
        let lens = [12u32, 27, 44, 63, 90, 130];
        TageConfig {
            base_entries: 8192,
            base_ctr_bits: 2,
            tagged: lens
                .iter()
                .enumerate()
                .map(|(i, &history_len)| TaggedTableConfig {
                    log_entries: 12,
                    tag_bits: 8 + (i as u32 / 2),
                    history_len,
                })
                .collect(),
            ctr_bits: 3,
            u_bits: 2,
            threads,
            u_reset_period: 256 * 1024,
        }
    }

    /// A ≈32 KB LTAGE-style TAGE core (gem5 configuration row "LTAGE:
    /// 32KB").
    pub fn ltage_32kb(threads: usize) -> Self {
        let lens = [4u32, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640];
        TageConfig {
            base_entries: 16384,
            base_ctr_bits: 2,
            tagged: lens
                .iter()
                .enumerate()
                .map(|(i, &history_len)| TaggedTableConfig {
                    log_entries: 10,
                    tag_bits: 7 + (i as u32).div_ceil(2),
                    history_len,
                })
                .collect(),
            ctr_bits: 3,
            u_bits: 2,
            threads,
            u_reset_period: 256 * 1024,
        }
    }

    /// Longest history length used.
    pub fn max_history(&self) -> u32 {
        self.tagged.iter().map(|t| t.history_len).max().unwrap_or(1)
    }

    /// `(entries, bits per entry)` of the dominant direction-table macro —
    /// the largest SRAM this configuration instantiates, which is what the
    /// XOR overlay's worst-case cost runs through. Considers the bimodal
    /// base table and every tagged table (counter + tag + usefulness
    /// bits), so hardware-cost joins track the real geometry instead of a
    /// hand-maintained map.
    pub fn dominant_macro(&self) -> (usize, u32) {
        let mut best = (self.base_entries, self.base_ctr_bits);
        for t in &self.tagged {
            let entries = 1usize << t.log_entries;
            let entry_bits = self.ctr_bits + t.tag_bits + self.u_bits;
            if entries as u64 * entry_bits as u64 > best.0 as u64 * best.1 as u64 {
                best = (entries, entry_bits);
            }
        }
        best
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration cannot be instantiated.
    pub fn validate(&self) -> Result<(), String> {
        if self.tagged.is_empty() {
            return Err("at least one tagged table required".into());
        }
        if self.tagged.len() > MAX_TAGGED {
            return Err(format!("at most {MAX_TAGGED} tagged tables supported"));
        }
        if self.threads == 0 {
            return Err("at least one hardware thread required".into());
        }
        if !(2..=6).contains(&self.ctr_bits) {
            return Err("ctr_bits must be 2..=6".into());
        }
        for w in self.tagged.windows(2) {
            if w[0].history_len >= w[1].history_len {
                return Err("history lengths must strictly increase".into());
            }
        }
        Ok(())
    }
}

/// Per-thread history state: global history plus per-table folded
/// histories.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ThreadHist {
    ghr: GlobalHistory,
    path: PathHistory,
    idx_folds: Vec<FoldedHistory>,
    tag1_folds: Vec<FoldedHistory>,
    tag2_folds: Vec<FoldedHistory>,
}

impl ThreadHist {
    fn new(cfg: &TageConfig) -> Self {
        let cap = cfg.max_history() + 1;
        ThreadHist {
            ghr: GlobalHistory::new(cap),
            path: PathHistory::new(16),
            idx_folds: cfg
                .tagged
                .iter()
                .map(|t| FoldedHistory::new(t.history_len, t.log_entries))
                .collect(),
            tag1_folds: cfg
                .tagged
                .iter()
                .map(|t| FoldedHistory::new(t.history_len, t.tag_bits))
                .collect(),
            tag2_folds: cfg
                .tagged
                .iter()
                .map(|t| FoldedHistory::new(t.history_len, (t.tag_bits - 1).max(1)))
                .collect(),
        }
    }

    /// Records one resolved branch into all history structures.
    fn push(&mut self, pc: Pc, taken: bool, cfg: &TageConfig) {
        // Per-fold evicted bits must be sampled before the shift.
        let mut evicted = [false; MAX_TAGGED];
        for (slot, t) in evicted.iter_mut().zip(cfg.tagged.iter()) {
            *slot = self.ghr.bit(t.history_len - 1);
        }
        self.ghr.push(taken);
        self.path.push(pc);
        let n = cfg.tagged.len();
        for (((&ev, idx), tag1), tag2) in evicted[..n]
            .iter()
            .zip(&mut self.idx_folds)
            .zip(&mut self.tag1_folds)
            .zip(&mut self.tag2_folds)
        {
            idx.update(taken, ev);
            tag1.update(taken, ev);
            tag2.update(taken, ev);
        }
    }

    fn clear(&mut self) {
        self.ghr.clear();
        self.path.clear();
        for f in self
            .idx_folds
            .iter_mut()
            .chain(self.tag1_folds.iter_mut())
            .chain(self.tag2_folds.iter_mut())
        {
            f.clear();
        }
    }
}

/// Result of a TAGE lookup, cached between predict and update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageLookup {
    thread: u8,
    pc_word: u64,
    indices: [u32; MAX_TAGGED],
    tags: [u32; MAX_TAGGED],
    /// Provider tagged-table number (None = base predictor provides).
    pub provider: Option<u8>,
    /// Alternate prediction source table (None = base).
    pub alt: Option<u8>,
    /// Provider component's prediction.
    pub provider_pred: bool,
    /// Alternate prediction.
    pub alt_pred: bool,
    /// Final TAGE prediction (after USE_ALT_ON_NA).
    pub pred: bool,
    /// Provider entry was weak and not useful ("pseudo-new allocation").
    pub pseudo_new: bool,
}

/// The TAGE predictor engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tage {
    cfg: TageConfig,
    base: Bimodal,
    /// Tagged entries: packed `ctr | tag` words, content-encoded.
    tables: Vec<PackedTable>,
    /// Usefulness sidecar, unencoded (see module docs).
    useful: Vec<PackedTable>,
    hist: Vec<ThreadHist>,
    use_alt_on_na: u64,
    update_count: u64,
    rng: Xoshiro256,
    last: Option<TageLookup>,
}

impl Tage {
    /// Creates a TAGE predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    pub fn new(cfg: TageConfig) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid TAGE configuration: {msg}");
        }
        let tables = cfg
            .tagged
            .iter()
            .map(|t| PackedTable::new(1 << t.log_entries, cfg.ctr_bits + t.tag_bits, 0))
            .collect();
        let useful = cfg
            .tagged
            .iter()
            .map(|t| PackedTable::new(1 << t.log_entries, cfg.u_bits, 0))
            .collect();
        Tage {
            base: Bimodal::new(cfg.base_entries, cfg.base_ctr_bits),
            tables,
            useful,
            hist: (0..cfg.threads).map(|_| ThreadHist::new(&cfg)).collect(),
            use_alt_on_na: 8,
            update_count: 0,
            rng: Xoshiro256::new(0x7a6e_5d4c_3b2a_1908),
            last: None,
            cfg,
        }
    }

    /// Enables owner tags on all tables for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.base = self.base.with_owner_tags();
        self.tables = self
            .tables
            .into_iter()
            .map(PackedTable::with_owner_tags)
            .collect();
        self.useful = self
            .useful
            .into_iter()
            .map(PackedTable::with_owner_tags)
            .collect();
        self
    }

    /// The configuration.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    fn table_index(&self, t: usize, pc: Pc, thread: ThreadId) -> usize {
        let cfg = &self.cfg.tagged[t];
        let h = &self.hist[thread.index()];
        let pcw = pc.word();
        let v = pcw
            ^ (pcw >> ((cfg.log_entries / 2).max(1)))
            ^ h.idx_folds[t].value()
            ^ (h.path.value() & mask_u64(cfg.log_entries.min(16)));
        (v & mask_u64(cfg.log_entries)) as usize
    }

    fn table_tag(&self, t: usize, pc: Pc, thread: ThreadId) -> u64 {
        let cfg = &self.cfg.tagged[t];
        let h = &self.hist[thread.index()];
        (pc.word() ^ h.tag1_folds[t].value() ^ (h.tag2_folds[t].value() << 1))
            & mask_u64(cfg.tag_bits)
    }

    fn unpack(&self, t: usize, word: u64) -> (u64, u64) {
        // (ctr, tag)
        let ctr = word & mask_u64(self.cfg.ctr_bits);
        let tag = (word >> self.cfg.ctr_bits) & mask_u64(self.cfg.tagged[t].tag_bits);
        (ctr, tag)
    }

    fn pack(&self, ctr: u64, tag: u64) -> u64 {
        ctr | (tag << self.cfg.ctr_bits)
    }

    fn ctr_taken(&self, ctr: u64) -> bool {
        to_signed(ctr, self.cfg.ctr_bits) >= 0
    }

    fn ctr_is_weak(&self, ctr: u64) -> bool {
        let v = to_signed(ctr, self.cfg.ctr_bits);
        v == 0 || v == -1
    }

    /// Performs the full lookup and caches the result for the paired
    /// update. Returns the final prediction.
    pub fn lookup(&mut self, info: BranchInfo, ctx: &KeyCtx) -> TageLookup {
        let nt = self.cfg.tagged.len();
        let mut indices = [0u32; MAX_TAGGED];
        let mut tags = [0u32; MAX_TAGGED];
        let mut matches = [false; MAX_TAGGED];
        let mut ctrs = [0u64; MAX_TAGGED];
        for t in 0..nt {
            let idx = self.table_index(t, info.pc, info.thread);
            let tag = self.table_tag(t, info.pc, info.thread);
            indices[t] = idx as u32;
            tags[t] = tag as u32;
            let word = self.tables[t].get(idx, ctx);
            let (ctr, stored_tag) = self.unpack(t, word);
            if stored_tag == tag {
                matches[t] = true;
                ctrs[t] = ctr;
            }
        }
        let base_pred = {
            let c = self.base.counter(info.pc, ctx);
            crate::counter::counter_taken(c, self.cfg.base_ctr_bits)
        };
        let provider = (0..nt).rev().find(|&t| matches[t]);
        let alt = provider.and_then(|p| (0..p).rev().find(|&t| matches[t]));
        let (provider_pred, pseudo_new) = match provider {
            Some(p) => {
                let u = self.useful[p].get(indices[p] as usize, &plain_ctx(ctx));
                (self.ctr_taken(ctrs[p]), u == 0 && self.ctr_is_weak(ctrs[p]))
            }
            None => (base_pred, false),
        };
        let alt_pred = match (provider, alt) {
            (Some(_), Some(a)) => self.ctr_taken(ctrs[a]),
            (Some(_), None) => base_pred,
            (None, _) => base_pred,
        };
        let pred = if provider.is_some() && pseudo_new && self.use_alt_on_na >= 8 {
            alt_pred
        } else {
            provider_pred
        };
        let lookup = TageLookup {
            thread: info.thread.index() as u8,
            pc_word: info.pc.word(),
            indices,
            tags,
            provider: provider.map(|p| p as u8),
            alt: alt.map(|a| a as u8),
            provider_pred,
            alt_pred,
            pred,
            pseudo_new,
        };
        self.last = Some(lookup);
        lookup
    }

    /// Trains the predictor after the branch resolves. Must follow the
    /// paired [`Tage::lookup`] for the same branch.
    pub fn train(&mut self, info: BranchInfo, taken: bool, ctx: &KeyCtx) {
        let lookup = match self.last.take() {
            Some(l) if l.thread as usize == info.thread.index() && l.pc_word == info.pc.word() => l,
            // Missing/mismatched lookup (e.g. after a flush between the
            // calls): recompute.
            _ => self.lookup(info, ctx),
        };
        let nt = self.cfg.tagged.len();
        let mispredicted = lookup.pred != taken;

        // USE_ALT_ON_NA training.
        if lookup.provider.is_some() && lookup.pseudo_new && lookup.provider_pred != lookup.alt_pred
        {
            let alt_was_right = lookup.alt_pred == taken;
            self.use_alt_on_na = if alt_was_right {
                sat_inc(self.use_alt_on_na, 4)
            } else {
                sat_dec(self.use_alt_on_na)
            };
        }

        // Allocation on misprediction (provider not the longest table).
        let provider_rank = lookup.provider.map(|p| p as usize);
        if mispredicted {
            let start = provider_rank.map_or(0, |p| p + 1);
            if start < nt {
                // Collect allocation candidates with u == 0.
                let mut list = [0usize; MAX_TAGGED];
                let mut m = 0;
                for t in start..nt {
                    let u = self.useful[t].get(lookup.indices[t] as usize, &plain_ctx(ctx));
                    if u == 0 {
                        list[m] = t;
                        m += 1;
                    }
                }
                if m == 0 {
                    // Nothing allocatable: age the candidates.
                    for t in start..nt {
                        let idx = lookup.indices[t] as usize;
                        let pctx = plain_ctx(ctx);
                        self.useful[t].update(idx, &pctx, sat_dec);
                    }
                } else {
                    // Prefer shorter histories (pick among the first two
                    // candidates with 2:1 odds, Seznec-style).
                    let pick = if m == 1 || self.rng.next_below(3) != 0 {
                        list[0]
                    } else {
                        list[1.min(m - 1)]
                    };
                    let idx = lookup.indices[pick] as usize;
                    let init_ctr =
                        crate::counter::from_signed(if taken { 0 } else { -1 }, self.cfg.ctr_bits);
                    let word = self.pack(init_ctr, lookup.tags[pick] as u64);
                    self.tables[pick].set(idx, word, ctx);
                    let pctx = plain_ctx(ctx);
                    self.useful[pick].set(idx, 0, &pctx);
                }
            }
        }

        // Provider counter update.
        match provider_rank {
            Some(p) => {
                let idx = lookup.indices[p] as usize;
                let tag = lookup.tags[p] as u64;
                let ctr_bits = self.cfg.ctr_bits;
                let word = self.tables[p].get(idx, ctx);
                let (ctr, stored_tag) = self.unpack(p, word);
                // The entry may have been reallocated above; only train on
                // a still-matching tag.
                if stored_tag == tag {
                    let new_ctr = signed_update(ctr, ctr_bits, taken);
                    let packed = self.pack(new_ctr, tag);
                    self.tables[p].set(idx, packed, ctx);
                }
                // Usefulness: provider distinguished itself from alt.
                if lookup.provider_pred != lookup.alt_pred {
                    let u_bits = self.cfg.u_bits;
                    let pctx = plain_ctx(ctx);
                    self.useful[p].update(idx, &pctx, |u| {
                        if lookup.provider_pred == taken {
                            sat_inc(u, u_bits)
                        } else {
                            sat_dec(u)
                        }
                    });
                }
                // Train the base predictor too when the provider is weak,
                // keeping the fallback warm.
                if lookup.pseudo_new {
                    self.base.update(info, taken, lookup.pred, ctx);
                }
            }
            None => {
                self.base.update(info, taken, lookup.pred, ctx);
            }
        }

        // Periodic useful-bit reset (bulk clear of raw bits).
        self.update_count += 1;
        if self.update_count.is_multiple_of(self.cfg.u_reset_period) {
            for u in &mut self.useful {
                u.flush_all();
            }
        }

        // Histories are updated last.
        let cfg = self.cfg.clone();
        self.hist[info.thread.index()].push(info.pc, taken, &cfg);
    }

    /// Clears tables (not per-thread histories — those are architectural
    /// registers, not shared state).
    pub fn flush_tables(&mut self) {
        self.base.flush_all();
        for t in &mut self.tables {
            t.flush_all();
        }
        for u in &mut self.useful {
            u.flush_all();
        }
        self.last = None;
    }

    /// Precise Flush of `thread`'s entries.
    pub fn flush_thread_tables(&mut self, thread: ThreadId) {
        self.base.flush_thread(thread);
        for t in &mut self.tables {
            t.flush_thread(thread);
        }
        for u in &mut self.useful {
            u.flush_thread(thread);
        }
        self.last = None;
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.base.storage_bits()
            + self
                .tables
                .iter()
                .map(PackedTable::storage_bits)
                .sum::<u64>()
            + self
                .useful
                .iter()
                .map(PackedTable::storage_bits)
                .sum::<u64>()
    }

    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.cfg.tagged.len()
    }

    /// Clears one thread's history registers (testing / context model).
    pub fn clear_thread_history(&mut self, thread: ThreadId) {
        self.hist[thread.index()].clear();
    }
}

/// The usefulness sidecar ignores content/index keys but must still honor
/// owner tracking for Precise Flush.
fn plain_ctx(ctx: &KeyCtx) -> KeyCtx {
    let mut p = KeyCtx::disabled(ctx.thread);
    p.owner_tracking = ctx.owner_tracking;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, KeyPair};

    fn small_cfg() -> TageConfig {
        TageConfig {
            base_entries: 1024,
            base_ctr_bits: 2,
            tagged: vec![
                TaggedTableConfig {
                    log_entries: 8,
                    tag_bits: 8,
                    history_len: 5,
                },
                TaggedTableConfig {
                    log_entries: 8,
                    tag_bits: 8,
                    history_len: 11,
                },
                TaggedTableConfig {
                    log_entries: 8,
                    tag_bits: 9,
                    history_len: 23,
                },
                TaggedTableConfig {
                    log_entries: 8,
                    tag_bits: 9,
                    history_len: 47,
                },
            ],
            ctr_bits: 3,
            u_bits: 2,
            threads: 1,
            u_reset_period: 1 << 20,
        }
    }

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn config_validation() {
        assert!(small_cfg().validate().is_ok());
        let mut bad = small_cfg();
        bad.tagged.clear();
        assert!(bad.validate().is_err());
        let mut bad = small_cfg();
        bad.tagged[1].history_len = 5;
        assert!(bad.validate().is_err());
        let mut bad = small_cfg();
        bad.threads = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn paper_configs_instantiate() {
        let t = Tage::new(TageConfig::paper_fpga(2));
        assert_eq!(t.num_tables(), 6);
        let kb = t.storage_bits() as f64 / 8192.0;
        assert!((25.0..45.0).contains(&kb), "paper FPGA TAGE size {kb} KB");
        let t2 = Tage::new(TageConfig::ltage_32kb(1));
        assert_eq!(t2.num_tables(), 12);
    }

    #[test]
    fn learns_biased_branch() {
        let mut t = Tage::new(small_cfg());
        let c = ctx();
        let i = info(0x400);
        let mut correct = 0;
        for n in 0..300 {
            let l = t.lookup(i, &c);
            if n >= 50 && l.pred {
                correct += 1;
            }
            t.train(i, true, &c);
        }
        assert!(correct >= 240, "correct={correct}");
    }

    #[test]
    fn learns_history_pattern_bimodal_cannot() {
        // Period-6 pattern TTTNNN: a 2-bit bimodal stays confused, TAGE's
        // tagged tables resolve it.
        let mut t = Tage::new(small_cfg());
        let c = ctx();
        let i = info(0x7c0);
        let pattern = [true, true, true, false, false, false];
        let mut correct = 0;
        let total = 1200;
        for n in 0..total {
            let taken = pattern[n % pattern.len()];
            let l = t.lookup(i, &c);
            if n >= 400 && l.pred == taken {
                correct += 1;
            }
            t.train(i, taken, &c);
        }
        let acc = correct as f64 / (total - 400) as f64;
        assert!(acc > 0.9, "pattern accuracy {acc}");
    }

    #[test]
    fn allocation_creates_providers() {
        let mut t = Tage::new(small_cfg());
        let c = ctx();
        let i = info(0x123_456 & !3);
        let mut rng = Xoshiro256::new(17);
        let mut provider_seen = false;
        // A noisy branch forces mispredictions and hence allocations.
        for _ in 0..500 {
            let taken = rng.chance(0.5);
            let l = t.lookup(i, &c);
            if l.provider.is_some() {
                provider_seen = true;
            }
            t.train(i, taken, &c);
        }
        assert!(provider_seen, "no tagged provider ever matched");
    }

    #[test]
    fn rekey_degrades_tagged_hits() {
        let cfg = small_cfg();
        let mut t = Tage::new(cfg);
        let k1 = KeyCtx::xor(ThreadId::new(0), KeyPair::from_random(11));
        let pattern = [true, true, false];
        let i = info(0x80c);
        for n in 0..600 {
            let _ = t.lookup(i, &k1);
            t.train(i, pattern[n % 3], &k1);
        }
        // Warmed up: providers match in a solid fraction of lookups.
        let mut warm_hits = 0;
        for n in 0..120 {
            let l = t.lookup(i, &k1);
            if l.provider.is_some() {
                warm_hits += 1;
            }
            t.train(i, pattern[n % 3], &k1);
        }
        assert!(
            warm_hits > 20,
            "expected warm providers, got {warm_hits}/120"
        );
        // After rekey, the residual tags decode to garbage: the first
        // lookups cannot reuse the warm entries (they miss or false-hit at
        // the chance level ~ 2^-tag_bits, and re-warm only via fresh
        // allocations).
        let k2 = k1.rekeyed(KeyPair::from_random(12));
        let mut cold_hits = 0;
        for n in 0..24 {
            let l = t.lookup(i, &k2);
            if l.provider.is_some() {
                cold_hits += 1;
            }
            t.train(i, pattern[n % 3], &k2);
        }
        assert!(
            cold_hits < warm_hits.min(24),
            "residual tagged hits after rekey: {cold_hits}/24 vs warm {warm_hits}/120"
        );
    }

    #[test]
    fn flush_resets_tables() {
        let mut t = Tage::new(small_cfg());
        let c = ctx();
        let i = info(0x111_000);
        for _ in 0..200 {
            let _ = t.lookup(i, &c);
            t.train(i, true, &c);
        }
        t.flush_tables();
        let l = t.lookup(i, &c);
        assert!(l.provider.is_none(), "flush left a tagged match");
        t.train(i, true, &c);
    }

    #[test]
    fn train_without_lookup_recomputes() {
        let mut t = Tage::new(small_cfg());
        let c = ctx();
        // No panic, falls back to an internal lookup.
        t.train(info(0x40), true, &c);
    }

    #[test]
    fn separate_threads_do_not_share_history() {
        let mut cfg = small_cfg();
        cfg.threads = 2;
        let mut t = Tage::new(cfg);
        let c0 = ctx();
        let c1 = KeyCtx::disabled(ThreadId::new(1));
        let i0 = BranchInfo::new(ThreadId::new(0), Pc::new(0x40), BranchKind::Conditional);
        let i1 = BranchInfo::new(ThreadId::new(1), Pc::new(0x40), BranchKind::Conditional);
        for _ in 0..100 {
            let _ = t.lookup(i0, &c0);
            t.train(i0, true, &c0);
        }
        // Thread 1 has an empty history: its indices must be computed from
        // clean folds (can't assert equality of predictions easily, but the
        // lookup must succeed and use fold value 0).
        let l = t.lookup(i1, &c1);
        t.train(i1, true, &c1);
        assert_eq!(l.thread, 1);
    }

    #[test]
    fn u_reset_clears_useful_bits() {
        let mut cfg = small_cfg();
        cfg.u_reset_period = 64;
        let mut t = Tage::new(cfg);
        let c = ctx();
        let mut rng = Xoshiro256::new(3);
        for n in 0..256 {
            let i = info(0x1000 + (n % 16) * 4);
            let _ = t.lookup(i, &c);
            t.train(i, rng.chance(0.5), &c);
        }
        // All useful tables were bulk-cleared at least once; simply verify
        // the mechanism ran without corrupting state.
        let l = t.lookup(info(0x1000), &c);
        let _ = l;
    }
}
