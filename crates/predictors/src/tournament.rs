//! Alpha 21264-style tournament (hybrid local/global) predictor.
//!
//! The configuration follows the paper's Figure 6(a): a 2048-entry × 11-bit
//! local history table feeding a 2048-entry local prediction table, an
//! 8192-entry global prediction table and an 8192-entry chooser, both
//! indexed by path/global history.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, PackedTable, ThreadId};

use crate::counter::{counter_taken, sat_update, weak_not_taken};
use crate::history::{GlobalHistory, LocalHistoryTable};

/// Configuration for [`Tournament`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TournamentConfig {
    /// First-level local history entries (power of two).
    pub local_history_entries: usize,
    /// Bits of pattern history kept per branch.
    pub local_history_bits: u32,
    /// Local prediction counter width.
    pub local_ctr_bits: u32,
    /// Global/choice table entries (power of two).
    pub global_entries: usize,
    /// Global/choice counter width.
    pub global_ctr_bits: u32,
    /// Hardware thread contexts.
    pub threads: usize,
}

impl TournamentConfig {
    /// The paper's Figure 6(a) configuration (≈ 6.3 KB).
    pub fn paper(threads: usize) -> Self {
        TournamentConfig {
            local_history_entries: 2048,
            local_history_bits: 11,
            local_ctr_bits: 2,
            global_entries: 8192,
            global_ctr_bits: 2,
            threads,
        }
    }

    /// `(entries, bits per entry)` of the dominant direction-table macro:
    /// the largest of the local history, local prediction, global
    /// prediction and chooser tables this configuration instantiates —
    /// all four are key-context-indexed SRAMs on the XOR overlay's
    /// protected path. In the paper config the 2048 × 11-bit local
    /// history table dominates.
    pub fn dominant_macro(&self) -> (usize, u32) {
        [
            (self.local_history_entries, self.local_history_bits),
            (1usize << self.local_history_bits, self.local_ctr_bits),
            (self.global_entries, self.global_ctr_bits),
            (self.global_entries, self.global_ctr_bits), // chooser
        ]
        .into_iter()
        .max_by_key(|(entries, bits)| *entries as u64 * *bits as u64)
        .expect("non-empty table list")
    }
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig::paper(1)
    }
}

/// The tournament predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tournament {
    cfg: TournamentConfig,
    local_history: LocalHistoryTable,
    local_pred: PackedTable,
    global_pred: PackedTable,
    chooser: PackedTable,
    ghr: Vec<GlobalHistory>,
    global_index_bits: u32,
    last_components: Option<LastPrediction>,
}

/// Cached component outcomes between the paired predict/update calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LastPrediction {
    thread: u8,
    pc_word: u64,
    local_taken: bool,
    global_taken: bool,
    used_global: bool,
}

impl Tournament {
    /// Creates a tournament predictor from a configuration.
    pub fn new(cfg: TournamentConfig) -> Self {
        assert!(cfg.threads >= 1, "at least one hardware thread required");
        let local_pred_entries = 1usize << cfg.local_history_bits;
        let global_index_bits = (cfg.global_entries as u64).trailing_zeros();
        Tournament {
            local_history: LocalHistoryTable::new(
                cfg.local_history_entries,
                cfg.local_history_bits,
            ),
            local_pred: PackedTable::new(
                local_pred_entries,
                cfg.local_ctr_bits,
                weak_not_taken(cfg.local_ctr_bits),
            ),
            global_pred: PackedTable::new(
                cfg.global_entries,
                cfg.global_ctr_bits,
                weak_not_taken(cfg.global_ctr_bits),
            ),
            chooser: PackedTable::new(
                cfg.global_entries,
                cfg.global_ctr_bits,
                weak_not_taken(cfg.global_ctr_bits),
            ),
            ghr: (0..cfg.threads)
                .map(|_| GlobalHistory::new(global_index_bits.max(1)))
                .collect(),
            global_index_bits,
            cfg,
            last_components: None,
        }
    }

    /// The paper's configuration with `threads` hardware contexts.
    pub fn paper(threads: usize) -> Self {
        Tournament::new(TournamentConfig::paper(threads))
    }

    /// Enables owner tags on every table for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.local_history = self.local_history.with_owner_tags();
        self.local_pred = self.local_pred.with_owner_tags();
        self.global_pred = self.global_pred.with_owner_tags();
        self.chooser = self.chooser.with_owner_tags();
        self
    }

    fn global_index(&self, thread: ThreadId) -> usize {
        self.ghr[thread.index()].low_bits(self.global_index_bits) as usize
            & mask_u64(self.global_index_bits) as usize
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool {
        let pattern = self.local_history.pattern(info.pc, ctx) as usize;
        let local_ctr = self.local_pred.get(pattern, ctx);
        let local_taken = counter_taken(local_ctr, self.cfg.local_ctr_bits);

        let gidx = self.global_index(info.thread);
        let global_taken = counter_taken(self.global_pred.get(gidx, ctx), self.cfg.global_ctr_bits);
        let used_global = counter_taken(self.chooser.get(gidx, ctx), self.cfg.global_ctr_bits);

        self.last_components = Some(LastPrediction {
            thread: info.thread.index() as u8,
            pc_word: info.pc.word(),
            local_taken,
            global_taken,
            used_global,
        });
        if used_global {
            global_taken
        } else {
            local_taken
        }
    }

    fn update(&mut self, info: BranchInfo, taken: bool, _predicted: bool, ctx: &KeyCtx) {
        let last = self
            .last_components
            .take()
            .filter(|l| l.thread as usize == info.thread.index() && l.pc_word == info.pc.word());

        // Train the chooser toward whichever component was right, when they
        // disagreed.
        if let Some(l) = last {
            if l.local_taken != l.global_taken {
                let gidx = self.global_index(info.thread);
                let bits = self.cfg.global_ctr_bits;
                let global_was_right = l.global_taken == taken;
                self.chooser
                    .update(gidx, ctx, |c| sat_update(c, bits, global_was_right));
            }
        }

        // Train both component tables.
        let pattern = self.local_history.pattern(info.pc, ctx) as usize;
        let lbits = self.cfg.local_ctr_bits;
        self.local_pred
            .update(pattern, ctx, |c| sat_update(c, lbits, taken));

        let gidx = self.global_index(info.thread);
        let gbits = self.cfg.global_ctr_bits;
        self.global_pred
            .update(gidx, ctx, |c| sat_update(c, gbits, taken));

        // Update histories last (they feed the *next* prediction).
        self.local_history.record(info.pc, taken, ctx);
        self.ghr[info.thread.index()].push(taken);
    }

    fn train(&mut self, info: BranchInfo, taken: bool, ctx: &KeyCtx) -> bool {
        // Fused predict+update. The pattern and global index are pure
        // functions of state that `update` only mutates *after* its last
        // table write (histories update last), so computing them once is
        // bit-identical to the split predict-then-update calls — and
        // `update` would immediately consume the `last_components` this
        // fused path never needs to stash.
        let pattern = self.local_history.pattern(info.pc, ctx) as usize;
        let local_taken = counter_taken(self.local_pred.get(pattern, ctx), self.cfg.local_ctr_bits);
        let gidx = self.global_index(info.thread);
        let global_taken = counter_taken(self.global_pred.get(gidx, ctx), self.cfg.global_ctr_bits);
        let used_global = counter_taken(self.chooser.get(gidx, ctx), self.cfg.global_ctr_bits);
        let predicted = if used_global {
            global_taken
        } else {
            local_taken
        };

        if local_taken != global_taken {
            let bits = self.cfg.global_ctr_bits;
            let global_was_right = global_taken == taken;
            self.chooser
                .update(gidx, ctx, |c| sat_update(c, bits, global_was_right));
        }
        let lbits = self.cfg.local_ctr_bits;
        self.local_pred
            .update(pattern, ctx, |c| sat_update(c, lbits, taken));
        let gbits = self.cfg.global_ctr_bits;
        self.global_pred
            .update(gidx, ctx, |c| sat_update(c, gbits, taken));
        self.local_history.record(info.pc, taken, ctx);
        self.ghr[info.thread.index()].push(taken);
        // The split path leaves `last_components` consumed; match it.
        self.last_components = None;
        predicted
    }

    fn flush_all(&mut self) {
        self.local_history.flush_all();
        self.local_pred.flush_all();
        self.global_pred.flush_all();
        self.chooser.flush_all();
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        self.local_history.flush_thread(thread);
        self.local_pred.flush_thread(thread);
        self.global_pred.flush_thread(thread);
        self.chooser.flush_thread(thread);
    }

    fn storage_bits(&self) -> u64 {
        self.local_history.storage_bits()
            + self.local_pred.storage_bits()
            + self.global_pred.storage_bits()
            + self.chooser.storage_bits()
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, Pc};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn paper_storage_is_about_6_3_kb() {
        // 2048×11 LHT + 2048×2 local + 2×8192×2 global/choice = 7.25 KB of
        // raw bits (the paper quotes 6.3 KB, likely excluding part of the
        // first level).
        let p = Tournament::paper(1);
        let kb = p.storage_bits() as f64 / 8192.0;
        assert!((6.0..7.5).contains(&kb), "tournament size {kb} KB");
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = Tournament::paper(1);
        let c = ctx();
        let i = info(0x400);
        let mut correct = 0;
        for n in 0..300 {
            let pred = p.predict(i, &c);
            if n > 30 && pred {
                correct += 1;
            }
            p.update(i, true, pred, &c);
        }
        assert!(correct >= 260, "correct={correct}");
    }

    #[test]
    fn local_component_learns_short_period_pattern() {
        // Period-3 pattern T T N: local 11-bit history resolves it exactly.
        let mut p = Tournament::paper(1);
        let c = ctx();
        let i = info(0x99c);
        let pattern = [true, true, false];
        let mut correct = 0;
        let total = 600;
        for n in 0..total {
            let taken = pattern[n % 3];
            let pred = p.predict(i, &c);
            if n > 100 && pred == taken {
                correct += 1;
            }
            p.update(i, taken, pred, &c);
        }
        assert!(
            correct as f64 / (total - 100) as f64 > 0.95,
            "pattern accuracy {correct}/{}",
            total - 100
        );
    }

    #[test]
    fn chooser_moves_toward_better_component() {
        // A branch whose outcome equals the last global outcome is a global
        // -history branch; the tournament must beat a pure bimodal on it.
        let mut p = Tournament::paper(1);
        let c = ctx();
        let driver = info(0x100);
        let follower = info(0x200);
        let mut rng = sbp_types::rng::Xoshiro256::new(9);
        let mut last = false;
        let mut correct = 0;
        let total = 2000;
        for n in 0..total {
            let d = rng.chance(0.5);
            let pd = p.predict(driver, &c);
            p.update(driver, d, pd, &c);
            // follower repeats the driver's outcome.
            let pf = p.predict(follower, &c);
            if n > 500 && pf == d {
                correct += 1;
            }
            p.update(follower, d, pf, &c);
            last = d;
        }
        let _ = last;
        let acc = correct as f64 / (total - 500) as f64;
        assert!(acc > 0.8, "correlated accuracy {acc}");
    }

    #[test]
    fn flush_all_resets() {
        let mut p = Tournament::paper(1);
        let c = ctx();
        let i = info(0x500);
        for _ in 0..50 {
            let pred = p.predict(i, &c);
            p.update(i, true, pred, &c);
        }
        assert!(p.predict(i, &c));
        p.flush_all();
        assert!(
            !p.predict(i, &c),
            "flushed predictor should fall back to not-taken"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Tournament::paper(1).name(), "tournament");
    }
}
