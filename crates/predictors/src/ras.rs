//! Return Address Stack.
//!
//! Commercial SMT processors already use a thread-private RAS (paper §3),
//! so the model keeps one circular stack per hardware thread and no
//! encoding is applied. The structure still participates in flushes so the
//! flush mechanisms are charged their full cost.

use serde::{Deserialize, Serialize};

use sbp_types::{Pc, ThreadId};

/// A per-thread circular return address stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ras {
    stacks: Vec<RasStack>,
    depth: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct RasStack {
    entries: Vec<Pc>,
    top: usize,
    occupancy: usize,
}

impl RasStack {
    fn new(depth: usize) -> Self {
        RasStack {
            entries: vec![Pc::new(0); depth],
            top: 0,
            occupancy: 0,
        }
    }

    fn push(&mut self, addr: Pc) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.occupancy = (self.occupancy + 1).min(self.entries.len());
    }

    fn pop(&mut self) -> Option<Pc> {
        if self.occupancy == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.occupancy -= 1;
        Some(addr)
    }

    fn clear(&mut self) {
        self.top = 0;
        self.occupancy = 0;
    }
}

impl Ras {
    /// Creates per-thread stacks of `depth` entries for `threads` hardware
    /// contexts.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `threads` is 0.
    pub fn new(depth: usize, threads: usize) -> Self {
        assert!(depth > 0, "RAS depth must be positive");
        assert!(threads > 0, "at least one hardware thread required");
        Ras {
            stacks: (0..threads).map(|_| RasStack::new(depth)).collect(),
            depth,
        }
    }

    /// Pushes a return address for `thread` (on a call).
    pub fn push(&mut self, thread: ThreadId, return_addr: Pc) {
        self.stacks[thread.index()].push(return_addr);
    }

    /// Pops the predicted return address for `thread` (on a return).
    /// `None` when the stack is empty (predicts fall-through).
    pub fn pop(&mut self, thread: ThreadId) -> Option<Pc> {
        self.stacks[thread.index()].pop()
    }

    /// Current stack occupancy for `thread`.
    pub fn occupancy(&self, thread: ThreadId) -> usize {
        self.stacks[thread.index()].occupancy
    }

    /// Clears one thread's stack (context switch on that thread).
    pub fn clear_thread(&mut self, thread: ThreadId) {
        self.stacks[thread.index()].clear();
    }

    /// Clears all stacks.
    pub fn flush_all(&mut self) {
        for s in &mut self.stacks {
            s.clear();
        }
    }

    /// Stack depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Storage bits (64-bit addresses per entry).
    pub fn storage_bits(&self) -> u64 {
        (self.stacks.len() * self.depth) as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8, 1);
        let t = ThreadId::new(0);
        ras.push(t, Pc::new(0x100));
        ras.push(t, Pc::new(0x200));
        assert_eq!(ras.pop(t), Some(Pc::new(0x200)));
        assert_eq!(ras.pop(t), Some(Pc::new(0x100)));
        assert_eq!(ras.pop(t), None);
    }

    #[test]
    fn overflow_wraps_keeping_newest() {
        let mut ras = Ras::new(4, 1);
        let t = ThreadId::new(0);
        for n in 0..6u64 {
            ras.push(t, Pc::new(0x100 + n * 4));
        }
        // Newest 4 survive: 0x114, 0x110, 0x10c, 0x108.
        assert_eq!(ras.pop(t), Some(Pc::new(0x114)));
        assert_eq!(ras.pop(t), Some(Pc::new(0x110)));
        assert_eq!(ras.pop(t), Some(Pc::new(0x10c)));
        assert_eq!(ras.pop(t), Some(Pc::new(0x108)));
        assert_eq!(ras.pop(t), None);
    }

    #[test]
    fn threads_are_private() {
        let mut ras = Ras::new(8, 2);
        ras.push(ThreadId::new(0), Pc::new(0xaaa0));
        assert_eq!(ras.pop(ThreadId::new(1)), None);
        assert_eq!(ras.pop(ThreadId::new(0)), Some(Pc::new(0xaaa0)));
    }

    #[test]
    fn clears() {
        let mut ras = Ras::new(8, 2);
        ras.push(ThreadId::new(0), Pc::new(0x1));
        ras.push(ThreadId::new(1), Pc::new(0x2));
        ras.clear_thread(ThreadId::new(0));
        assert_eq!(ras.pop(ThreadId::new(0)), None);
        assert_eq!(ras.occupancy(ThreadId::new(1)), 1);
        ras.flush_all();
        assert_eq!(ras.pop(ThreadId::new(1)), None);
    }

    #[test]
    fn accounting() {
        let ras = Ras::new(16, 2);
        assert_eq!(ras.depth(), 16);
        assert_eq!(ras.storage_bits(), 2 * 16 * 64);
    }
}
