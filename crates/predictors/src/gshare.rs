//! Gshare direction predictor: PHT indexed by `PC ⊕ global history`.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{BranchInfo, DirectionPredictor, KeyCtx, PackedTable, ThreadId};

use crate::counter::{counter_taken, sat_update, weak_not_taken};
use crate::history::GlobalHistory;

/// Gshare: a single table of 2-bit counters indexed by the XOR of the
/// branch PC and the per-thread global history register.
///
/// The paper's FPGA/gem5 configuration is 2 KB = 8192 2-bit counters
/// ([`Gshare::paper_2kb`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gshare {
    table: PackedTable,
    histories: Vec<GlobalHistory>,
    history_bits: u32,
    ctr_bits: u32,
}

impl Gshare {
    /// Counters in the paper's 2 KB configuration.
    pub const PAPER_ENTRIES: usize = 8192;
    /// Counter width in the paper's configuration.
    pub const PAPER_CTR_BITS: u32 = 2;

    /// Creates a gshare predictor.
    ///
    /// * `entries` — number of counters (power of two);
    /// * `ctr_bits` — counter width (2 in all paper configurations);
    /// * `threads` — number of hardware thread contexts (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or `threads` is 0.
    pub fn new(entries: usize, ctr_bits: u32, threads: usize) -> Self {
        assert!(threads >= 1, "at least one hardware thread required");
        let table = PackedTable::new(entries, ctr_bits, weak_not_taken(ctr_bits));
        // Cap the history at 10 bits: classic gshare sizing that limits
        // context dilution (and re-warm-up cost after flush/rekey).
        let history_bits = table.index_bits().min(10);
        Gshare {
            table,
            histories: (0..threads)
                .map(|_| GlobalHistory::new(history_bits.max(1)))
                .collect(),
            history_bits,
            ctr_bits,
        }
    }

    /// The paper's 2 KB configuration (8192 × 2-bit).
    pub fn paper_2kb(threads: usize) -> Self {
        Gshare::new(Self::PAPER_ENTRIES, Self::PAPER_CTR_BITS, threads)
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.table = self.table.with_owner_tags();
        self
    }

    /// The logical PHT index for a branch: `pc ⊕ ghr` (before any index
    /// key scrambling, which the table applies internally).
    pub fn index_of(&self, info: BranchInfo) -> usize {
        let h = self.histories[info.thread.index()].low_bits(self.history_bits);
        (info.pc.word() ^ h) as usize & mask_u64(self.table.index_bits()) as usize
    }

    /// Number of PHT entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl DirectionPredictor for Gshare {
    #[inline]
    fn predict(&mut self, info: BranchInfo, ctx: &KeyCtx) -> bool {
        let idx = self.index_of(info);
        counter_taken(self.table.get(idx, ctx), self.ctr_bits)
    }

    #[inline]
    fn update(&mut self, info: BranchInfo, taken: bool, _predicted: bool, ctx: &KeyCtx) {
        let idx = self.index_of(info);
        let bits = self.ctr_bits;
        self.table.update(idx, ctx, |c| sat_update(c, bits, taken));
        self.histories[info.thread.index()].push(taken);
    }

    #[inline]
    fn train(&mut self, info: BranchInfo, taken: bool, ctx: &KeyCtx) -> bool {
        // Fused predict+update: the index is a pure function of PC and
        // history, and `update` pushes history last, so computing it once
        // is bit-identical to the split calls.
        let idx = self.index_of(info);
        let predicted = counter_taken(self.table.get(idx, ctx), self.ctr_bits);
        let bits = self.ctr_bits;
        self.table.update(idx, ctx, |c| sat_update(c, bits, taken));
        self.histories[info.thread.index()].push(taken);
        predicted
    }

    fn flush_all(&mut self) {
        self.table.flush_all();
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        self.table.flush_thread(thread);
    }

    fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, KeyPair, Pc};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::Conditional)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Gshare::new(1024, 2, 1);
        let c = ctx();
        let i = info(0x4000);
        let mut correct = 0;
        for n in 0..200 {
            let pred = p.predict(i, &c);
            if pred && n > 10 {
                correct += 1;
            }
            p.update(i, true, pred, &c);
        }
        assert!(correct >= 185, "always-taken accuracy too low: {correct}");
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut p = Gshare::new(4096, 2, 1);
        let c = ctx();
        let i = info(0x100);
        let mut correct = 0;
        let total = 400;
        for n in 0..total {
            let taken = n % 2 == 0;
            let pred = p.predict(i, &c);
            if n > 50 && pred == taken {
                correct += 1;
            }
            p.update(i, taken, pred, &c);
        }
        // With history the alternating pattern becomes near-perfect.
        assert!(
            correct as f64 / (total - 50) as f64 > 0.95,
            "correct={correct}"
        );
    }

    #[test]
    fn threads_have_private_histories() {
        let mut p = Gshare::new(1024, 2, 2);
        let c0 = ctx();
        let i0 = BranchInfo::new(ThreadId::new(0), Pc::new(0x40), BranchKind::Conditional);
        let i1 = BranchInfo::new(ThreadId::new(1), Pc::new(0x40), BranchKind::Conditional);
        p.update(i0, true, false, &c0);
        // Thread 1's history must still be empty: same PC maps to the
        // no-history index.
        assert_eq!(p.index_of(i1), (0x40u64 >> 2) as usize & 1023);
        assert_ne!(p.index_of(i0), p.index_of(i1));
    }

    #[test]
    fn paper_config_sizes() {
        let p = Gshare::paper_2kb(1);
        assert_eq!(p.entries(), 8192);
        assert_eq!(p.storage_bits(), 8192 * 2); // exactly 2 KB
        assert_eq!(p.name(), "gshare");
    }

    #[test]
    fn flush_all_resets_counters() {
        let mut p = Gshare::new(256, 2, 1);
        let c = ctx();
        let i = info(0x800);
        for _ in 0..4 {
            p.update(i, true, false, &c);
        }
        p.flush_all();
        assert!(!p.predict(i, &c));
    }

    #[test]
    fn index_scrambling_relocates_entries() {
        let p = Gshare::new(1024, 2, 1);
        let plain = ctx();
        let noisy = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(3));
        let i = info(0x5a0);
        // The logical index is identical; the physical location differs,
        // which we can observe through PackedTable's scramble.
        let logical = p.index_of(i);
        assert_eq!(plain.scramble_index(logical, 10), logical);
        assert_ne!(noisy.scramble_index(logical, 10), logical);
    }
}
