//! Set-associative Branch Target Buffer.
//!
//! Each way is a [`PackedTable`] of `tag | target` words, so XOR-BTB content
//! encoding covers both the tag and the stored target address — the paper
//! encodes the tag as well, "lest an attacker could use performance
//! counters as a covert channel to sense possible resource contention".
//! Index scrambling (Noisy-XOR-BTB) applies at set selection.
//!
//! Targets are stored as 32-bit word addresses (byte address >> 2), which
//! covers the 16 GiB address range our synthetic workloads live in; real
//! BTBs similarly store compressed targets.

use serde::{Deserialize, Serialize};

use sbp_types::ids::mask_u64;
use sbp_types::{BranchInfo, KeyCtx, PackedTable, Pc, TargetPredictor, ThreadId};

/// Stored target width (word address bits).
const TARGET_BITS: u32 = 32;

/// Configuration for [`Btb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Partial tag width in bits.
    pub tag_bits: u32,
}

impl BtbConfig {
    /// The paper's FPGA BOOM configuration: 256-set × 2-way.
    pub fn paper_fpga() -> Self {
        BtbConfig {
            sets: 256,
            ways: 2,
            tag_bits: 12,
        }
    }

    /// The paper's gem5 Sunny-Cove-like configuration: 1024-set × 4-way.
    pub fn paper_gem5() -> Self {
        BtbConfig {
            sets: 1024,
            ways: 4,
            tag_bits: 12,
        }
    }
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig::paper_fpga()
    }
}

/// A set-associative BTB with per-way encoded `tag | target` storage,
/// valid bits and LRU replacement.
///
/// Valid bits and LRU stamps are flat struct-of-arrays vectors (indexed by
/// `(way, set)` and `(set, way)` respectively) rather than nested `Vec`s:
/// the lookup/update pair runs once per taken branch, and the flat layout
/// keeps it free of pointer chasing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btb {
    cfg: BtbConfig,
    ways: Vec<PackedTable>,
    /// Flat valid bits, indexed `way * sets + set`.
    valid: Vec<bool>,
    /// Flat LRU stamps, indexed `set * ways + way`.
    lru: Vec<u32>,
    clock: u32,
    set_bits: u32,
}

impl Btb {
    /// Creates a BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is 0.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(cfg.ways > 0, "at least one way required");
        let entry_bits = cfg.tag_bits + TARGET_BITS;
        Btb {
            ways: (0..cfg.ways)
                .map(|_| PackedTable::new(cfg.sets, entry_bits, 0))
                .collect(),
            valid: vec![false; cfg.sets * cfg.ways],
            lru: vec![0; cfg.sets * cfg.ways],
            clock: 0,
            set_bits: (cfg.sets as u64).trailing_zeros(),
            cfg,
        }
    }

    /// Flat index of `(way, set)` into the valid-bit array.
    #[inline(always)]
    fn vidx(&self, way: usize, set: usize) -> usize {
        way * self.cfg.sets + set
    }

    /// Enables owner tags for Precise Flush.
    #[must_use]
    pub fn with_owner_tags(mut self) -> Self {
        self.ways = self
            .ways
            .into_iter()
            .map(PackedTable::with_owner_tags)
            .collect();
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// The *logical* set index of a PC (before index-key scrambling).
    pub fn set_of(&self, pc: Pc) -> usize {
        pc.btb_index(self.set_bits)
    }

    /// The partial tag of a PC.
    pub fn tag_of(&self, pc: Pc) -> u64 {
        let t = pc.tag(self.set_bits, self.cfg.tag_bits);
        if t == 0 {
            1 // 0 is reserved so an all-zero entry can never match
        } else {
            t
        }
    }

    fn pack(&self, tag: u64, target: Pc) -> u64 {
        debug_assert!(tag <= mask_u64(self.cfg.tag_bits));
        (tag << TARGET_BITS) | (target.word() & mask_u64(TARGET_BITS))
    }

    fn unpack(&self, word: u64) -> (u64, Pc) {
        let target_word = word & mask_u64(TARGET_BITS);
        let tag = (word >> TARGET_BITS) & mask_u64(self.cfg.tag_bits);
        (tag, Pc::new(target_word << 2))
    }

    fn touch_lru(&mut self, set: usize, way: usize) {
        self.clock = self.clock.wrapping_add(1);
        self.lru[set * self.cfg.ways + way] = self.clock;
    }

    /// Returns the number of valid entries (warm-up observability).
    pub fn valid_entries(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Invalidates a specific logical (set, way) — attack helper.
    pub fn invalidate(&mut self, set: usize, way: usize) {
        let i = self.vidx(way, set);
        self.valid[i] = false;
    }

    /// Checks whether a specific PC currently hits under `ctx` without
    /// updating LRU state (attack probe helper).
    pub fn probe(&self, info: BranchInfo, ctx: &KeyCtx) -> Option<Pc> {
        let set = self.set_of(info.pc);
        let tag = self.tag_of(info.pc);
        for (w, table) in self.ways.iter().enumerate() {
            let phys = ctx.scramble_index(set, self.set_bits);
            if !self.valid[self.vidx(w, phys)] {
                continue;
            }
            let (stored_tag, target) = self.unpack(table.get(set, ctx));
            if stored_tag == tag {
                return Some(target);
            }
        }
        None
    }
}

impl TargetPredictor for Btb {
    #[inline]
    fn lookup(&mut self, info: BranchInfo, ctx: &KeyCtx) -> Option<Pc> {
        let set = self.set_of(info.pc);
        let tag = self.tag_of(info.pc);
        let phys = ctx.scramble_index(set, self.set_bits);
        for w in 0..self.cfg.ways {
            if !self.valid[self.vidx(w, phys)] {
                continue;
            }
            let (stored_tag, target) = self.unpack(self.ways[w].get(set, ctx));
            if stored_tag == tag {
                self.touch_lru(phys, w);
                return Some(target);
            }
        }
        None
    }

    #[inline]
    fn update(&mut self, info: BranchInfo, target: Pc, ctx: &KeyCtx) {
        let set = self.set_of(info.pc);
        let tag = self.tag_of(info.pc);
        let phys = ctx.scramble_index(set, self.set_bits);
        // Hit on the same (decoded) tag: refresh the target in place.
        for w in 0..self.cfg.ways {
            if self.valid[self.vidx(w, phys)] {
                let (stored_tag, _) = self.unpack(self.ways[w].get(set, ctx));
                if stored_tag == tag {
                    let word = self.pack(tag, target);
                    self.ways[w].set(set, word, ctx);
                    self.touch_lru(phys, w);
                    return;
                }
            }
        }
        // Miss: fill an invalid way, else evict LRU.
        let victim = (0..self.cfg.ways)
            .find(|&w| !self.valid[self.vidx(w, phys)])
            .unwrap_or_else(|| {
                (0..self.cfg.ways)
                    .min_by_key(|&w| self.lru[phys * self.cfg.ways + w])
                    .expect("ways > 0")
            });
        let word = self.pack(tag, target);
        self.ways[victim].set(set, word, ctx);
        let vi = self.vidx(victim, phys);
        self.valid[vi] = true;
        self.touch_lru(phys, victim);
    }

    fn flush_all(&mut self) {
        for w in 0..self.cfg.ways {
            self.ways[w].flush_all();
        }
        self.valid.fill(false);
        self.lru.fill(0);
    }

    fn flush_thread(&mut self, thread: ThreadId) {
        // Precise Flush: reset owned entries and their valid bits.
        for w in 0..self.cfg.ways {
            let table = &mut self.ways[w];
            if table.has_owner_tags() {
                table.flush_thread(thread);
                for set in 0..self.cfg.sets {
                    if table.read_raw(set) == table.reset_value() {
                        // Either it was flushed or never written; marking
                        // invalid is safe in both cases.
                        self.valid[w * self.cfg.sets + set] = false;
                    }
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        let data: u64 = self.ways.iter().map(PackedTable::storage_bits).sum();
        // valid bit + 2-bit kind field (paper Figure 4a) per entry.
        data + (self.cfg.sets * self.cfg.ways) as u64 * 3
    }

    fn name(&self) -> &'static str {
        "btb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, KeyPair};

    fn info(pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(0), Pc::new(pc), BranchKind::IndirectJump)
    }

    fn ctx() -> KeyCtx {
        KeyCtx::disabled(ThreadId::new(0))
    }

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig::paper_fpga());
        let c = ctx();
        let i = info(0x8000_4000);
        assert_eq!(btb.lookup(i, &c), None);
        btb.update(i, Pc::new(0x4_0bc8), &c);
        assert_eq!(btb.lookup(i, &c), Some(Pc::new(0x4_0bc8)));
        assert_eq!(btb.valid_entries(), 1);
    }

    #[test]
    fn target_refresh_in_place() {
        let mut btb = Btb::new(BtbConfig::paper_fpga());
        let c = ctx();
        let i = info(0x1000);
        btb.update(i, Pc::new(0x2000), &c);
        btb.update(i, Pc::new(0x3000), &c);
        assert_eq!(btb.lookup(i, &c), Some(Pc::new(0x3000)));
        assert_eq!(btb.valid_entries(), 1, "refresh must not allocate");
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = BtbConfig {
            sets: 16,
            ways: 2,
            tag_bits: 12,
        };
        let mut btb = Btb::new(cfg);
        let c = ctx();
        // Three PCs mapping to the same set (stride = sets * 4 bytes).
        let stride = 16 * 4;
        let a = info(0x1000);
        let b = info(0x1000 + stride);
        let d = info(0x1000 + 2 * stride);
        btb.update(a, Pc::new(0xa), &c);
        btb.update(b, Pc::new(0xb0), &c);
        // Touch a so b becomes LRU.
        assert!(btb.lookup(a, &c).is_some());
        btb.update(d, Pc::new(0xd0), &c);
        assert!(btb.lookup(a, &c).is_some(), "a must survive");
        assert!(btb.lookup(b, &c).is_none(), "b must be evicted");
        assert!(btb.lookup(d, &c).is_some());
    }

    #[test]
    fn tags_disambiguate_same_set() {
        let mut btb = Btb::new(BtbConfig {
            sets: 16,
            ways: 2,
            tag_bits: 12,
        });
        let c = ctx();
        let stride = 16 * 4;
        let a = info(0x1000);
        let b = info(0x1000 + stride);
        btb.update(a, Pc::new(0xaa0), &c);
        btb.update(b, Pc::new(0xbb0), &c);
        assert_eq!(btb.lookup(a, &c), Some(Pc::new(0xaa0)));
        assert_eq!(btb.lookup(b, &c), Some(Pc::new(0xbb0)));
    }

    #[test]
    fn rekey_hides_targets_and_tags() {
        let mut btb = Btb::new(BtbConfig::paper_fpga());
        let k1 = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(1));
        // Fill many entries under key 1.
        for n in 0..128u64 {
            btb.update(info(0x4000 + n * 4), Pc::new(0x8_0000 + n * 16), &k1);
        }
        // Same thread, new key: everything misses (tags decode wrong).
        let k2 = k1.rekeyed(KeyPair::from_random(2));
        let mut hits = 0;
        for n in 0..128u64 {
            if btb.lookup(info(0x4000 + n * 4), &k2).is_some() {
                hits += 1;
            }
        }
        assert!(hits <= 4, "residual BTB hits after rekey: {hits}/128");
    }

    #[test]
    fn cross_thread_isolation_with_different_keys() {
        let mut btb = Btb::new(BtbConfig::paper_fpga());
        let ka = KeyCtx::noisy_xor(ThreadId::new(0), KeyPair::from_random(10));
        let kb = KeyCtx::noisy_xor(ThreadId::new(1), KeyPair::from_random(20));
        let victim_branch = info(0x7000);
        btb.update(victim_branch, Pc::new(0xdead0), &ka);
        // Attacker (thread 1) looks up the same PC: no usable hit.
        let leaked = btb.lookup(
            BranchInfo::new(ThreadId::new(1), Pc::new(0x7000), BranchKind::IndirectJump),
            &kb,
        );
        assert_ne!(
            leaked,
            Some(Pc::new(0xdead0)),
            "target leaked across threads"
        );
    }

    #[test]
    fn flush_all_clears() {
        let mut btb = Btb::new(BtbConfig::paper_fpga());
        let c = ctx();
        btb.update(info(0x1234), Pc::new(0x5678), &c);
        btb.flush_all();
        assert_eq!(btb.lookup(info(0x1234), &c), None);
        assert_eq!(btb.valid_entries(), 0);
    }

    #[test]
    fn precise_flush_clears_owned_only() {
        let mut btb = Btb::new(BtbConfig {
            sets: 64,
            ways: 2,
            tag_bits: 12,
        })
        .with_owner_tags();
        let mut ka = KeyCtx::disabled(ThreadId::new(0));
        ka.owner_tracking = true;
        let mut kb = KeyCtx::disabled(ThreadId::new(1));
        kb.owner_tracking = true;
        let ia = info(0x1000);
        let ib = BranchInfo::new(ThreadId::new(1), Pc::new(0x2000), BranchKind::IndirectJump);
        btb.update(ia, Pc::new(0xaaa0), &ka);
        btb.update(ib, Pc::new(0xbbb0), &kb);
        btb.flush_thread(ThreadId::new(0));
        assert_eq!(btb.lookup(ia, &ka), None, "thread 0 entry must be gone");
        assert_eq!(
            btb.lookup(ib, &kb),
            Some(Pc::new(0xbbb0)),
            "thread 1 entry must stay"
        );
    }

    #[test]
    fn storage_bits_paper_config() {
        let btb = Btb::new(BtbConfig::paper_fpga());
        // 512 entries × (12 tag + 32 target) + 3 control bits each.
        assert_eq!(btb.storage_bits(), 512 * 44 + 512 * 3);
        assert_eq!(btb.name(), "btb");
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut btb = Btb::new(BtbConfig {
            sets: 16,
            ways: 2,
            tag_bits: 12,
        });
        let c = ctx();
        let stride = 16 * 4;
        let a = info(0x1000);
        let b = info(0x1000 + stride);
        let d = info(0x1000 + 2 * stride);
        btb.update(a, Pc::new(0xa0), &c);
        btb.update(b, Pc::new(0xb0), &c);
        // probe(a) must NOT refresh a's LRU position.
        assert!(btb.probe(a, &c).is_some());
        btb.update(d, Pc::new(0xd0), &c);
        assert!(
            btb.lookup(a, &c).is_none(),
            "a should have been the LRU victim"
        );
    }
}
