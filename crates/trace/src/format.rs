//! Binary trace serialization.
//!
//! A compact self-describing format so traces can be captured once and
//! replayed (or shared) without re-running the generator:
//!
//! ```text
//! magic "SBPT" | u32 version | u64 event count | events...
//! event: tag u8 (0=branch, 1=priv-switch)
//!   branch:      pc u64 | kind u8 | taken u8 | target u64 | gap u32
//!   priv-switch: level u8 (0=user, 1=kernel)
//! ```
//!
//! This module is the in-memory (version 1) codec; the on-disk container
//! with its extended version-2 header lives in [`crate::file`] and shares
//! the per-event encoding defined here.

use bytes::{Buf, Bytes};

use sbp_types::{BranchKind, BranchRecord, Pc, Privilege, SbpError};

use crate::generator::TraceEvent;

pub(crate) const MAGIC: &[u8; 4] = b"SBPT";
const VERSION: u32 = 1;

/// Encoded size of the smallest event (a privilege switch: tag + level).
/// Decoder capacity hints derive from this, never from the untrusted
/// header count alone.
pub(crate) const MIN_EVENT_SIZE: usize = 2;

/// Encoded size of a branch event (tag + pc + kind + taken + target + gap).
pub(crate) const BRANCH_EVENT_SIZE: usize = 23;

fn kind_to_u8(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::IndirectCall => 4,
        BranchKind::Return => 5,
    }
}

fn kind_from_u8(v: u8) -> Result<BranchKind, SbpError> {
    Ok(match v {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::IndirectCall,
        5 => BranchKind::Return,
        _ => return Err(SbpError::trace(format!("unknown branch kind {v}"))),
    })
}

/// Encoded size of one event.
pub fn event_encoded_len(ev: &TraceEvent) -> usize {
    match ev {
        TraceEvent::Branch(_) => BRANCH_EVENT_SIZE,
        TraceEvent::PrivilegeSwitch(_) => MIN_EVENT_SIZE,
    }
}

/// Exact encoded size of an event slice, header excluded. One cheap pass;
/// the file writer uses the same per-event sizes for its running totals.
pub fn events_encoded_len(events: &[TraceEvent]) -> usize {
    events.iter().map(event_encoded_len).sum()
}

/// Appends one event's encoding to `out`.
pub(crate) fn encode_event_into(out: &mut Vec<u8>, ev: &TraceEvent) {
    match ev {
        TraceEvent::Branch(r) => {
            out.push(0);
            out.extend_from_slice(&r.pc.addr().to_be_bytes());
            out.push(kind_to_u8(r.kind));
            out.push(r.taken as u8);
            out.extend_from_slice(&r.target.addr().to_be_bytes());
            out.extend_from_slice(&r.gap.to_be_bytes());
        }
        TraceEvent::PrivilegeSwitch(p) => {
            out.push(1);
            out.push(matches!(p, Privilege::Kernel) as u8);
        }
    }
}

/// Decodes one event from the front of `data`, consuming its bytes.
///
/// Returns `Ok(None)` — without consuming anything — when `data` holds
/// only a prefix of the next event, so streaming readers can refill and
/// retry; a tag byte that is no known event is an error.
pub(crate) fn try_decode_event(data: &mut &[u8]) -> Result<Option<TraceEvent>, SbpError> {
    let Some(&tag) = data.first() else {
        return Ok(None);
    };
    match tag {
        0 => {
            if data.remaining() < BRANCH_EVENT_SIZE {
                return Ok(None);
            }
            data.get_u8();
            let pc = Pc::new(data.get_u64());
            let kind = kind_from_u8(data.get_u8())?;
            let taken = data.get_u8() != 0;
            let target = Pc::new(data.get_u64());
            let gap = data.get_u32();
            Ok(Some(TraceEvent::Branch(BranchRecord {
                pc,
                kind,
                taken,
                target,
                gap,
            })))
        }
        1 => {
            if data.remaining() < MIN_EVENT_SIZE {
                return Ok(None);
            }
            data.get_u8();
            let p = if data.get_u8() != 0 {
                Privilege::Kernel
            } else {
                Privilege::User
            };
            Ok(Some(TraceEvent::PrivilegeSwitch(p)))
        }
        t => Err(SbpError::trace(format!("unknown event tag {t}"))),
    }
}

/// Serializes events to the binary trace format.
///
/// ```
/// use sbp_trace::format::{decode_trace, encode_trace};
/// use sbp_trace::TraceEvent;
/// use sbp_types::{BranchKind, BranchRecord, Pc};
///
/// # fn main() -> Result<(), sbp_types::SbpError> {
/// let events = vec![TraceEvent::Branch(BranchRecord::taken(
///     Pc::new(0x400), BranchKind::Call, Pc::new(0x800), 3,
/// ))];
/// let bytes = encode_trace(&events);
/// assert_eq!(decode_trace(&bytes)?, events);
/// # Ok(())
/// # }
/// ```
pub fn encode_trace(events: &[TraceEvent]) -> Bytes {
    // Exact capacity: switch events are 2 bytes, not 23, so estimating
    // every event as a branch over-reserved ~10x on switch-heavy traces.
    let mut buf = Vec::with_capacity(16 + events_encoded_len(events));
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_be_bytes());
    buf.extend_from_slice(&(events.len() as u64).to_be_bytes());
    for ev in events {
        encode_event_into(&mut buf, ev);
    }
    Bytes::from(buf)
}

/// Deserializes a binary trace.
///
/// # Errors
///
/// Returns [`SbpError::TraceFormat`] on a bad magic, version, truncated
/// input, unknown enum tag, or trailing bytes after the declared event
/// count (a concatenated or corrupted trace must not "succeed" with data
/// loss).
pub fn decode_trace(mut data: &[u8]) -> Result<Vec<TraceEvent>, SbpError> {
    if data.remaining() < 16 {
        return Err(SbpError::trace("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SbpError::trace("bad magic"));
    }
    let version = data.get_u32();
    if version != VERSION {
        return Err(SbpError::trace(format!("unsupported version {version}")));
    }
    let count = data.get_u64() as usize;
    // The header count is untrusted input: bound the allocation hint by
    // what the body could possibly hold, so a crafted 16-byte file cannot
    // demand a multi-hundred-MB reservation before the first body check.
    let mut events = Vec::with_capacity(count.min(data.remaining() / MIN_EVENT_SIZE));
    for i in 0..count {
        match try_decode_event(&mut data)? {
            Some(ev) => events.push(ev),
            None => return Err(SbpError::trace(format!("truncated at event {i}"))),
        }
    }
    if data.remaining() > 0 {
        return Err(SbpError::trace(format!(
            "{} trailing bytes after {count} events",
            data.remaining()
        )));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use crate::TraceGenerator;

    #[test]
    fn roundtrip_generated_trace() {
        let p = WorkloadProfile::by_name("povray").unwrap();
        let events: Vec<TraceEvent> = TraceGenerator::new(&p, 0x2000_0000, 9)
            .take(10_000)
            .collect();
        let bytes = encode_trace(&events);
        let decoded = decode_trace(&bytes).expect("decode");
        assert_eq!(decoded, events);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_trace(b"NOPE00000000000000000000").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let p = WorkloadProfile::by_name("gcc").unwrap();
        let events: Vec<TraceEvent> = TraceGenerator::new(&p, 0x1000_0000, 1).take(50).collect();
        let bytes = encode_trace(&events);
        let err = decode_trace(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = encode_trace(&[]).to_vec();
        bytes[4..8].copy_from_slice(&99u32.to_be_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(decode_trace(&encode_trace(&[])).unwrap(), vec![]);
    }

    #[test]
    fn all_kinds_roundtrip() {
        use sbp_types::BranchKind::*;
        let events: Vec<TraceEvent> = [
            Conditional,
            DirectJump,
            IndirectJump,
            Call,
            IndirectCall,
            Return,
        ]
        .iter()
        .map(|&k| TraceEvent::Branch(BranchRecord::taken(Pc::new(0x10), k, Pc::new(0x20), 1)))
        .chain([
            TraceEvent::PrivilegeSwitch(Privilege::Kernel),
            TraceEvent::PrivilegeSwitch(Privilege::User),
        ])
        .collect();
        assert_eq!(decode_trace(&encode_trace(&events)).unwrap(), events);
    }

    #[test]
    fn huge_header_count_with_empty_body_is_rejected_cheaply() {
        // A 16-byte file whose header claims u64::MAX events must fail
        // with a truncation error, not a giant up-front allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_be_bytes());
        bytes.extend_from_slice(&u64::MAX.to_be_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated at event 0"), "{err}");
    }

    #[test]
    fn encode_capacity_estimate_is_exact() {
        let events = vec![
            TraceEvent::PrivilegeSwitch(Privilege::Kernel),
            TraceEvent::Branch(BranchRecord::taken(
                Pc::new(0x10),
                BranchKind::Conditional,
                Pc::new(0x20),
                1,
            )),
            TraceEvent::PrivilegeSwitch(Privilege::User),
        ];
        assert_eq!(events_encoded_len(&events), 2 + 23 + 2);
        assert_eq!(encode_trace(&events).len(), 16 + 2 + 23 + 2);
    }

    #[test]
    fn rejects_trailing_bytes() {
        let p = WorkloadProfile::by_name("gcc").unwrap();
        let events: Vec<TraceEvent> = TraceGenerator::new(&p, 0x1000_0000, 2).take(20).collect();
        let mut bytes = encode_trace(&events).to_vec();
        // Append one whole extra event beyond the declared count.
        encode_event_into(&mut bytes, &TraceEvent::PrivilegeSwitch(Privilege::Kernel));
        let err = decode_trace(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("2 trailing bytes after 20 events"),
            "{err}"
        );
    }
}
