//! Binary trace serialization.
//!
//! A compact self-describing format so traces can be captured once and
//! replayed (or shared) without re-running the generator:
//!
//! ```text
//! magic "SBPT" | u32 version | u64 event count | events...
//! event: tag u8 (0=branch, 1=priv-switch)
//!   branch:      pc u64 | kind u8 | taken u8 | target u64 | gap u32
//!   priv-switch: level u8 (0=user, 1=kernel)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sbp_types::{BranchKind, BranchRecord, Pc, Privilege, SbpError};

use crate::generator::TraceEvent;

const MAGIC: &[u8; 4] = b"SBPT";
const VERSION: u32 = 1;

fn kind_to_u8(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::IndirectCall => 4,
        BranchKind::Return => 5,
    }
}

fn kind_from_u8(v: u8) -> Result<BranchKind, SbpError> {
    Ok(match v {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::IndirectCall,
        5 => BranchKind::Return,
        _ => return Err(SbpError::trace(format!("unknown branch kind {v}"))),
    })
}

/// Serializes events to the binary trace format.
///
/// ```
/// use sbp_trace::format::{decode_trace, encode_trace};
/// use sbp_trace::TraceEvent;
/// use sbp_types::{BranchKind, BranchRecord, Pc};
///
/// # fn main() -> Result<(), sbp_types::SbpError> {
/// let events = vec![TraceEvent::Branch(BranchRecord::taken(
///     Pc::new(0x400), BranchKind::Call, Pc::new(0x800), 3,
/// ))];
/// let bytes = encode_trace(&events);
/// assert_eq!(decode_trace(&bytes)?, events);
/// # Ok(())
/// # }
/// ```
pub fn encode_trace(events: &[TraceEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + events.len() * 23);
    buf.put_slice(MAGIC);
    buf.put_u32(VERSION);
    buf.put_u64(events.len() as u64);
    for ev in events {
        match ev {
            TraceEvent::Branch(r) => {
                buf.put_u8(0);
                buf.put_u64(r.pc.addr());
                buf.put_u8(kind_to_u8(r.kind));
                buf.put_u8(r.taken as u8);
                buf.put_u64(r.target.addr());
                buf.put_u32(r.gap);
            }
            TraceEvent::PrivilegeSwitch(p) => {
                buf.put_u8(1);
                buf.put_u8(matches!(p, Privilege::Kernel) as u8);
            }
        }
    }
    buf.freeze()
}

/// Deserializes a binary trace.
///
/// # Errors
///
/// Returns [`SbpError::TraceFormat`] on a bad magic, version, truncated
/// input or unknown enum tag.
pub fn decode_trace(mut data: &[u8]) -> Result<Vec<TraceEvent>, SbpError> {
    if data.remaining() < 16 {
        return Err(SbpError::trace("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SbpError::trace("bad magic"));
    }
    let version = data.get_u32();
    if version != VERSION {
        return Err(SbpError::trace(format!("unsupported version {version}")));
    }
    let count = data.get_u64() as usize;
    let mut events = Vec::with_capacity(count.min(1 << 24));
    for i in 0..count {
        if data.remaining() < 1 {
            return Err(SbpError::trace(format!("truncated at event {i}")));
        }
        match data.get_u8() {
            0 => {
                if data.remaining() < 22 {
                    return Err(SbpError::trace(format!("truncated branch at event {i}")));
                }
                let pc = Pc::new(data.get_u64());
                let kind = kind_from_u8(data.get_u8())?;
                let taken = data.get_u8() != 0;
                let target = Pc::new(data.get_u64());
                let gap = data.get_u32();
                events.push(TraceEvent::Branch(BranchRecord {
                    pc,
                    kind,
                    taken,
                    target,
                    gap,
                }));
            }
            1 => {
                if data.remaining() < 1 {
                    return Err(SbpError::trace(format!("truncated switch at event {i}")));
                }
                let p = if data.get_u8() != 0 {
                    Privilege::Kernel
                } else {
                    Privilege::User
                };
                events.push(TraceEvent::PrivilegeSwitch(p));
            }
            t => return Err(SbpError::trace(format!("unknown event tag {t}"))),
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use crate::TraceGenerator;

    #[test]
    fn roundtrip_generated_trace() {
        let p = WorkloadProfile::by_name("povray").unwrap();
        let events: Vec<TraceEvent> = TraceGenerator::new(&p, 0x2000_0000, 9)
            .take(10_000)
            .collect();
        let bytes = encode_trace(&events);
        let decoded = decode_trace(&bytes).expect("decode");
        assert_eq!(decoded, events);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_trace(b"NOPE00000000000000000000").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let p = WorkloadProfile::by_name("gcc").unwrap();
        let events: Vec<TraceEvent> = TraceGenerator::new(&p, 0x1000_0000, 1).take(50).collect();
        let bytes = encode_trace(&events);
        let err = decode_trace(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = encode_trace(&[]).to_vec();
        bytes[4..8].copy_from_slice(&99u32.to_be_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(decode_trace(&encode_trace(&[])).unwrap(), vec![]);
    }

    #[test]
    fn all_kinds_roundtrip() {
        use sbp_types::BranchKind::*;
        let events: Vec<TraceEvent> = [
            Conditional,
            DirectJump,
            IndirectJump,
            Call,
            IndirectCall,
            Return,
        ]
        .iter()
        .map(|&k| TraceEvent::Branch(BranchRecord::taken(Pc::new(0x10), k, Pc::new(0x20), 1)))
        .chain([
            TraceEvent::PrivilegeSwitch(Privilege::Kernel),
            TraceEvent::PrivilegeSwitch(Privilege::User),
        ])
        .collect();
        assert_eq!(decode_trace(&encode_trace(&events)).unwrap(), events);
    }
}
