//! SimPoint-style phase clustering over recorded traces.
//!
//! Long traces are redundant: programs move through a small set of
//! recurring *phases*, so simulating a few representative windows with
//! weights reproduces the whole-trace average at a fraction of the cost.
//! This module implements the classic pipeline over an `SBPT` file:
//!
//! 1. slice the branch stream into fixed-size intervals (`interval`
//!    branches each, after a warm-up `skip`);
//! 2. summarize each interval as a basic-block vector — branch PCs
//!    hashed into a fixed number of dimensions, L1-normalized — so
//!    intervals executing the same code look alike regardless of when
//!    they run;
//! 3. k-means with deterministic seeding (a seeded farthest-point
//!    initialization; ties broken by lowest index) groups the intervals
//!    into phases;
//! 4. each cluster contributes one representative window (the member
//!    closest to the centroid) weighted by the cluster's share of the
//!    trace.
//!
//! The whole pass streams the file once in bounded chunks; only the
//! per-interval vectors (a few doubles each) are kept.

use std::path::Path;

use sbp_types::rng::SplitMix64;
use sbp_types::SbpError;

use crate::file::TraceReader;
use crate::generator::TraceEvent;

/// Hashed basic-block-vector dimensionality. 64 buckets is plenty to
/// separate the synthetic workloads' phase structure while keeping the
/// k-means pass trivially cheap.
const BBV_DIMS: usize = 64;

/// k-means iteration cap; assignments converge in a handful of rounds on
/// these vector counts, the cap just bounds pathological inputs.
const KMEANS_ITERS: usize = 25;

/// One representative measurement window chosen by the clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePick {
    /// Interval index (0 = the first interval after the skipped prefix).
    /// The window covers branches `skip + index*interval ..
    /// skip + (index+1)*interval` of the trace's target stream.
    pub index: u64,
    /// The phase's share of all clustered intervals (picks sum to 1).
    pub weight: f64,
}

/// A weighted set of representative windows over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    /// Branches per interval (window length).
    pub interval: u64,
    /// Representative windows, ascending by index.
    pub picks: Vec<PhasePick>,
}

impl PhaseSchedule {
    /// Number of intervals that were clustered (weights are shares of
    /// this population).
    pub fn weight_sum(&self) -> f64 {
        self.picks.iter().map(|p| p.weight).sum()
    }
}

/// Clusters the trace at `path` into at most `k` phases of
/// `interval`-branch windows, ignoring the first `skip` branches (the
/// simulator's warm-up prefix) and the last `reserve` branches (kept
/// un-clustered so a replaying simulator can run post-schedule event
/// windows without exhausting the trace).
///
/// Deterministic: same file + same parameters → same schedule, on every
/// platform (fixed seeding, index-ordered tie-breaks, no ambient RNG).
///
/// # Errors
///
/// Fails on IO/format errors, `interval == 0`, `k == 0`, or a trace too
/// short to yield even one complete interval after the skip and the
/// reserved tail.
pub fn cluster_trace(
    path: &Path,
    skip: u64,
    interval: u64,
    k: usize,
    reserve: u64,
) -> Result<PhaseSchedule, SbpError> {
    if interval == 0 {
        return Err(SbpError::trace("phase interval must be positive"));
    }
    if k == 0 {
        return Err(SbpError::trace("phase count k must be positive"));
    }
    let (mut vectors, post_skip) = interval_vectors(path, skip, interval)?;
    let usable = post_skip.saturating_sub(reserve);
    vectors.truncate((usable / interval) as usize);
    if vectors.is_empty() {
        return Err(SbpError::trace(format!(
            "{}: trace too short for phase clustering (needs > {} branches: \
             {skip} skipped + at least one {interval}-branch interval \
             + {reserve} reserved)",
            path.display(),
            skip + interval + reserve,
        )));
    }
    let k = k.min(vectors.len());
    let assignment = kmeans(&vectors, k);
    let mut picks = representatives(&vectors, &assignment, k);
    picks.sort_by_key(|p| p.index);
    Ok(PhaseSchedule { interval, picks })
}

/// Streams the trace once, building one L1-normalized hashed-PC vector
/// per complete interval. A trailing partial interval is dropped.
/// Also returns the total branch count after the skipped prefix (the
/// caller's tail-reserve arithmetic needs it).
fn interval_vectors(
    path: &Path,
    skip: u64,
    interval: u64,
) -> Result<(Vec<[f64; BBV_DIMS]>, u64), SbpError> {
    let mut reader = TraceReader::open(path)?;
    let mut vectors = Vec::new();
    let mut current = [0f64; BBV_DIMS];
    let mut skipped = 0u64;
    let mut post_skip = 0u64;
    let mut in_interval = 0u64;
    while let Some(ev) = reader.next_event()? {
        let TraceEvent::Branch(rec) = ev else {
            continue;
        };
        if skipped < skip {
            skipped += 1;
            continue;
        }
        post_skip += 1;
        current[bucket(rec.pc.addr())] += 1.0;
        in_interval += 1;
        if in_interval == interval {
            for d in &mut current {
                *d /= interval as f64;
            }
            vectors.push(current);
            current = [0f64; BBV_DIMS];
            in_interval = 0;
        }
    }
    Ok((vectors, post_skip))
}

fn bucket(pc: u64) -> usize {
    // A full 64-bit mix so nearby PCs don't collide into adjacent
    // buckets; the constant is arbitrary but fixed (determinism).
    (SplitMix64::derive(pc, 0xbb5e_c70f) % BBV_DIMS as u64) as usize
}

fn dist2(a: &[f64; BBV_DIMS], b: &[f64; BBV_DIMS]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Plain Lloyd's algorithm with seeded farthest-point initialization.
/// Returns the per-vector cluster assignment.
fn kmeans(vectors: &[[f64; BBV_DIMS]], k: usize) -> Vec<usize> {
    let n = vectors.len();
    // Seeded first centroid, then farthest-point: each next centroid is
    // the vector maximizing its distance to the chosen set (ties →
    // lowest index). Deterministic and spread-out without true RNG.
    let mut centroid_idx = vec![(SplitMix64::derive(0x9a5e_5eed, n as u64) % n as u64) as usize];
    while centroid_idx.len() < k {
        let (mut best, mut best_d) = (0usize, -1.0f64);
        for (i, v) in vectors.iter().enumerate() {
            let d = centroid_idx
                .iter()
                .map(|&c| dist2(v, &vectors[c]))
                .fold(f64::INFINITY, f64::min);
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        centroid_idx.push(best);
    }
    let mut centroids: Vec<[f64; BBV_DIMS]> = centroid_idx.iter().map(|&i| vectors[i]).collect();
    let mut assignment = vec![0usize; n];
    for _ in 0..KMEANS_ITERS {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let (mut best, mut best_d) = (0usize, f64::INFINITY);
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![[0f64; BBV_DIMS]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in vectors.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(v.iter()) {
                *s += x;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (dst, s) in centroid.iter_mut().zip(sums[c].iter()) {
                    *dst = s / counts[c] as f64;
                }
            }
            // Empty clusters keep their old centroid; they simply end up
            // with no representative.
        }
    }
    assignment
}

/// One pick per non-empty cluster: the member closest to the centroid,
/// weighted by the cluster's population share.
fn representatives(vectors: &[[f64; BBV_DIMS]], assignment: &[usize], k: usize) -> Vec<PhasePick> {
    let n = vectors.len();
    let mut sums = vec![[0f64; BBV_DIMS]; k];
    let mut counts = vec![0usize; k];
    for (i, v) in vectors.iter().enumerate() {
        let c = assignment[i];
        counts[c] += 1;
        for (s, x) in sums[c].iter_mut().zip(v.iter()) {
            *s += x;
        }
    }
    let mut picks = Vec::new();
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let mut centroid = [0f64; BBV_DIMS];
        for (dst, s) in centroid.iter_mut().zip(sums[c].iter()) {
            *dst = s / counts[c] as f64;
        }
        let (mut best, mut best_d) = (usize::MAX, f64::INFINITY);
        for (i, v) in vectors.iter().enumerate() {
            if assignment[i] != c {
                continue;
            }
            let d = dist2(v, &centroid);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        picks.push(PhasePick {
            index: best as u64,
            weight: counts[c] as f64 / n as f64,
        });
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use crate::replay::record_trace;
    use crate::TraceGenerator;
    use std::path::PathBuf;

    fn recorded(name: &str, seed: u64, events: u64, file: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbpt-phase-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(file);
        let p = WorkloadProfile::by_name(name).unwrap();
        let mut gen = TraceGenerator::new(&p, 0x1000_0000, seed);
        record_trace(&mut gen, name, events, &path).expect("record");
        path
    }

    #[test]
    fn schedule_is_deterministic_and_well_formed() {
        let path = recorded("gcc", 7, 120_000, "det.sbpt");
        let a = cluster_trace(&path, 5_000, 10_000, 4, 0).expect("cluster");
        let b = cluster_trace(&path, 5_000, 10_000, 4, 0).expect("cluster");
        assert_eq!(a, b, "clustering must be deterministic");
        assert!(!a.picks.is_empty() && a.picks.len() <= 4);
        assert!(
            (a.weight_sum() - 1.0).abs() < 1e-9,
            "weights sum to 1, got {}",
            a.weight_sum()
        );
        // Picks ascend and stay within the interval population.
        for w in a.picks.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn k_larger_than_interval_count_is_clamped() {
        let path = recorded("libquantum", 3, 30_000, "clamp.sbpt");
        // ~30k events ≈ at most 3 complete 8k-branch intervals after skip.
        let s = cluster_trace(&path, 1_000, 8_000, 64, 0).expect("cluster");
        assert!(s.picks.len() <= 3, "{} picks", s.picks.len());
        assert!((s.weight_sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_short_trace_is_a_clean_error() {
        let path = recorded("gcc", 9, 500, "short.sbpt");
        let err = cluster_trace(&path, 400, 10_000, 4, 0).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
    }

    #[test]
    fn reserve_excludes_the_trace_tail_from_clustering() {
        let path = recorded("gcc", 21, 60_000, "reserve.sbpt");
        let all = cluster_trace(&path, 1_000, 5_000, 64, 0).expect("cluster");
        let reserved = cluster_trace(&path, 1_000, 5_000, 64, 12_000).expect("cluster");
        let last = |s: &PhaseSchedule| s.picks.last().unwrap().index;
        // The reserved tail (>= two intervals) removes at least its worth
        // of clusterable intervals, so the last eligible index shrinks.
        assert!(reserved.picks.len() < all.picks.len() || last(&reserved) < last(&all));
        assert!((reserved.weight_sum() - 1.0).abs() < 1e-9);
        // Reserving everything leaves nothing to cluster.
        let err = cluster_trace(&path, 1_000, 5_000, 4, 60_000).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
    }

    #[test]
    fn zero_parameters_are_rejected() {
        let path = recorded("gcc", 9, 1_000, "zeros.sbpt");
        assert!(cluster_trace(&path, 0, 0, 4, 0).is_err());
        assert!(cluster_trace(&path, 0, 100, 0, 0).is_err());
    }
}
