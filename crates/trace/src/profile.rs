//! Per-benchmark workload profiles: the SPEC CPU 2006 stand-ins.
//!
//! The paper evaluates on SPEC CPU 2006 pairs (Table 3). We cannot ship
//! SPEC, so each benchmark is replaced by a *workload profile*: a
//! parameterization of the synthetic program model (static branch counts,
//! direction-behaviour mix, indirect/call structure, branch density,
//! syscall rate). Parameters are chosen per benchmark from its published
//! branch characteristics and the figures the paper itself reports (static
//! conditional branch ratios, PHT/BTB accuracies, residual BTB entries,
//! Table 4 privilege-switch rates), so that the *relative* behaviour of the
//! twelve cases matches the paper.

use serde::{Deserialize, Serialize};

/// Fractions of conditional sites per behaviour class (must sum to ≈ 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMix {
    /// Nearly-always-taken sites (`p = 0.98`).
    pub always: f64,
    /// Biased sites (`p ∈ [0.80, 0.95]`).
    pub biased: f64,
    /// Noise-floor sites (`p ∈ [0.40, 0.65]`), unlearnable.
    pub random: f64,
    /// Loop backedges (trip counts drawn from `loop_trips`).
    pub loops: f64,
    /// Cyclic patterns of period 4–32 (global-history learnable).
    pub pattern: f64,
    /// Correlated sites copying a recent global outcome (long-history
    /// learnable — TAGE territory).
    pub correlated: f64,
}

impl BehaviorMix {
    /// Validates that the fractions form a distribution.
    pub fn is_normalized(&self) -> bool {
        let sum =
            self.always + self.biased + self.random + self.loops + self.pattern + self.correlated;
        (sum - 1.0).abs() < 1e-6
            && [
                self.always,
                self.biased,
                self.random,
                self.loops,
                self.pattern,
                self.correlated,
            ]
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f))
    }
}

/// A complete benchmark stand-in description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (matches Table 3 spelling).
    pub name: &'static str,
    /// Static conditional branch sites.
    pub cond_sites: usize,
    /// Behaviour class fractions.
    pub mix: BehaviorMix,
    /// Loop trip count range (inclusive).
    pub loop_trips: (u32, u32),
    /// Static indirect jump/call sites.
    pub indirect_sites: usize,
    /// Distinct targets per indirect site.
    pub targets_per_indirect: usize,
    /// Static direct call sites.
    pub call_sites: usize,
    /// Fraction of dynamic branches that are conditional.
    pub cond_fraction: f64,
    /// Fraction that are indirect jumps/calls.
    pub indirect_fraction: f64,
    /// Fraction that are direct calls (a matched return follows later).
    pub call_fraction: f64,
    /// Mean non-branch instructions between branches.
    pub mean_gap: f64,
    /// Syscalls per million instructions (drives Table 4).
    pub syscalls_per_minstr: f64,
    /// Zipf-like skew of site popularity (0 = uniform, 1 = strongly
    /// skewed toward a hot subset).
    pub locality: f64,
    /// Instructions spent in the kernel per syscall (min, max).
    pub kernel_span: (u32, u32),
}

impl WorkloadProfile {
    /// Looks up a profile by benchmark name.
    ///
    /// # Errors
    ///
    /// Returns [`sbp_types::SbpError::UnknownWorkload`] for unknown names.
    pub fn by_name(name: &str) -> Result<WorkloadProfile, sbp_types::SbpError> {
        registry()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| sbp_types::SbpError::UnknownWorkload(name.to_owned()))
    }

    /// The synthetic kernel-mode workload executed inside syscalls.
    pub fn kernel() -> WorkloadProfile {
        WorkloadProfile {
            name: "kernel",
            cond_sites: 600,
            mix: BehaviorMix {
                always: 0.30,
                biased: 0.30,
                random: 0.15,
                loops: 0.10,
                pattern: 0.10,
                correlated: 0.05,
            },
            loop_trips: (3, 24),
            indirect_sites: 40,
            targets_per_indirect: 4,
            call_sites: 60,
            cond_fraction: 0.78,
            indirect_fraction: 0.05,
            call_fraction: 0.085,
            mean_gap: 4.5,
            syscalls_per_minstr: 0.0,
            locality: 0.7,
            kernel_span: (0, 0),
        }
    }
}

/// Builds one profile row. The long positional list is private to this
/// module; the public surface is the struct.
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &'static str,
    cond_sites: usize,
    mix: BehaviorMix,
    loop_trips: (u32, u32),
    indirect_sites: usize,
    targets_per_indirect: usize,
    cond_instr_ratio: f64,
    syscalls_per_minstr: f64,
    locality: f64,
) -> WorkloadProfile {
    // cond_instr_ratio = cond_fraction / (mean_gap + 1)
    //
    // Syscall calibration: the registry's per-benchmark rates are scaled so
    // that the *measured* privilege switches per million cycles (each
    // syscall = entry + exit, at the simulated IPC) land on Table 4's
    // per-case values; see the tab04 harness.
    const SYSCALL_CAL: f64 = 0.2;
    let cond_fraction = 0.80;
    let indirect_fraction = 0.04;
    let call_fraction = 0.08;
    let mean_gap = (cond_fraction / cond_instr_ratio - 1.0).max(0.5);
    WorkloadProfile {
        name,
        cond_sites,
        mix,
        loop_trips,
        indirect_sites,
        targets_per_indirect,
        call_sites: (cond_sites / 12).max(4),
        cond_fraction,
        indirect_fraction,
        call_fraction,
        mean_gap,
        syscalls_per_minstr: syscalls_per_minstr * SYSCALL_CAL,
        locality,
        kernel_span: (400, 4000),
    }
}

fn mix(
    always: f64,
    biased: f64,
    random: f64,
    loops: f64,
    pattern: f64,
    correlated: f64,
) -> BehaviorMix {
    BehaviorMix {
        always,
        biased,
        random,
        loops,
        pattern,
        correlated,
    }
}

/// All benchmark profiles (Table 3 population).
///
/// Salient calibration targets (from the paper's own text):
/// * `gcc` 12.1% / `calculix` 8.1% static conditional ratio, PHT accuracy
///   90.1% / 94.0% — drives the largest XOR-PHT loss (case 1);
/// * `gromacs` 4.8% / `GemsFDTD` 7.6% conditional ratio, gromacs PHT
///   accuracy 88.9% — tiny XOR-PHT impact (case 7);
/// * `gobmk`/`libquantum` leave 500–800 residual BTB entries and have BTB
///   accuracy 85.2% / 99.3% — the largest XOR-BTB loss (case 6);
/// * `milc`+`povray` (case 2) shows *negative* flush overhead: povray's
///   frequently-wrong-taken predictions are corrected by fall-through
///   after a BTB/PHT reset, so its profile is rich in low-`p` Bernoulli
///   sites that a warm predictor mistrains;
/// * Table 4 privilege-switch rates: per-benchmark syscall rates are set
///   so each pair's average approximates the reported per-case value.
pub fn registry() -> Vec<WorkloadProfile> {
    vec![
        //       name            sites  mix(always biased random loops pattern corr)  trips    ind tgt  cond%   sys/Mi  loc
        profile(
            "gcc",
            2600,
            mix(0.26, 0.26, 0.10, 0.12, 0.13, 0.13),
            (3, 40),
            90,
            5,
            0.121,
            10.0,
            0.55,
        ),
        profile(
            "calculix",
            1400,
            mix(0.32, 0.26, 0.06, 0.16, 0.10, 0.10),
            (4, 60),
            40,
            3,
            0.081,
            6.6,
            0.65,
        ),
        profile(
            "milc",
            420,
            mix(0.32, 0.18, 0.04, 0.30, 0.08, 0.08),
            (8, 120),
            24,
            3,
            0.070,
            5.1,
            0.75,
        ),
        profile(
            "povray",
            1500,
            mix(0.18, 0.26, 0.14, 0.10, 0.16, 0.16),
            (3, 24),
            110,
            6,
            0.110,
            18.7,
            0.55,
        ),
        profile(
            "bzip2_source",
            700,
            mix(0.24, 0.30, 0.10, 0.12, 0.13, 0.11),
            (4, 48),
            18,
            2,
            0.115,
            3.1,
            0.70,
        ),
        profile(
            "soplex",
            1000,
            mix(0.28, 0.26, 0.08, 0.14, 0.13, 0.11),
            (4, 60),
            40,
            4,
            0.095,
            3.3,
            0.65,
        ),
        profile(
            "namd",
            500,
            mix(0.40, 0.24, 0.04, 0.20, 0.06, 0.06),
            (8, 100),
            20,
            2,
            0.055,
            2.6,
            0.75,
        ),
        profile(
            "sphinx3",
            900,
            mix(0.28, 0.26, 0.08, 0.14, 0.13, 0.11),
            (4, 40),
            34,
            3,
            0.090,
            4.2,
            0.65,
        ),
        profile(
            "hmmer",
            480,
            mix(0.32, 0.28, 0.05, 0.20, 0.09, 0.06),
            (6, 80),
            14,
            2,
            0.078,
            2.7,
            0.75,
        ),
        profile(
            "GemsFDTD",
            520,
            mix(0.36, 0.22, 0.05, 0.22, 0.09, 0.06),
            (10, 140),
            16,
            2,
            0.076,
            3.0,
            0.75,
        ),
        profile(
            "gobmk",
            2400,
            mix(0.20, 0.26, 0.14, 0.10, 0.14, 0.16),
            (3, 24),
            130,
            6,
            0.118,
            2.8,
            0.45,
        ),
        profile(
            "libquantum",
            140,
            mix(0.42, 0.12, 0.02, 0.34, 0.06, 0.04),
            (16, 200),
            6,
            2,
            0.130,
            2.6,
            0.85,
        ),
        profile(
            "gromacs",
            520,
            mix(0.26, 0.24, 0.12, 0.12, 0.13, 0.13),
            (4, 48),
            20,
            2,
            0.048,
            2.7,
            0.70,
        ),
        profile(
            "mcf",
            320,
            mix(0.24, 0.26, 0.12, 0.12, 0.13, 0.13),
            (4, 40),
            10,
            2,
            0.105,
            3.8,
            0.75,
        ),
        profile(
            "astar",
            420,
            mix(0.26, 0.28, 0.11, 0.12, 0.12, 0.11),
            (4, 40),
            12,
            2,
            0.100,
            3.2,
            0.70,
        ),
        profile(
            "perlbench",
            1900,
            mix(0.24, 0.26, 0.09, 0.10, 0.15, 0.16),
            (3, 32),
            150,
            8,
            0.120,
            8.2,
            0.50,
        ),
        profile(
            "bwaves",
            380,
            mix(0.38, 0.22, 0.04, 0.26, 0.05, 0.05),
            (12, 160),
            10,
            2,
            0.065,
            3.6,
            0.80,
        ),
        profile(
            "zeusmp",
            460,
            mix(0.36, 0.22, 0.05, 0.24, 0.07, 0.06),
            (10, 120),
            14,
            2,
            0.070,
            3.0,
            0.75,
        ),
        profile(
            "lbm",
            160,
            mix(0.44, 0.16, 0.03, 0.28, 0.05, 0.04),
            (20, 240),
            6,
            2,
            0.045,
            2.4,
            0.85,
        ),
        profile(
            "dealII",
            1100,
            mix(0.28, 0.26, 0.07, 0.14, 0.13, 0.12),
            (4, 48),
            70,
            5,
            0.105,
            3.4,
            0.60,
        ),
        profile(
            "leslie3d",
            420,
            mix(0.38, 0.22, 0.04, 0.26, 0.05, 0.05),
            (12, 140),
            10,
            2,
            0.060,
            2.9,
            0.80,
        ),
        profile(
            "sjeng",
            1300,
            mix(0.22, 0.26, 0.13, 0.10, 0.14, 0.15),
            (3, 28),
            60,
            5,
            0.112,
            3.3,
            0.55,
        ),
        profile(
            "h264ref",
            1500,
            mix(0.26, 0.28, 0.08, 0.14, 0.13, 0.11),
            (4, 40),
            80,
            5,
            0.095,
            3.5,
            0.60,
        ),
        profile(
            "omnetpp",
            1200,
            mix(0.24, 0.24, 0.10, 0.10, 0.16, 0.16),
            (3, 32),
            90,
            6,
            0.115,
            4.4,
            0.55,
        ),
    ]
}

/// A benchmark pairing from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkCase {
    /// "case1" .. "case12".
    pub id: &'static str,
    /// Foreground (measured) benchmark.
    pub target: &'static str,
    /// Background / co-running benchmark.
    pub background: &'static str,
}

/// Table 3, single-threaded column: target + background context-switch
/// pairs for the FPGA experiments.
pub fn cases_single() -> [BenchmarkCase; 12] {
    [
        BenchmarkCase {
            id: "case1",
            target: "gcc",
            background: "calculix",
        },
        BenchmarkCase {
            id: "case2",
            target: "milc",
            background: "povray",
        },
        BenchmarkCase {
            id: "case3",
            target: "bzip2_source",
            background: "soplex",
        },
        BenchmarkCase {
            id: "case4",
            target: "namd",
            background: "sphinx3",
        },
        BenchmarkCase {
            id: "case5",
            target: "hmmer",
            background: "GemsFDTD",
        },
        BenchmarkCase {
            id: "case6",
            target: "gobmk",
            background: "libquantum",
        },
        BenchmarkCase {
            id: "case7",
            target: "gromacs",
            background: "GemsFDTD",
        },
        BenchmarkCase {
            id: "case8",
            target: "mcf",
            background: "astar",
        },
        BenchmarkCase {
            id: "case9",
            target: "soplex",
            background: "hmmer",
        },
        BenchmarkCase {
            id: "case10",
            target: "libquantum",
            background: "calculix",
        },
        BenchmarkCase {
            id: "case11",
            target: "mcf",
            background: "perlbench",
        },
        BenchmarkCase {
            id: "case12",
            target: "bwaves",
            background: "namd",
        },
    ]
}

/// Table 3, SMT-2 column: concurrently running pairs for the gem5-style
/// experiments.
pub fn cases_smt2() -> [BenchmarkCase; 12] {
    [
        BenchmarkCase {
            id: "case1",
            target: "zeusmp",
            background: "lbm",
        },
        BenchmarkCase {
            id: "case2",
            target: "zeusmp",
            background: "dealII",
        },
        BenchmarkCase {
            id: "case3",
            target: "bwaves",
            background: "milc",
        },
        BenchmarkCase {
            id: "case4",
            target: "leslie3d",
            background: "gromacs",
        },
        BenchmarkCase {
            id: "case5",
            target: "dealII",
            background: "sjeng",
        },
        BenchmarkCase {
            id: "case6",
            target: "gromacs",
            background: "astar",
        },
        BenchmarkCase {
            id: "case7",
            target: "gobmk",
            background: "h264ref",
        },
        BenchmarkCase {
            id: "case8",
            target: "libquantum",
            background: "milc",
        },
        BenchmarkCase {
            id: "case9",
            target: "gobmk",
            background: "gromacs",
        },
        BenchmarkCase {
            id: "case10",
            target: "milc",
            background: "bzip2_source",
        },
        BenchmarkCase {
            id: "case11",
            target: "libquantum",
            background: "omnetpp",
        },
        BenchmarkCase {
            id: "case12",
            target: "zeusmp",
            background: "gobmk",
        },
    ]
}

/// SMT-4 quads (the paper plots SMT-4 in Figure 2 without listing sets; we
/// combine consecutive SMT-2 pairs).
pub fn cases_smt4() -> [[&'static str; 4]; 6] {
    let p = cases_smt2();
    [
        [p[0].target, p[0].background, p[1].target, p[1].background],
        [p[2].target, p[2].background, p[3].target, p[3].background],
        [p[4].target, p[4].background, p[5].target, p[5].background],
        [p[6].target, p[6].background, p[7].target, p[7].background],
        [p[8].target, p[8].background, p[9].target, p[9].background],
        [
            p[10].target,
            p[10].background,
            p[11].target,
            p[11].background,
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_profiles_are_well_formed() {
        for p in registry() {
            assert!(p.mix.is_normalized(), "{}: mix not normalized", p.name);
            assert!(p.cond_sites > 0, "{}", p.name);
            assert!(p.mean_gap > 0.0, "{}", p.name);
            assert!(
                p.cond_fraction + p.indirect_fraction + p.call_fraction < 1.0,
                "{}",
                p.name
            );
            assert!(
                p.loop_trips.0 >= 1 && p.loop_trips.0 <= p.loop_trips.1,
                "{}",
                p.name
            );
            assert!(p.targets_per_indirect >= 1, "{}", p.name);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let reg = registry();
        for (i, a) in reg.iter().enumerate() {
            for b in &reg[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn all_case_benchmarks_resolve() {
        for c in cases_single().iter().chain(cases_smt2().iter()) {
            assert!(WorkloadProfile::by_name(c.target).is_ok(), "{}", c.target);
            assert!(
                WorkloadProfile::by_name(c.background).is_ok(),
                "{}",
                c.background
            );
        }
        for quad in cases_smt4() {
            for name in quad {
                assert!(WorkloadProfile::by_name(name).is_ok(), "{name}");
            }
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = WorkloadProfile::by_name("not-a-benchmark").unwrap_err();
        assert!(matches!(err, sbp_types::SbpError::UnknownWorkload(_)));
    }

    #[test]
    fn kernel_profile_is_well_formed() {
        let k = WorkloadProfile::kernel();
        assert!(k.mix.is_normalized());
        assert_eq!(
            k.syscalls_per_minstr, 0.0,
            "the kernel itself makes no syscalls"
        );
    }

    #[test]
    fn paper_cited_ratios_are_encoded() {
        let gcc = WorkloadProfile::by_name("gcc").unwrap();
        let gromacs = WorkloadProfile::by_name("gromacs").unwrap();
        // gcc's conditional instruction ratio (12.1%) >> gromacs' (4.8%).
        let ratio = |p: &WorkloadProfile| p.cond_fraction / (p.mean_gap + 1.0);
        assert!(ratio(&gcc) > 2.0 * ratio(&gromacs));
    }

    #[test]
    fn case2_pairs_high_syscall_povray() {
        // Table 4: case2 has the highest privilege-switch rate (7.0/Mcyc).
        let povray = WorkloadProfile::by_name("povray").unwrap();
        for p in registry() {
            if p.name != "povray" {
                assert!(
                    povray.syscalls_per_minstr >= p.syscalls_per_minstr,
                    "povray must have the top syscall rate, {} beats it",
                    p.name
                );
            }
        }
    }
}
