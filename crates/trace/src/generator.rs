//! The full per-thread event stream: user program + syscalls + kernel
//! execution.

use serde::{Deserialize, Serialize};

use sbp_types::rng::Xoshiro256;
use sbp_types::{BranchRecord, Privilege};

use crate::profile::WorkloadProfile;
use crate::program::ProgramModel;

/// One event in a thread's execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A dynamic branch (with its gap of plain instructions).
    Branch(BranchRecord),
    /// A privilege transition on this thread (syscall entry/exit,
    /// exception).
    PrivilegeSwitch(Privilege),
}

/// Generates a thread's event stream: the user program, Poisson-ish
/// syscalls, and kernel-mode execution spans.
///
/// ```
/// use sbp_trace::{TraceGenerator, WorkloadProfile};
///
/// # fn main() -> Result<(), sbp_types::SbpError> {
/// let profile = WorkloadProfile::by_name("gcc")?;
/// let mut generator = TraceGenerator::new(&profile, 0x1000_0000, 42);
/// let first_events: Vec<_> = (0..100).map(|_| generator.next_event()).collect();
/// assert_eq!(first_events.len(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceGenerator {
    user: ProgramModel,
    kernel: ProgramModel,
    mode: Privilege,
    /// Remaining kernel instructions before returning to user mode.
    kernel_budget: i64,
    /// Per-instruction syscall probability.
    syscall_per_instr: f64,
    kernel_span: (u32, u32),
    rng: Xoshiro256,
    instructions: u64,
    privilege_switches: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` at code base `base` with a
    /// deterministic `seed`.
    pub fn new(profile: &WorkloadProfile, base: u64, seed: u64) -> Self {
        let kernel_profile = WorkloadProfile::kernel();
        TraceGenerator {
            user: ProgramModel::new(profile, base, seed),
            // The kernel lives in its own (high) code region shared by all
            // threads' generators — they model the same kernel text.
            kernel: ProgramModel::new(&kernel_profile, 0xc000_0000, seed ^ 0x6b65_726e_656c_0000),
            mode: Privilege::User,
            kernel_budget: 0,
            syscall_per_instr: profile.syscalls_per_minstr / 1.0e6,
            kernel_span: profile.kernel_span,
            rng: Xoshiro256::new(seed ^ 0x5ca1_ab1e),
            instructions: 0,
            privilege_switches: 0,
        }
    }

    /// Current privilege mode.
    pub fn mode(&self) -> Privilege {
        self.mode
    }

    /// Instructions generated so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Privilege switches generated so far.
    pub fn privilege_switches(&self) -> u64 {
        self.privilege_switches
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> TraceEvent {
        match self.mode {
            Privilege::User => {
                // Draw the next user branch first so we know how many
                // instructions elapse; decide whether a syscall interrupts.
                let peek_gap = 1.0 + self.user_mean_gap();
                let p_syscall = self.syscall_per_instr * peek_gap;
                if self.kernel_span.1 > 0 && self.rng.chance(p_syscall) {
                    self.mode = Privilege::Kernel;
                    let (lo, hi) = self.kernel_span;
                    self.kernel_budget =
                        lo as i64 + self.rng.next_below((hi - lo + 1) as u64) as i64;
                    self.privilege_switches += 1;
                    return TraceEvent::PrivilegeSwitch(Privilege::Kernel);
                }
                let rec = self.user.next_branch();
                self.instructions += rec.instructions();
                TraceEvent::Branch(rec)
            }
            Privilege::Kernel => {
                if self.kernel_budget <= 0 {
                    self.mode = Privilege::User;
                    self.privilege_switches += 1;
                    return TraceEvent::PrivilegeSwitch(Privilege::User);
                }
                let rec = self.kernel.next_branch();
                self.kernel_budget -= rec.instructions() as i64;
                self.instructions += rec.instructions();
                TraceEvent::Branch(rec)
            }
        }
    }

    /// Advances the stream past the next `branches` branch events without
    /// returning them — the generation-only fast-forward the sampled
    /// simulation uses to move between measurement windows. Privilege
    /// switches encountered along the way are generated (and counted) but
    /// not reported. Returns the instructions spanned by the skip.
    ///
    /// The RNG draw sequence is identical to calling
    /// [`TraceGenerator::next_event`] and discarding the events, so a skip
    /// leaves the generator cursor exactly where an executed run of the
    /// same length would — the property window-sampled runs rely on for
    /// byte-determinism.
    pub fn skip_branches(&mut self, branches: u64) -> u64 {
        let before = self.instructions;
        let mut left = branches;
        while left > 0 {
            if matches!(self.next_event(), TraceEvent::Branch(_)) {
                left -= 1;
            }
        }
        self.instructions - before
    }

    /// Advances the stream until at least `instructions` further
    /// instructions have been generated (generation-only, like
    /// [`TraceGenerator::skip_branches`] but instruction-denominated for
    /// SMT budgets). Returns the instructions actually spanned, which may
    /// overshoot by up to one branch gap.
    pub fn skip_instructions(&mut self, instructions: u64) -> u64 {
        let before = self.instructions;
        while self.instructions - before < instructions {
            let _ = self.next_event();
        }
        self.instructions - before
    }

    fn user_mean_gap(&self) -> f64 {
        // Constant per profile; stored indirectly in the program model's
        // gap draws. A fixed estimate keeps the syscall rate calibrated.
        6.0
    }

    /// Refills `buf` with the next `buf.capacity()` events of this stream.
    ///
    /// Events are produced by the exact same [`TraceGenerator::next_event`]
    /// draw sequence — batching changes *when* events are generated, never
    /// *which* events. Any events still unconsumed in `buf` are discarded,
    /// so callers refill only when the buffer is empty.
    pub fn fill(&mut self, buf: &mut EventBuffer) {
        buf.refill_with(|| self.next_event());
    }
}

/// A fixed-capacity batch of trace events the simulator drains without
/// calling back into the generator per event.
///
/// The batched hot loop fills one `EventBuffer` per software context
/// ([`TraceGenerator::fill`]) and then consumes events with the non-allocating
/// [`EventBuffer::pop`] / [`EventBuffer::peek`]. Unconsumed events persist
/// across run phases, so batching is invisible to the event order.
#[derive(Debug, Clone)]
pub struct EventBuffer {
    events: Vec<TraceEvent>,
    pos: usize,
    capacity: usize,
}

impl EventBuffer {
    /// Default batch size: large enough to amortize per-batch overhead,
    /// small enough that a buffer stays cache-resident (256 × 32 B = 8 KB).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates an empty buffer that refills `capacity` events at a time.
    ///
    /// The backing storage is allocated lazily on the first
    /// [`TraceGenerator::fill`], so constructing simulators is
    /// allocation-free here and a recycled buffer (see [`Self::recycle`])
    /// can be swapped in before any allocation happens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        EventBuffer {
            events: Vec::new(),
            pos: 0,
            capacity,
        }
    }

    /// Empties the buffer while keeping its backing allocation, so a
    /// buffer taken from a finished simulation can be handed to the next
    /// one (arena reuse) without carrying stale events across runs.
    pub fn recycle(&mut self) {
        self.events.clear();
        self.pos = 0;
    }

    /// The refill batch size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently buffered and unconsumed.
    pub fn len(&self) -> usize {
        self.events.len() - self.pos
    }

    /// Whether all buffered events have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.events.len()
    }

    /// Returns the next event without consuming it.
    #[inline]
    pub fn peek(&self) -> Option<TraceEvent> {
        self.events.get(self.pos).copied()
    }

    /// Consumes and returns the next event.
    #[inline]
    pub fn pop(&mut self) -> Option<TraceEvent> {
        let ev = self.events.get(self.pos).copied();
        self.pos += (ev.is_some()) as usize;
        ev
    }

    /// Refills the buffer with `capacity` events drawn from `next` — the
    /// one write path shared by every event source ([`TraceGenerator`],
    /// [`crate::TraceReplayer`]), so batching semantics cannot diverge
    /// between generated and replayed streams.
    pub fn refill_with(&mut self, mut next: impl FnMut() -> TraceEvent) {
        debug_assert!(self.is_empty(), "refilling a non-empty buffer loses events");
        self.events.clear();
        self.pos = 0;
        self.events.reserve(self.capacity);
        for _ in 0..self.capacity {
            self.events.push(next());
        }
    }
}

impl Default for EventBuffer {
    fn default() -> Self {
        EventBuffer::new(Self::DEFAULT_CAPACITY)
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(name: &str, seed: u64) -> TraceGenerator {
        let p = WorkloadProfile::by_name(name).expect("profile");
        TraceGenerator::new(&p, 0x1000_0000, seed)
    }

    #[test]
    fn deterministic() {
        let a: Vec<TraceEvent> = generator("gcc", 1).take(2000).collect();
        let b: Vec<TraceEvent> = generator("gcc", 1).take(2000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn privilege_switches_come_in_pairs() {
        let mut g = generator("povray", 2);
        let mut depth = 0i32;
        for _ in 0..200_000 {
            if let TraceEvent::PrivilegeSwitch(to) = g.next_event() {
                match to {
                    Privilege::Kernel => {
                        assert_eq!(depth, 0, "nested kernel entry");
                        depth += 1;
                    }
                    Privilege::User => {
                        assert_eq!(depth, 1, "exit without entry");
                        depth -= 1;
                    }
                }
            }
        }
    }

    #[test]
    fn syscall_rate_tracks_profile() {
        let p = WorkloadProfile::by_name("povray").unwrap();
        let mut g = generator("povray", 3);
        let mut entries = 0u64;
        // Large sample: at ~3.7 syscalls/Minstr the count is Poisson with
        // a small mean, so short runs are noise-dominated.
        for _ in 0..3_000_000 {
            if let TraceEvent::PrivilegeSwitch(Privilege::Kernel) = g.next_event() {
                entries += 1;
            }
        }
        let per_minstr = entries as f64 * 1.0e6 / g.instructions() as f64;
        // Within a factor ~2 of the configured rate (kernel spans extend
        // instruction counts).
        assert!(
            per_minstr > p.syscalls_per_minstr * 0.3 && per_minstr < p.syscalls_per_minstr * 2.0,
            "syscalls/Minstr {per_minstr} vs configured {}",
            p.syscalls_per_minstr
        );
    }

    #[test]
    fn kernel_branches_live_in_kernel_region() {
        let mut g = generator("gcc", 5);
        let mut in_kernel = false;
        let mut seen_kernel_branches = 0;
        for _ in 0..300_000 {
            match g.next_event() {
                TraceEvent::PrivilegeSwitch(Privilege::Kernel) => in_kernel = true,
                TraceEvent::PrivilegeSwitch(Privilege::User) => in_kernel = false,
                TraceEvent::Branch(r) if in_kernel => {
                    seen_kernel_branches += 1;
                    assert!(
                        r.pc.addr() >= 0x8000_0000,
                        "kernel branch at {:#x}",
                        r.pc.addr()
                    );
                }
                TraceEvent::Branch(_) => {}
            }
        }
        assert!(seen_kernel_branches > 100, "no kernel execution observed");
    }

    #[test]
    fn skip_branches_matches_discarding_events() {
        let mut skipped = generator("gcc", 13);
        let mut stepped = generator("gcc", 13);
        let spanned = skipped.skip_branches(5_000);
        let mut left = 5_000u64;
        while left > 0 {
            if matches!(stepped.next_event(), TraceEvent::Branch(_)) {
                left -= 1;
            }
        }
        assert_eq!(spanned, stepped.instructions());
        // Cursors coincide: the continuations are identical streams.
        let a: Vec<TraceEvent> = skipped.take(2_000).collect();
        let b: Vec<TraceEvent> = stepped.take(2_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn skip_instructions_matches_discarding_events() {
        let mut skipped = generator("povray", 21);
        let mut stepped = generator("povray", 21);
        let spanned = skipped.skip_instructions(40_000);
        assert!(spanned >= 40_000);
        while stepped.instructions() < spanned {
            let _ = stepped.next_event();
        }
        assert_eq!(spanned, stepped.instructions());
        let a: Vec<TraceEvent> = skipped.take(2_000).collect();
        let b: Vec<TraceEvent> = stepped.take(2_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn instruction_counter_advances() {
        let mut g = generator("namd", 7);
        for _ in 0..1000 {
            let _ = g.next_event();
        }
        assert!(g.instructions() > 1000);
        assert_eq!(g.mode(), g.mode());
    }
}
