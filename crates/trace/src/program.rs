//! The synthetic program model: turns a [`WorkloadProfile`] into an
//! infinite, deterministic branch stream.

use serde::{Deserialize, Serialize};

use sbp_types::rng::Xoshiro256;
use sbp_types::{BranchKind, BranchRecord, Pc};

use crate::behavior::BranchBehavior;
use crate::profile::WorkloadProfile;

/// Maximum modeled call depth.
const MAX_CALL_DEPTH: usize = 8;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CondSite {
    pc: Pc,
    target: Pc,
    behavior: BranchBehavior,
    state: u32,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndirectSite {
    pc: Pc,
    targets: Vec<Pc>,
    current: usize,
    /// Probability of staying on the current target per execution.
    stickiness: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CallSite {
    pc: Pc,
    entry: Pc,
}

/// A running synthetic program: an infinite iterator of [`BranchRecord`]s.
///
/// Control flow is structured as **paths** — fixed sequences of
/// conditional sites modeling compiled basic-block traces. Execution
/// follows the current path in order and usually loops back onto it,
/// occasionally jumping to another path. This preserves the sequence
/// regularity real predictors exploit (global-history correlation, BTB
/// working-set locality); a uniformly random site walk would make every
/// workload look pathologically unpredictable.
///
/// Construction is deterministic from `(profile, base address, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramModel {
    cond: Vec<CondSite>,
    indirect: Vec<IndirectSite>,
    calls: Vec<CallSite>,
    /// Fixed site sequences (basic-block traces).
    paths: Vec<Vec<u32>>,
    /// Cumulative popularity weights over paths.
    path_cdf: Vec<f64>,
    current_path: usize,
    path_pos: usize,
    /// Probability of re-running the current path at its end (loopiness).
    path_stickiness: f64,
    mean_gap: f64,
    cond_fraction: f64,
    indirect_fraction: f64,
    call_fraction: f64,
    rng: Xoshiro256,
    /// Recent global outcomes (newest at bit 0) feeding correlated sites.
    recent: u64,
    /// (return address, branches remaining in the callee) stack.
    call_stack: Vec<(Pc, u32)>,
}

impl ProgramModel {
    /// Instantiates a program model for `profile` in the 256 MiB code
    /// region starting at `base`, seeded deterministically.
    pub fn new(profile: &WorkloadProfile, base: u64, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed ^ 0x70c0_ffee);
        let mut next_pc = base & !3;
        let mut alloc_pc = |rng: &mut Xoshiro256| {
            let pc = next_pc;
            next_pc += 4 + 4 * rng.next_below(48);
            Pc::new(pc)
        };

        let mut cond = Vec::with_capacity(profile.cond_sites);
        for _ in 0..profile.cond_sites {
            let pc = alloc_pc(&mut rng);
            // Branch targets: mostly short forward/backward skips.
            let delta = 8 + 4 * rng.next_below(64) as i64;
            let backward = rng.chance(0.45);
            let target = pc.offset(if backward { -delta } else { delta });
            let behavior = draw_behavior(profile, &mut rng);
            cond.push(CondSite {
                pc,
                target,
                behavior,
                state: 0,
            });
        }

        let mut indirect = Vec::with_capacity(profile.indirect_sites);
        for _ in 0..profile.indirect_sites {
            let pc = alloc_pc(&mut rng);
            let n = 1 + rng.next_below(profile.targets_per_indirect.max(1) as u64) as usize;
            let targets = (0..n).map(|_| alloc_pc(&mut rng)).collect();
            indirect.push(IndirectSite {
                pc,
                targets,
                current: 0,
                stickiness: 0.55 + 0.4 * rng.next_f64(),
            });
        }

        let calls = (0..profile.call_sites.max(1))
            .map(|_| CallSite {
                pc: alloc_pc(&mut rng),
                entry: alloc_pc(&mut rng),
            })
            .collect();

        // Zipf-ish popularity over sites: weight(rank) = 1/(rank+1)^loc.
        let mut site_cdf = Vec::with_capacity(cond.len());
        let mut acc = 0.0;
        for rank in 0..cond.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(profile.locality);
            site_cdf.push(acc);
        }
        let pick_site = |rng: &mut Xoshiro256| {
            let total = *site_cdf.last().expect("non-empty site list");
            let x = rng.next_f64() * total;
            site_cdf.partition_point(|&c| c < x).min(cond.len() - 1) as u32
        };

        // Build basic-block traces ("paths"). The count and hop rate set
        // the dynamic warm-up footprint, i.e. how much a predictor loses
        // to a flush/rekey (calibrated against the paper's Figure 10).
        let n_paths = (cond.len() / 8).clamp(4, 500);
        let paths: Vec<Vec<u32>> = (0..n_paths)
            .map(|_| {
                let len = 8 + rng.next_below(40) as usize;
                (0..len).map(|_| pick_site(&mut rng)).collect()
            })
            .collect();
        // Path popularity is sharply skewed: hot loops dominate runtime.
        let mut path_cdf = Vec::with_capacity(paths.len());
        let mut acc = 0.0;
        for rank in 0..paths.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(0.75 + 0.5 * profile.locality);
            path_cdf.push(acc);
        }

        ProgramModel {
            cond,
            indirect,
            calls,
            paths,
            path_cdf,
            current_path: 0,
            path_pos: 0,
            path_stickiness: 0.4 + 0.45 * profile.locality,
            mean_gap: profile.mean_gap,
            cond_fraction: profile.cond_fraction,
            indirect_fraction: profile.indirect_fraction,
            call_fraction: profile.call_fraction,
            rng: Xoshiro256::new(seed ^ 0x5eed_cafe),
            recent: 0,
            call_stack: Vec::with_capacity(MAX_CALL_DEPTH),
        }
    }

    /// Number of static conditional sites.
    pub fn cond_sites(&self) -> usize {
        self.cond.len()
    }

    /// Next conditional site: follow the current path, looping or hopping
    /// at its end.
    fn pick_cond(&mut self) -> usize {
        let path = &self.paths[self.current_path];
        let site = path[self.path_pos] as usize;
        self.path_pos += 1;
        if self.path_pos >= path.len() {
            self.path_pos = 0;
            if !self.rng.chance(self.path_stickiness) {
                let total = *self.path_cdf.last().expect("non-empty path list");
                let x = self.rng.next_f64() * total;
                self.current_path = self
                    .path_cdf
                    .partition_point(|&c| c < x)
                    .min(self.paths.len() - 1);
            }
        }
        site
    }

    /// Emits the next dynamic branch.
    pub fn next_branch(&mut self) -> BranchRecord {
        let gap = self.rng.gap(self.mean_gap, 0, 255);

        // A pending return fires once the callee's branch budget is spent.
        if let Some(&(ret_addr, remaining)) = self.call_stack.last() {
            if remaining == 0 {
                self.call_stack.pop();
                // Synthetic return PC: just below the return address.
                let pc = ret_addr.offset(32 + 4 * self.rng.next_below(16) as i64);
                return BranchRecord::taken(pc, BranchKind::Return, ret_addr, gap);
            }
        }
        if let Some(top) = self.call_stack.last_mut() {
            top.1 -= 1;
        }

        let x = self.rng.next_f64();
        if x < self.cond_fraction {
            let idx = self.pick_cond();
            let site = &mut self.cond[idx];
            let taken = site
                .behavior
                .next(&mut site.state, self.recent, &mut self.rng);
            self.recent = (self.recent << 1) | taken as u64;

            if taken {
                BranchRecord::taken(site.pc, BranchKind::Conditional, site.target, gap)
            } else {
                BranchRecord::not_taken(site.pc, gap)
            }
        } else if x < self.cond_fraction + self.indirect_fraction && !self.indirect.is_empty() {
            let idx = self.rng.pick_index(self.indirect.len());
            let site = &mut self.indirect[idx];
            if !self.rng.chance(site.stickiness) {
                site.current = self.rng.pick_index(site.targets.len());
            }
            let target = site.targets[site.current];
            BranchRecord::taken(site.pc, BranchKind::IndirectJump, target, gap)
        } else if x < self.cond_fraction + self.indirect_fraction + self.call_fraction
            && self.call_stack.len() < MAX_CALL_DEPTH
        {
            let site = self.calls[self.rng.pick_index(self.calls.len())];
            let body_branches = 2 + self.rng.next_below(24) as u32;
            self.call_stack
                .push((site.pc.fall_through(), body_branches));
            BranchRecord::taken(site.pc, BranchKind::Call, site.entry, gap)
        } else {
            // Direct jump filler.
            let site = self.calls[self.rng.pick_index(self.calls.len())];
            BranchRecord::taken(site.pc.offset(-8), BranchKind::DirectJump, site.entry, gap)
        }
    }
}

impl Iterator for ProgramModel {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        Some(self.next_branch())
    }
}

fn draw_behavior(profile: &WorkloadProfile, rng: &mut Xoshiro256) -> BranchBehavior {
    let m = &profile.mix;
    let x = rng.next_f64();
    // Branch *polarity* is mixed: real programs contain both strongly-taken
    // and strongly-not-taken branches (≈55/45). Without this, cross-thread
    // aliasing in shared tables is "accidentally constructive" (foreign
    // counters mostly agree via the global taken bias), which would
    // overstate the steady-state cost of content encoding on SMT.
    let flip = |p: f64, rng: &mut Xoshiro256| if rng.chance(0.20) { 1.0 - p } else { p };
    let mut acc = m.always;
    if x < acc {
        let p = flip(0.995, rng);
        return BranchBehavior::Bernoulli { p };
    }
    acc += m.biased;
    if x < acc {
        let p = flip(0.88 + 0.10 * rng.next_f64(), rng);
        return BranchBehavior::Bernoulli { p };
    }
    acc += m.random;
    if x < acc {
        let p = flip(0.55 + 0.20 * rng.next_f64(), rng);
        return BranchBehavior::Bernoulli { p };
    }
    acc += m.loops;
    if x < acc {
        let (lo, hi) = profile.loop_trips;
        let trip = lo + rng.next_below((hi - lo + 1) as u64) as u32;
        return BranchBehavior::Loop { trip };
    }
    acc += m.pattern;
    if x < acc {
        let period = 3 + rng.next_below(10) as usize;
        let bits = (0..period).map(|_| rng.chance(0.5)).collect();
        return BranchBehavior::Pattern { bits };
    }
    BranchBehavior::Correlated {
        lag: 1 + rng.next_below(8) as u32,
        invert: rng.chance(0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn model(name: &str, seed: u64) -> ProgramModel {
        let p = WorkloadProfile::by_name(name).expect("profile");
        ProgramModel::new(&p, 0x1000_0000, seed)
    }

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<BranchRecord> = model("gcc", 7).take(500).collect();
        let b: Vec<BranchRecord> = model("gcc", 7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<BranchRecord> = model("gcc", 8).take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn branch_kind_fractions_are_close_to_profile() {
        let p = WorkloadProfile::by_name("gcc").unwrap();
        let recs: Vec<BranchRecord> = model("gcc", 3).take(50_000).collect();
        let cond = recs
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .count();
        let frac = cond as f64 / recs.len() as f64;
        assert!(
            (frac - p.cond_fraction).abs() < 0.06,
            "cond fraction {frac}"
        );
    }

    #[test]
    fn calls_and_returns_balance() {
        let recs: Vec<BranchRecord> = model("perlbench", 5).take(100_000).collect();
        let calls = recs.iter().filter(|r| r.kind.pushes_ras()).count() as i64;
        let rets = recs.iter().filter(|r| r.kind.pops_ras()).count() as i64;
        assert!(calls > 100, "calls={calls}");
        assert!(
            (calls - rets).abs() <= MAX_CALL_DEPTH as i64,
            "calls={calls} rets={rets}"
        );
    }

    #[test]
    fn returns_target_their_call_site() {
        let mut m = model("gcc", 11);
        let mut stack = Vec::new();
        for _ in 0..50_000 {
            let r = m.next_branch();
            if r.kind.pushes_ras() {
                stack.push(r.pc.fall_through());
            } else if r.kind.pops_ras() {
                let expect = stack.pop().expect("return without call");
                assert_eq!(r.target, expect, "return target mismatch");
            }
        }
    }

    #[test]
    fn gap_mean_tracks_profile() {
        let p = WorkloadProfile::by_name("gromacs").unwrap();
        let recs: Vec<BranchRecord> = model("gromacs", 9).take(50_000).collect();
        let mean = recs.iter().map(|r| r.gap as f64).sum::<f64>() / recs.len() as f64;
        assert!(
            (mean - p.mean_gap).abs() / p.mean_gap < 0.25,
            "mean gap {mean} vs profile {}",
            p.mean_gap
        );
    }

    #[test]
    fn pcs_stay_in_32bit_range() {
        for r in model("gobmk", 13).take(20_000) {
            assert!(r.pc.addr() < (1 << 32), "pc {r:?}");
            assert!(r.target.addr() < (1 << 32), "target {r:?}");
        }
    }

    #[test]
    fn taken_rate_is_plausible() {
        // Conditional branches in real integer code are taken ~60-75% of
        // the time; our mixes should land in a sane band.
        let recs: Vec<BranchRecord> = model("gcc", 17).take(50_000).collect();
        let cond: Vec<&BranchRecord> = recs
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .collect();
        let taken = cond.iter().filter(|r| r.taken).count() as f64 / cond.len() as f64;
        assert!((0.45..0.9).contains(&taken), "taken rate {taken}");
    }

    #[test]
    fn hot_sites_dominate_with_high_locality() {
        let mut m = model("libquantum", 21);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let r = m.next_branch();
            if r.kind == BranchKind::Conditional {
                *counts.entry(r.pc.addr()).or_insert(0u32) += 1;
            }
        }
        let total: u32 = counts.values().sum();
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-10 sites carry only {}",
            top10 as f64 / total as f64
        );
    }
}
