//! On-disk trace container: streaming writer/reader for `SBPT` files.
//!
//! The in-memory codec ([`crate::format`]) is version 1: a 16-byte header
//! followed by events. Files written by [`TraceWriter`] use the version-2
//! container, which extends the header with the workload name and an
//! FNV-1a checksum over the event bytes:
//!
//! ```text
//! v1: magic "SBPT" | u32 1 | u64 count | events...
//! v2: magic "SBPT" | u32 2 | u16 name_len | name | u64 count | u64 fnv1a | events...
//! ```
//!
//! Compatibility rule: readers accept both versions (a v1 body is a valid
//! v2 body with an empty name and no checksum verification); writers only
//! emit v2. Both sides stream in bounded chunks — neither ever
//! materializes the whole trace in memory.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sbp_types::SbpError;

use crate::format::{encode_event_into, try_decode_event, MAGIC};
use crate::generator::TraceEvent;

/// Chunk size for both the writer's pending buffer and the reader's
/// decode window: large enough to amortize syscalls, small enough to keep
/// replay memory bounded regardless of trace length.
const CHUNK: usize = 64 * 1024;

const V1_HEADER_LEN: u64 = 16;

/// FNV-1a, 64-bit: tiny, dependency-free, and byte-order independent —
/// an integrity check against torn writes and truncation, not an
/// adversarial MAC.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn digest(&self) -> u64 {
        self.0
    }
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> SbpError {
    SbpError::trace(format!("{what} {}: {e}", path.display()))
}

/// Parsed container header of an open trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// Container version (1 or 2).
    pub version: u32,
    /// Workload name recorded in the v2 header (empty for v1 files).
    pub name: String,
    /// Declared event count.
    pub count: u64,
    /// FNV-1a checksum over the event bytes (0 for v1 files).
    pub checksum: u64,
}

/// Streams events into an `SBPT` v2 file in bounded chunks.
///
/// The header's event count and checksum are back-patched by
/// [`TraceWriter::finish`]; a file that was never finished keeps its
/// zeroed placeholders and is rejected by [`TraceReader`] (the body bytes
/// read as trailing garbage), so torn captures cannot masquerade as
/// empty traces.
#[derive(Debug)]
pub struct TraceWriter {
    path: PathBuf,
    file: File,
    name: String,
    pending: Vec<u8>,
    /// File offset of the count field (right after the name).
    patch_offset: u64,
    count: u64,
    checksum: Fnv1a,
}

impl TraceWriter {
    /// Creates (truncating) a trace file and writes the v2 header with
    /// placeholder count/checksum.
    ///
    /// # Errors
    ///
    /// Fails on IO errors or a workload name longer than `u16::MAX` bytes.
    pub fn create(path: &Path, workload: &str) -> Result<Self, SbpError> {
        let name = workload.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(SbpError::trace(format!(
                "workload name too long for trace header ({} bytes)",
                name.len()
            )));
        }
        let mut file = File::create(path).map_err(|e| io_err(path, "cannot create", e))?;
        let mut header = Vec::with_capacity(26 + name.len());
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&2u32.to_be_bytes());
        header.extend_from_slice(&(name.len() as u16).to_be_bytes());
        header.extend_from_slice(name);
        let patch_offset = header.len() as u64;
        header.extend_from_slice(&0u64.to_be_bytes()); // count, patched by finish()
        header.extend_from_slice(&0u64.to_be_bytes()); // checksum, patched by finish()
        file.write_all(&header)
            .map_err(|e| io_err(path, "cannot write header to", e))?;
        Ok(TraceWriter {
            path: path.to_path_buf(),
            file,
            name: workload.to_owned(),
            pending: Vec::with_capacity(CHUNK),
            patch_offset,
            count: 0,
            checksum: Fnv1a::new(),
        })
    }

    /// Appends one event, flushing the pending chunk when full.
    ///
    /// # Errors
    ///
    /// Fails on IO errors.
    pub fn write_event(&mut self, ev: &TraceEvent) -> Result<(), SbpError> {
        let start = self.pending.len();
        encode_event_into(&mut self.pending, ev);
        self.checksum.update(&self.pending[start..]);
        self.count += 1;
        if self.pending.len() >= CHUNK {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Events written so far.
    pub fn event_count(&self) -> u64 {
        self.count
    }

    fn flush_pending(&mut self) -> Result<(), SbpError> {
        self.file
            .write_all(&self.pending)
            .map_err(|e| io_err(&self.path, "cannot write to", e))?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail chunk and back-patches the header's event count
    /// and checksum, returning the final [`TraceInfo`].
    ///
    /// # Errors
    ///
    /// Fails on IO errors.
    pub fn finish(mut self) -> Result<TraceInfo, SbpError> {
        self.flush_pending()?;
        self.file
            .seek(SeekFrom::Start(self.patch_offset))
            .map_err(|e| io_err(&self.path, "cannot seek in", e))?;
        let mut patch = [0u8; 16];
        patch[..8].copy_from_slice(&self.count.to_be_bytes());
        patch[8..].copy_from_slice(&self.checksum.digest().to_be_bytes());
        self.file
            .write_all(&patch)
            .map_err(|e| io_err(&self.path, "cannot patch header of", e))?;
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "cannot flush", e))?;
        Ok(TraceInfo {
            version: 2,
            name: self.name,
            count: self.count,
            checksum: self.checksum.digest(),
        })
    }
}

/// Streams events out of an `SBPT` file (v1 or v2) in bounded chunks.
///
/// After the declared count has been read sequentially, the reader
/// verifies the v2 checksum and rejects trailing bytes. A reader cloned
/// via [`TraceReader::reopen`] resumes at the same event with its own OS
/// file handle (checksum verification is skipped for readers that did not
/// consume the stream from the start).
#[derive(Debug)]
pub struct TraceReader {
    path: PathBuf,
    file: File,
    info: TraceInfo,
    window: Vec<u8>,
    pos: usize,
    events_read: u64,
    /// Total encoded bytes of events already returned (window excluded).
    consumed_bytes: u64,
    checksum: Fnv1a,
    /// Whether this reader consumed the stream from event 0 (checksum is
    /// only verifiable then).
    sequential: bool,
    /// Whether end-of-stream validation (checksum + trailing bytes) ran.
    verified: bool,
}

impl TraceReader {
    /// Opens a trace file and parses its header.
    ///
    /// # Errors
    ///
    /// Fails on IO errors or a malformed header.
    pub fn open(path: &Path) -> Result<Self, SbpError> {
        let mut file = File::open(path).map_err(|e| io_err(path, "cannot open", e))?;
        let (info, _header_len) = read_header(path, &mut file)?;
        Ok(TraceReader {
            path: path.to_path_buf(),
            file,
            info,
            window: Vec::new(),
            pos: 0,
            events_read: 0,
            consumed_bytes: 0,
            checksum: Fnv1a::new(),
            sequential: true,
            verified: false,
        })
    }

    /// The parsed container header.
    pub fn info(&self) -> &TraceInfo {
        &self.info
    }

    /// The path this reader streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events returned so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Opens an independent reader on the same file positioned at the
    /// same next event. The clone gets its own OS handle (sharing one via
    /// `File::try_clone` would share the kernel cursor and corrupt both
    /// streams) and skips end-of-stream checksum verification.
    ///
    /// # Errors
    ///
    /// Fails on IO errors or if the file's header changed on disk.
    pub fn reopen(&self) -> Result<TraceReader, SbpError> {
        let mut file = File::open(&self.path).map_err(|e| io_err(&self.path, "cannot open", e))?;
        let (info, header_len) = read_header(&self.path, &mut file)?;
        if info != self.info {
            return Err(SbpError::trace(format!(
                "trace file {} changed while replaying",
                self.path.display()
            )));
        }
        file.seek(SeekFrom::Start(header_len + self.consumed_bytes))
            .map_err(|e| io_err(&self.path, "cannot seek in", e))?;
        Ok(TraceReader {
            path: self.path.clone(),
            file,
            info,
            window: Vec::new(),
            pos: 0,
            events_read: self.events_read,
            consumed_bytes: self.consumed_bytes,
            checksum: Fnv1a::new(),
            sequential: self.sequential && self.events_read == 0,
            verified: false,
        })
    }

    /// Returns the next event, or `None` once the declared count has been
    /// delivered (after validating checksum and rejecting trailing bytes).
    ///
    /// # Errors
    ///
    /// Fails on IO errors, truncation, unknown tags, checksum mismatch or
    /// trailing bytes.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, SbpError> {
        if self.events_read == self.info.count {
            self.verify_end()?;
            return Ok(None);
        }
        loop {
            let mut slice = &self.window[self.pos..];
            let before = slice.len();
            match try_decode_event(&mut slice)? {
                Some(ev) => {
                    let used = before - slice.len();
                    self.checksum
                        .update(&self.window[self.pos..self.pos + used]);
                    self.pos += used;
                    self.consumed_bytes += used as u64;
                    self.events_read += 1;
                    return Ok(Some(ev));
                }
                None => {
                    if self.refill()? == 0 {
                        return Err(SbpError::trace(format!(
                            "{}: truncated at event {} of {}",
                            self.path.display(),
                            self.events_read,
                            self.info.count
                        )));
                    }
                }
            }
        }
    }

    fn refill(&mut self) -> Result<usize, SbpError> {
        self.window.drain(..self.pos);
        self.pos = 0;
        let old = self.window.len();
        self.window.resize(old + CHUNK, 0);
        let n = self
            .file
            .read(&mut self.window[old..])
            .map_err(|e| io_err(&self.path, "cannot read", e))?;
        self.window.truncate(old + n);
        Ok(n)
    }

    fn verify_end(&mut self) -> Result<(), SbpError> {
        if self.verified {
            return Ok(());
        }
        self.verified = true;
        // Anything after the declared count — in the window or still in
        // the file — is a concatenation/corruption signal, like the
        // in-memory decoder's trailing-bytes rejection.
        let mut trailing = (self.window.len() - self.pos) as u64;
        loop {
            let n = self.refill()?;
            if n == 0 {
                break;
            }
            trailing += n as u64;
        }
        if trailing > 0 {
            return Err(SbpError::trace(format!(
                "{}: {trailing} trailing bytes after {} events",
                self.path.display(),
                self.info.count
            )));
        }
        if self.info.version >= 2 && self.sequential && self.checksum.digest() != self.info.checksum
        {
            return Err(SbpError::trace(format!(
                "{}: checksum mismatch ({:#018x} recorded, {:#018x} computed)",
                self.path.display(),
                self.info.checksum,
                self.checksum.digest()
            )));
        }
        Ok(())
    }
}

fn read_header(path: &Path, file: &mut File) -> Result<(TraceInfo, u64), SbpError> {
    let mut fixed = [0u8; 8];
    read_exact(path, file, &mut fixed)?;
    if &fixed[..4] != MAGIC {
        return Err(SbpError::trace(format!("{}: bad magic", path.display())));
    }
    let version = u32::from_be_bytes(fixed[4..8].try_into().expect("4 bytes"));
    match version {
        1 => {
            let mut count = [0u8; 8];
            read_exact(path, file, &mut count)?;
            Ok((
                TraceInfo {
                    version,
                    name: String::new(),
                    count: u64::from_be_bytes(count),
                    checksum: 0,
                },
                V1_HEADER_LEN,
            ))
        }
        2 => {
            let mut name_len = [0u8; 2];
            read_exact(path, file, &mut name_len)?;
            let name_len = u16::from_be_bytes(name_len) as usize;
            let mut name = vec![0u8; name_len];
            read_exact(path, file, &mut name)?;
            let name = String::from_utf8(name).map_err(|_| {
                SbpError::trace(format!("{}: non-UTF-8 workload name", path.display()))
            })?;
            let mut tail = [0u8; 16];
            read_exact(path, file, &mut tail)?;
            Ok((
                TraceInfo {
                    version,
                    name,
                    count: u64::from_be_bytes(tail[..8].try_into().expect("8 bytes")),
                    checksum: u64::from_be_bytes(tail[8..].try_into().expect("8 bytes")),
                },
                (10 + name_len + 16) as u64,
            ))
        }
        v => Err(SbpError::trace(format!(
            "{}: unsupported version {v}",
            path.display()
        ))),
    }
}

fn read_exact(path: &Path, file: &mut File, buf: &mut [u8]) -> Result<(), SbpError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SbpError::trace(format!("{}: truncated header", path.display()))
        } else {
            io_err(path, "cannot read", e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_trace;
    use crate::profile::WorkloadProfile;
    use crate::TraceGenerator;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbpt-file-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn generated(seed: u64, n: usize) -> Vec<TraceEvent> {
        let p = WorkloadProfile::by_name("povray").unwrap();
        TraceGenerator::new(&p, 0x2000_0000, seed).take(n).collect()
    }

    fn read_all(path: &Path) -> Vec<TraceEvent> {
        let mut r = TraceReader::open(path).expect("open");
        let mut out = Vec::new();
        while let Some(ev) = r.next_event().expect("read") {
            out.push(ev);
        }
        out
    }

    #[test]
    fn writer_reader_roundtrip_exceeding_one_chunk() {
        // > 64 KiB of events so multiple chunks and window refills happen.
        let events = generated(1, 20_000);
        let path = tmp("roundtrip.sbpt");
        let mut w = TraceWriter::create(&path, "povray").expect("create");
        for ev in &events {
            w.write_event(ev).expect("write");
        }
        let info = w.finish().expect("finish");
        assert_eq!(info.count, events.len() as u64);

        let mut r = TraceReader::open(&path).expect("open");
        assert_eq!(r.info().version, 2);
        assert_eq!(r.info().name, "povray");
        assert_eq!(r.info().count, events.len() as u64);
        let mut out = Vec::new();
        while let Some(ev) = r.next_event().expect("read") {
            out.push(ev);
        }
        assert_eq!(out, events);
        // Further calls stay at end.
        assert!(r.next_event().expect("idempotent end").is_none());
    }

    #[test]
    fn v1_blobs_still_decode_through_the_reader() {
        let events = generated(2, 500);
        let path = tmp("v1.sbpt");
        std::fs::write(&path, encode_trace(&events)).expect("write v1 blob");
        let mut r = TraceReader::open(&path).expect("open");
        assert_eq!(r.info().version, 1);
        assert_eq!(r.info().name, "");
        let mut out = Vec::new();
        while let Some(ev) = r.next_event().expect("read") {
            out.push(ev);
        }
        assert_eq!(out, events);
    }

    #[test]
    fn reopen_resumes_mid_stream_with_independent_cursor() {
        let events = generated(3, 5_000);
        let path = tmp("reopen.sbpt");
        let mut w = TraceWriter::create(&path, "povray").expect("create");
        for ev in &events {
            w.write_event(ev).expect("write");
        }
        w.finish().expect("finish");

        let mut a = TraceReader::open(&path).expect("open");
        for _ in 0..1234 {
            a.next_event().expect("read").expect("event");
        }
        let mut b = a.reopen().expect("reopen");
        assert_eq!(b.events_read(), 1234);
        // Interleave: both must see the same continuation.
        for (i, ev) in events.iter().enumerate().skip(1234) {
            assert_eq!(&a.next_event().unwrap().unwrap(), ev, "a at {i}");
            assert_eq!(&b.next_event().unwrap().unwrap(), ev, "b at {i}");
        }
    }

    #[test]
    fn corrupted_body_fails_checksum() {
        let events = generated(4, 2_000);
        let path = tmp("corrupt.sbpt");
        let mut w = TraceWriter::create(&path, "povray").expect("create");
        for ev in &events {
            w.write_event(ev).expect("write");
        }
        w.finish().expect("finish");
        let mut bytes = std::fs::read(&path).expect("read back");
        // Flip a taken bit deep in the body: still a decodable stream, so
        // only the checksum catches it.
        let n = bytes.len();
        bytes[n - 12] ^= 1;
        std::fs::write(&path, bytes).expect("rewrite");

        let mut r = TraceReader::open(&path).expect("open");
        let err = loop {
            match r.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn unfinished_capture_is_rejected() {
        let events = generated(5, 100);
        let path = tmp("torn.sbpt");
        let mut w = TraceWriter::create(&path, "povray").expect("create");
        for ev in &events {
            w.write_event(ev).expect("write");
        }
        // Force the pending chunk out, then drop without finish():
        // header still says 0 events.
        w.flush_pending().expect("flush");
        drop(w);
        let mut r = TraceReader::open(&path).expect("open");
        let err = r.next_event().unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let events = generated(6, 300);
        let path = tmp("short.sbpt");
        let mut w = TraceWriter::create(&path, "povray").expect("create");
        for ev in &events {
            w.write_event(ev).expect("write");
        }
        w.finish().expect("finish");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        let mut r = TraceReader::open(&path).expect("open");
        let err = loop {
            match r.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncation not detected"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = tmp("empty.sbpt");
        let w = TraceWriter::create(&path, "none").expect("create");
        w.finish().expect("finish");
        assert_eq!(read_all(&path), vec![]);
    }
}
