//! # sbp-trace
//!
//! Synthetic workload substrate: SPEC CPU 2006 stand-in profiles, the
//! program model that turns a profile into a deterministic branch stream,
//! syscall/kernel-mode generation, and a binary trace format.
//!
//! The paper runs SPEC CPU 2006 pairs (Table 3) on an FPGA and on gem5; we
//! replace each benchmark with a calibrated [`WorkloadProfile`] (see
//! `DESIGN.md` for the substitution argument).
//!
//! ```
//! use sbp_trace::{TraceEvent, TraceGenerator, WorkloadProfile};
//!
//! # fn main() -> Result<(), sbp_types::SbpError> {
//! let profile = WorkloadProfile::by_name("libquantum")?;
//! let mut stream = TraceGenerator::new(&profile, 0x1000_0000, 7);
//! let branches = (0..1000)
//!     .filter(|_| matches!(stream.next_event(), TraceEvent::Branch(_)))
//!     .count();
//! assert!(branches > 900);
//! # Ok(())
//! # }
//! ```

pub mod behavior;
pub mod file;
pub mod format;
pub mod generator;
pub mod phases;
pub mod profile;
pub mod program;
pub mod replay;

pub use behavior::BranchBehavior;
pub use file::{TraceInfo, TraceReader, TraceWriter};
pub use generator::{EventBuffer, TraceEvent, TraceGenerator};
pub use phases::{cluster_trace, PhasePick, PhaseSchedule};
pub use profile::{
    cases_single, cases_smt2, cases_smt4, BehaviorMix, BenchmarkCase, WorkloadProfile,
};
pub use program::ProgramModel;
pub use replay::{
    parse_replay, record_trace, replay_trace_path, EventSource, TraceReplayer, TraceSource,
};
