//! Direction behaviours of synthetic conditional branch sites.

use serde::{Deserialize, Serialize};

use sbp_types::rng::Xoshiro256;

/// How a conditional branch site decides its direction.
///
/// The mix of behaviours in a workload profile controls how predictable the
/// workload is for each predictor family:
///
/// * [`Bernoulli`](BranchBehavior::Bernoulli) with `p` near 0.5 is a noise
///   floor no predictor learns;
/// * [`Loop`](BranchBehavior::Loop) is learnable by loop predictors and (for
///   short trips) by history predictors;
/// * [`Pattern`](BranchBehavior::Pattern) is learnable by any global-history
///   predictor whose history covers the period;
/// * [`Correlated`](BranchBehavior::Correlated) repeats a *recent global
///   outcome*, learnable only with sufficient history (TAGE shines here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Taken with probability `p`.
    Bernoulli {
        /// Probability of taken.
        p: f64,
    },
    /// Taken `trip - 1` times, then not-taken once (a `for` loop backedge).
    Loop {
        /// Loop trip count (≥ 1).
        trip: u32,
    },
    /// A fixed cyclic direction pattern.
    Pattern {
        /// The repeating outcome sequence (must be non-empty).
        bits: Vec<bool>,
    },
    /// Repeats the thread's global outcome `lag` branches ago, optionally
    /// inverted (correlated branch).
    Correlated {
        /// How many branches back to look (1..=63).
        lag: u32,
        /// Invert the copied outcome.
        invert: bool,
    },
}

impl BranchBehavior {
    /// Evaluates the next outcome.
    ///
    /// `state` is the site's mutable iteration/phase counter; `recent` is
    /// the thread's recent global outcome history (newest at bit 0).
    pub fn next(&self, state: &mut u32, recent: u64, rng: &mut Xoshiro256) -> bool {
        match self {
            BranchBehavior::Bernoulli { p } => rng.chance(*p),
            BranchBehavior::Loop { trip } => {
                let trip = (*trip).max(1);
                let taken = *state + 1 < trip;
                *state = if taken { *state + 1 } else { 0 };
                taken
            }
            BranchBehavior::Pattern { bits } => {
                let taken = bits[*state as usize % bits.len()];
                *state = state.wrapping_add(1);
                taken
            }
            BranchBehavior::Correlated { lag, invert } => {
                let bit = (recent >> (*lag).min(63)) & 1 == 1;
                bit ^ invert
            }
        }
    }

    /// Long-run taken rate (used by tests and workload statistics).
    pub fn expected_taken_rate(&self) -> f64 {
        match self {
            BranchBehavior::Bernoulli { p } => *p,
            BranchBehavior::Loop { trip } => {
                let t = (*trip).max(1) as f64;
                (t - 1.0) / t
            }
            BranchBehavior::Pattern { bits } => {
                bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
            }
            BranchBehavior::Correlated { .. } => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_matches_probability() {
        let b = BranchBehavior::Bernoulli { p: 0.8 };
        let mut rng = Xoshiro256::new(1);
        let mut st = 0;
        let n = 50_000;
        let taken = (0..n).filter(|_| b.next(&mut st, 0, &mut rng)).count();
        let rate = taken as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
        assert!((b.expected_taken_rate() - 0.8).abs() < f64::EPSILON);
    }

    #[test]
    fn loop_behaviour_cycles() {
        let b = BranchBehavior::Loop { trip: 4 };
        let mut rng = Xoshiro256::new(2);
        let mut st = 0;
        let seq: Vec<bool> = (0..8).map(|_| b.next(&mut st, 0, &mut rng)).collect();
        assert_eq!(seq, vec![true, true, true, false, true, true, true, false]);
        assert!((b.expected_taken_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_loop_never_taken() {
        let b = BranchBehavior::Loop { trip: 1 };
        let mut rng = Xoshiro256::new(3);
        let mut st = 0;
        assert!(!b.next(&mut st, 0, &mut rng));
        assert!(!b.next(&mut st, 0, &mut rng));
    }

    #[test]
    fn pattern_repeats() {
        let b = BranchBehavior::Pattern {
            bits: vec![true, false, false],
        };
        let mut rng = Xoshiro256::new(4);
        let mut st = 0;
        let seq: Vec<bool> = (0..6).map(|_| b.next(&mut st, 0, &mut rng)).collect();
        assert_eq!(seq, vec![true, false, false, true, false, false]);
        assert!((b.expected_taken_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_copies_history_bit() {
        let b = BranchBehavior::Correlated {
            lag: 2,
            invert: false,
        };
        let mut rng = Xoshiro256::new(5);
        let mut st = 0;
        // recent = ...0100: bit 2 is 1.
        assert!(b.next(&mut st, 0b100, &mut rng));
        assert!(!b.next(&mut st, 0b011, &mut rng));
        let inv = BranchBehavior::Correlated {
            lag: 2,
            invert: true,
        };
        assert!(!inv.next(&mut st, 0b100, &mut rng));
    }
}
