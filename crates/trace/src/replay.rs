//! Replaying recorded traces as a first-class simulation event source.
//!
//! [`TraceSource`] is the contract the simulators consume events
//! through: [`TraceGenerator`] synthesizes the
//! stream, [`TraceReplayer`] streams a recorded `SBPT` file back with the
//! *same draw-sequence semantics* — `next_event`, buffered `fill`,
//! `skip_branches`/`skip_instructions` all leave the cursor exactly where
//! the generator equivalents would, so a simulation over a replayed trace
//! is byte-identical to one over the generator that recorded it.
//!
//! [`EventSource`] is the closed enum the simulators actually hold (no
//! dynamic dispatch in the hot loop). Replay workloads are named
//! `replay:<workload>@<dir>`: the simulator resolves the trace file from
//! the directory plus the context's code base and derived seed (see
//! [`replay_trace_path`]), which is also how the recorder names the files
//! it captures.

use std::path::{Path, PathBuf};

use sbp_types::{Privilege, SbpError};

use crate::file::{TraceInfo, TraceReader, TraceWriter};
use crate::generator::{EventBuffer, TraceEvent, TraceGenerator};

/// A deterministic stream of [`TraceEvent`]s a simulator can run on.
///
/// Implementations must keep the draw sequence identical across access
/// styles: consuming via [`TraceSource::fill`] batches or skipping via
/// [`TraceSource::skip_branches`] leaves the cursor exactly where
/// per-event [`TraceSource::next_event`] calls would.
pub trait TraceSource {
    /// Produces the next event. Infallible: replay sources surface IO or
    /// exhaustion as panics with the trace path (a simulation cannot
    /// meaningfully continue on a half-delivered stream).
    fn next_event(&mut self) -> TraceEvent;

    /// Instructions delivered so far (branch gaps + the branches).
    fn instructions(&self) -> u64;

    /// Current privilege mode.
    fn mode(&self) -> Privilege;

    /// Privilege switches delivered so far.
    fn privilege_switches(&self) -> u64;

    /// Refills `buf` with the next `buf.capacity()` events.
    fn fill(&mut self, buf: &mut EventBuffer) {
        buf.refill_with(|| self.next_event());
    }

    /// Advances past the next `branches` branch events without returning
    /// them; returns the instructions spanned.
    fn skip_branches(&mut self, branches: u64) -> u64 {
        let before = self.instructions();
        let mut left = branches;
        while left > 0 {
            if matches!(self.next_event(), TraceEvent::Branch(_)) {
                left -= 1;
            }
        }
        self.instructions() - before
    }

    /// Advances until at least `instructions` further instructions have
    /// been delivered; returns the instructions actually spanned.
    fn skip_instructions(&mut self, instructions: u64) -> u64 {
        let before = self.instructions();
        while self.instructions() - before < instructions {
            let _ = self.next_event();
        }
        self.instructions() - before
    }
}

impl TraceSource for TraceGenerator {
    fn next_event(&mut self) -> TraceEvent {
        TraceGenerator::next_event(self)
    }

    fn instructions(&self) -> u64 {
        TraceGenerator::instructions(self)
    }

    fn mode(&self) -> Privilege {
        TraceGenerator::mode(self)
    }

    fn privilege_switches(&self) -> u64 {
        TraceGenerator::privilege_switches(self)
    }

    fn fill(&mut self, buf: &mut EventBuffer) {
        TraceGenerator::fill(self, buf);
    }

    fn skip_branches(&mut self, branches: u64) -> u64 {
        TraceGenerator::skip_branches(self, branches)
    }

    fn skip_instructions(&mut self, instructions: u64) -> u64 {
        TraceGenerator::skip_instructions(self, instructions)
    }
}

/// Streams a recorded `SBPT` file back through the [`TraceSource`]
/// contract, tracking the same instruction/mode/switch counters the
/// generator would have, so the simulators cannot tell the difference.
#[derive(Debug)]
pub struct TraceReplayer {
    reader: TraceReader,
    mode: Privilege,
    instructions: u64,
    privilege_switches: u64,
}

impl TraceReplayer {
    /// Opens a recorded trace for replay.
    ///
    /// # Errors
    ///
    /// Fails on IO errors or a malformed container header.
    pub fn open(path: &Path) -> Result<Self, SbpError> {
        Ok(TraceReplayer {
            reader: TraceReader::open(path)?,
            mode: Privilege::User,
            instructions: 0,
            privilege_switches: 0,
        })
    }

    /// The container header of the file being replayed.
    pub fn info(&self) -> &TraceInfo {
        self.reader.info()
    }

    /// Events replayed so far.
    pub fn events_read(&self) -> u64 {
        self.reader.events_read()
    }

    /// Produces the next recorded event.
    ///
    /// # Panics
    ///
    /// Panics when the trace is exhausted or unreadable: the simulators'
    /// event path is infallible, and a shorter-than-needed recording is a
    /// capture-configuration bug, not a runtime condition to limp through.
    /// The message names the file and how far replay got.
    pub fn next_event(&mut self) -> TraceEvent {
        match self.reader.next_event() {
            Ok(Some(ev)) => {
                match ev {
                    TraceEvent::Branch(r) => self.instructions += r.instructions(),
                    TraceEvent::PrivilegeSwitch(p) => {
                        self.mode = p;
                        self.privilege_switches += 1;
                    }
                }
                ev
            }
            Ok(None) => panic!(
                "trace {} exhausted after {} events — record a longer trace \
                 (the simulation needs more events than were captured)",
                self.reader.path().display(),
                self.reader.info().count
            ),
            Err(e) => panic!(
                "replaying trace {} failed at event {}: {e}",
                self.reader.path().display(),
                self.reader.events_read()
            ),
        }
    }

    /// Current privilege mode.
    pub fn mode(&self) -> Privilege {
        self.mode
    }

    /// Instructions replayed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Privilege switches replayed so far.
    pub fn privilege_switches(&self) -> u64 {
        self.privilege_switches
    }
}

impl Clone for TraceReplayer {
    /// Clones by reopening the file at the same event position with an
    /// independent OS handle (see [`TraceReader::reopen`]).
    ///
    /// # Panics
    ///
    /// Panics if the file vanished or changed since open — `Clone` is
    /// infallible and the warm-state snapshot machinery that clones
    /// sources cannot proceed without the stream.
    fn clone(&self) -> Self {
        let reader = self.reader.reopen().unwrap_or_else(|e| {
            panic!(
                "cannot clone replayer for {}: {e}",
                self.reader.path().display()
            )
        });
        TraceReplayer {
            reader,
            mode: self.mode,
            instructions: self.instructions,
            privilege_switches: self.privilege_switches,
        }
    }
}

impl TraceSource for TraceReplayer {
    fn next_event(&mut self) -> TraceEvent {
        TraceReplayer::next_event(self)
    }

    fn instructions(&self) -> u64 {
        TraceReplayer::instructions(self)
    }

    fn mode(&self) -> Privilege {
        TraceReplayer::mode(self)
    }

    fn privilege_switches(&self) -> u64 {
        TraceReplayer::privilege_switches(self)
    }
}

/// The event source a simulator context holds: a synthetic generator or
/// a file replayer, statically dispatched.
//
// The generator variant is much larger than the replayer, but one
// `EventSource` exists per simulator context (a handful per job), and
// boxing it would put a pointer chase on every hot-loop `fill`/`skip`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum EventSource {
    /// Synthetic stream from a [`WorkloadProfile`](crate::WorkloadProfile).
    Generator(TraceGenerator),
    /// Recorded stream from an `SBPT` file.
    Replay(TraceReplayer),
}

impl EventSource {
    /// Produces the next event.
    #[inline]
    pub fn next_event(&mut self) -> TraceEvent {
        match self {
            EventSource::Generator(g) => g.next_event(),
            EventSource::Replay(r) => r.next_event(),
        }
    }

    /// Refills `buf` with the next `buf.capacity()` events.
    pub fn fill(&mut self, buf: &mut EventBuffer) {
        match self {
            EventSource::Generator(g) => g.fill(buf),
            EventSource::Replay(r) => TraceSource::fill(r, buf),
        }
    }

    /// See [`TraceSource::skip_branches`].
    pub fn skip_branches(&mut self, branches: u64) -> u64 {
        match self {
            EventSource::Generator(g) => g.skip_branches(branches),
            EventSource::Replay(r) => TraceSource::skip_branches(r, branches),
        }
    }

    /// See [`TraceSource::skip_instructions`].
    pub fn skip_instructions(&mut self, instructions: u64) -> u64 {
        match self {
            EventSource::Generator(g) => g.skip_instructions(instructions),
            EventSource::Replay(r) => TraceSource::skip_instructions(r, instructions),
        }
    }

    /// Instructions delivered so far.
    pub fn instructions(&self) -> u64 {
        match self {
            EventSource::Generator(g) => g.instructions(),
            EventSource::Replay(r) => r.instructions(),
        }
    }

    /// Current privilege mode.
    pub fn mode(&self) -> Privilege {
        match self {
            EventSource::Generator(g) => g.mode(),
            EventSource::Replay(r) => r.mode(),
        }
    }

    /// Privilege switches delivered so far.
    pub fn privilege_switches(&self) -> u64 {
        match self {
            EventSource::Generator(g) => g.privilege_switches(),
            EventSource::Replay(r) => r.privilege_switches(),
        }
    }
}

impl TraceSource for EventSource {
    fn next_event(&mut self) -> TraceEvent {
        EventSource::next_event(self)
    }

    fn instructions(&self) -> u64 {
        EventSource::instructions(self)
    }

    fn mode(&self) -> Privilege {
        EventSource::mode(self)
    }

    fn privilege_switches(&self) -> u64 {
        EventSource::privilege_switches(self)
    }

    fn fill(&mut self, buf: &mut EventBuffer) {
        EventSource::fill(self, buf);
    }

    fn skip_branches(&mut self, branches: u64) -> u64 {
        EventSource::skip_branches(self, branches)
    }

    fn skip_instructions(&mut self, instructions: u64) -> u64 {
        EventSource::skip_instructions(self, instructions)
    }
}

/// Splits a `replay:<workload>@<dir>` workload name into its underlying
/// workload and trace directory; `None` for plain (generated) workloads.
///
/// ```
/// assert_eq!(
///     sbp_trace::parse_replay("replay:gcc@traces/fig08"),
///     Some(("gcc", "traces/fig08"))
/// );
/// assert_eq!(sbp_trace::parse_replay("gcc"), None);
/// ```
pub fn parse_replay(workload: &str) -> Option<(&str, &str)> {
    let rest = workload.strip_prefix("replay:")?;
    let (name, dir) = rest.split_once('@')?;
    if name.is_empty() || dir.is_empty() {
        return None;
    }
    Some((name, dir))
}

/// The canonical file name for one recorded context stream: the workload
/// plus the two values that fully determine its event sequence — the
/// context's code base and its *derived* per-context seed. Recorder and
/// replayer both resolve paths through here, so they cannot disagree.
pub fn replay_trace_path(dir: &Path, workload: &str, base: u64, seed: u64) -> PathBuf {
    dir.join(format!("{workload}-b{base:x}-s{seed:016x}.sbpt"))
}

/// Records the next `events` events of `source` to `path` (v2 container,
/// streaming — constant memory regardless of length).
///
/// # Errors
///
/// Fails on IO errors.
pub fn record_trace(
    source: &mut impl TraceSource,
    workload: &str,
    events: u64,
    path: &Path,
) -> Result<TraceInfo, SbpError> {
    let mut writer = TraceWriter::create(path, workload)?;
    for _ in 0..events {
        writer.write_event(&source.next_event())?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbpt-replay-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn recorded(seed: u64, events: u64, file: &str) -> (PathBuf, TraceGenerator) {
        let p = WorkloadProfile::by_name("povray").unwrap();
        let mut gen = TraceGenerator::new(&p, 0x1000_0000, seed);
        let path = tmp(file);
        record_trace(&mut gen, "povray", events, &path).expect("record");
        (path, TraceGenerator::new(&p, 0x1000_0000, seed))
    }

    #[test]
    fn replayer_matches_generator_event_for_event() {
        let (path, mut gen) = recorded(11, 30_000, "match.sbpt");
        let mut rep = TraceReplayer::open(&path).expect("open");
        for i in 0..30_000u64 {
            let g = gen.next_event();
            let r = rep.next_event();
            assert_eq!(g, r, "event {i}");
            assert_eq!(gen.instructions(), rep.instructions(), "instr at {i}");
            assert_eq!(gen.mode(), rep.mode(), "mode at {i}");
            assert_eq!(
                gen.privilege_switches(),
                rep.privilege_switches(),
                "switches at {i}"
            );
        }
    }

    #[test]
    fn replayer_fill_and_skip_match_generator_semantics() {
        let (path, mut gen) = recorded(12, 40_000, "skip.sbpt");
        let mut rep = TraceReplayer::open(&path).expect("open");
        let mut gbuf = EventBuffer::new(256);
        let mut rbuf = EventBuffer::new(256);
        gen.fill(&mut gbuf);
        TraceSource::fill(&mut rep, &mut rbuf);
        while let (Some(a), Some(b)) = (gbuf.pop(), rbuf.pop()) {
            assert_eq!(a, b);
        }
        let gs = gen.skip_branches(5_000);
        let rs = TraceSource::skip_branches(&mut rep, 5_000);
        assert_eq!(gs, rs, "skip_branches instruction spans");
        let gi = gen.skip_instructions(10_000);
        let ri = TraceSource::skip_instructions(&mut rep, 10_000);
        assert_eq!(gi, ri, "skip_instructions spans");
        // Cursors coincide afterwards.
        for _ in 0..1_000 {
            assert_eq!(gen.next_event(), rep.next_event());
        }
    }

    #[test]
    fn replayer_clone_resumes_at_position() {
        let (path, _) = recorded(13, 10_000, "clone.sbpt");
        let mut a = TraceReplayer::open(&path).expect("open");
        for _ in 0..3_333 {
            a.next_event();
        }
        let mut b = a.clone();
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.mode(), b.mode());
        for _ in 0..5_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_trace_panics_with_the_path() {
        let (path, _) = recorded(14, 50, "short.sbpt");
        let mut rep = TraceReplayer::open(&path).expect("open");
        for _ in 0..51 {
            rep.next_event();
        }
    }

    #[test]
    fn replay_names_parse_and_plain_names_pass_through() {
        assert_eq!(
            parse_replay("replay:gcc@traces/fig08"),
            Some(("gcc", "traces/fig08"))
        );
        assert_eq!(parse_replay("replay:a@b@c"), Some(("a", "b@c")));
        assert_eq!(parse_replay("gcc"), None);
        assert_eq!(parse_replay("replay:gcc"), None);
        assert_eq!(parse_replay("replay:@dir"), None);
        assert_eq!(parse_replay("replay:gcc@"), None);
    }

    #[test]
    fn trace_paths_are_stable() {
        let p = replay_trace_path(Path::new("traces/fig08"), "gcc", 0x1000_0000, 0xabcd);
        assert_eq!(
            p,
            PathBuf::from("traces/fig08/gcc-b10000000-s000000000000abcd.sbpt")
        );
    }
}
