//! The process-wide telemetry sink and its emit API.
//!
//! The sink is disabled by default; every emit helper is a no-op that
//! costs one relaxed atomic load, so instrumented hot paths (the
//! per-phase hooks in `sbp_sim`, the per-job hooks in `sbp_sweep`) pay
//! nothing when telemetry is off.
//!
//! Job-lane events are buffered in a thread-local [`job_scope`] and
//! flushed as one atomic append when the scope ends, so parallel jobs
//! never interleave lines in the sidecar file. Control-lane events
//! write straight through under the state lock.

use std::cell::RefCell;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{span_id, Event, Kind};

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<SinkState>> = Mutex::new(None);

struct SinkState {
    entry: String,
    shard: u32,
    path: Option<PathBuf>,
    epoch: Instant,
    control_seq: u32,
    /// Every event the sink has accepted, in flush order. The
    /// in-process campaign path reads this back with [`take_events`]
    /// instead of round-tripping through a file.
    events: Vec<Event>,
}

thread_local! {
    static SCOPE: RefCell<Option<JobBuf>> = const { RefCell::new(None) };
}

struct JobBuf {
    entry: String,
    shard: u32,
    epoch: Instant,
    job: u64,
    seq: u32,
    events: Vec<Event>,
}

impl JobBuf {
    fn push(&mut self, det: bool, kind: Kind, id: u64, name: &str, value: f64, detail: &str) {
        // Timestamps ride on every event (including deterministic
        // ones): the canonical projection zeroes them back out.
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.events.push(Event {
            entry: self.entry.clone(),
            shard: self.shard,
            job: Some(self.job),
            seq: self.seq,
            id,
            det,
            ts_us,
            kind,
            name: name.to_string(),
            value,
            detail: detail.to_string(),
        });
        self.seq += 1;
    }
}

/// Whether the sink is currently accepting events.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables the sink for this process.
///
/// `entry` labels subsequent events (swap it with [`set_entry`]),
/// `shard` is the lane number (0 = coordinator / in-process runner,
/// workers 1-based), and `path`, when given, is the sidecar JSONL file
/// events are appended to as they flush. The file is opened
/// append-only and never truncated: retries of a crashed worker append
/// a fresh run and the timeline merge keeps the last run per lane.
pub fn enable(entry: &str, shard: u32, path: Option<&Path>) {
    if let Some(p) = path {
        if let Some(parent) = p.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
    }
    let mut state = STATE.lock().unwrap();
    *state = Some(SinkState {
        entry: entry.to_string(),
        shard,
        path: path.map(Path::to_path_buf),
        epoch: Instant::now(),
        control_seq: 0,
        events: Vec::new(),
    });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Relabels subsequent events with a new catalog entry name.
pub fn set_entry(entry: &str) {
    if !enabled() {
        return;
    }
    if let Some(state) = STATE.lock().unwrap().as_mut() {
        state.entry = entry.to_string();
    }
}

/// Disables the sink and drops its state. Buffered control events are
/// already on disk (they write through); any still-open [`job_scope`]
/// on another thread flushes into the void.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    *STATE.lock().unwrap() = None;
}

/// Removes and returns every event the sink has collected so far.
pub fn take_events() -> Vec<Event> {
    match STATE.lock().unwrap().as_mut() {
        Some(state) => std::mem::take(&mut state.events),
        None => Vec::new(),
    }
}

/// Runs `f` with a job-lane scope for plan job `job`.
///
/// Events emitted by `f` on this thread ([`span`], [`counter`],
/// [`gauge`], [`mark`]) buffer into the scope and flush atomically when
/// `f` returns — including on panic, so a crashing worker's sidecar
/// still carries every completed job. When the sink is disabled, or a
/// scope is already open on this thread (nested jobs), `f` runs
/// unwrapped.
pub fn job_scope<R>(job: u64, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let installed = SCOPE.with(|scope| {
        let mut slot = scope.borrow_mut();
        if slot.is_some() {
            return false;
        }
        let state_guard = STATE.lock().unwrap();
        let Some(state) = state_guard.as_ref() else {
            return false;
        };
        *slot = Some(JobBuf {
            entry: state.entry.clone(),
            shard: state.shard,
            epoch: state.epoch,
            job,
            seq: 0,
            events: Vec::new(),
        });
        true
    });
    if !installed {
        return f();
    }
    struct FlushGuard;
    impl Drop for FlushGuard {
        fn drop(&mut self) {
            let buf = SCOPE.with(|scope| scope.borrow_mut().take());
            if let Some(buf) = buf {
                flush_events(buf.events);
            }
        }
    }
    let _guard = FlushGuard;
    f()
}

/// Appends events to the sink's collection and sidecar file in one
/// locked step, so concurrent job flushes never interleave.
fn flush_events(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    let mut state_guard = STATE.lock().unwrap();
    let Some(state) = state_guard.as_mut() else {
        return;
    };
    if let Some(path) = &state.path {
        let mut lines = String::new();
        for e in &events {
            lines.push_str(&e.to_line());
            lines.push('\n');
        }
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = f.write_all(lines.as_bytes());
        }
    }
    state.events.extend(events);
}

fn with_scope(f: impl FnOnce(&mut JobBuf)) {
    if !enabled() {
        return;
    }
    SCOPE.with(|scope| {
        if let Some(buf) = scope.borrow_mut().as_mut() {
            f(buf);
        }
    });
}

/// An open job-lane span; ends (and records its advisory duration)
/// when dropped. Inert when created outside a [`job_scope`].
#[must_use = "a span ends when dropped; binding it to _ ends it immediately"]
pub struct Span {
    armed: Option<SpanArm>,
}

struct SpanArm {
    id: u64,
    det: bool,
    name: String,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(arm) = self.armed.take() {
            let dur_us = arm.start.elapsed().as_micros() as f64;
            with_scope(|buf| {
                buf.push(arm.det, Kind::End, arm.id, &arm.name, dur_us, "");
            });
        }
    }
}

/// Opens a span in the current job scope. `det` marks the span as part
/// of the deterministic projection (use `true` only when the span's
/// existence and order depend solely on simulated state).
pub fn span(name: &str, det: bool, detail: &str) -> Span {
    let mut armed = None;
    with_scope(|buf| {
        let id = span_id(buf.shard, Some(buf.job), buf.seq);
        buf.push(det, Kind::Begin, id, name, 0.0, detail);
        armed = Some(SpanArm {
            id,
            det,
            name: name.to_string(),
            start: Instant::now(),
        });
    });
    Span { armed }
}

/// Records a counter event in the current job scope.
pub fn counter(name: &str, value: f64, det: bool, detail: &str) {
    with_scope(|buf| buf.push(det, Kind::Counter, 0, name, value, detail));
}

/// Records a gauge event in the current job scope.
pub fn gauge(name: &str, value: f64, det: bool, detail: &str) {
    with_scope(|buf| buf.push(det, Kind::Gauge, 0, name, value, detail));
}

/// Records a mark event in the current job scope.
pub fn mark(name: &str, det: bool, detail: &str) {
    with_scope(|buf| buf.push(det, Kind::Mark, 0, name, 0.0, detail));
}

/// How a control-lane event gets its span id.
enum ControlId {
    /// Derive from the lane position (span Begins).
    FromSeq,
    /// Reuse the opening Begin's id (span Ends).
    Fixed(u64),
    /// Non-span events carry no id.
    Zero,
}

/// Pushes one control-lane event straight through the sink.
fn control_event(kind: Kind, id_mode: ControlId, name: &str, value: f64, detail: &str) -> u64 {
    let mut state_guard = STATE.lock().unwrap();
    let Some(state) = state_guard.as_mut() else {
        return 0;
    };
    let seq = state.control_seq;
    state.control_seq += 1;
    let id = match id_mode {
        ControlId::FromSeq => span_id(state.shard, None, seq),
        ControlId::Fixed(id) => id,
        ControlId::Zero => 0,
    };
    let event = Event {
        entry: state.entry.clone(),
        shard: state.shard,
        job: None,
        seq,
        id,
        det: false,
        ts_us: state.epoch.elapsed().as_micros() as u64,
        kind,
        name: name.to_string(),
        value,
        detail: detail.to_string(),
    };
    if let Some(path) = &state.path {
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = f.write_all(format!("{}\n", event.to_line()).as_bytes());
        }
    }
    state.events.push(event);
    id
}

/// Ends the control-lane span that created it when dropped.
#[must_use = "a span ends when dropped; binding it to _ ends it immediately"]
pub struct ControlSpan {
    armed: Option<(u64, String, Instant)>,
}

impl Drop for ControlSpan {
    fn drop(&mut self) {
        if let Some((id, name, start)) = self.armed.take() {
            if !enabled() {
                return;
            }
            let dur_us = start.elapsed().as_micros() as f64;
            control_event(Kind::End, ControlId::Fixed(id), &name, dur_us, "");
        }
    }
}

/// Opens a control-lane span (coordinator/worker lifecycle — always
/// advisory). Events write through immediately.
pub fn control_span(name: &str, detail: &str) -> ControlSpan {
    if !enabled() {
        return ControlSpan { armed: None };
    }
    let id = control_event(Kind::Begin, ControlId::FromSeq, name, 0.0, detail);
    if id == 0 {
        return ControlSpan { armed: None };
    }
    ControlSpan {
        armed: Some((id, name.to_string(), Instant::now())),
    }
}

/// Records a control-lane mark (stall kills, retries, heartbeats).
pub fn control_mark(name: &str, detail: &str) {
    if !enabled() {
        return;
    }
    control_event(Kind::Mark, ControlId::Zero, name, 0.0, detail);
}

/// Records a control-lane gauge (heartbeat ages, GC stats).
pub fn control_gauge(name: &str, value: f64, detail: &str) {
    if !enabled() {
        return;
    }
    control_event(Kind::Gauge, ControlId::Zero, name, value, detail);
}
