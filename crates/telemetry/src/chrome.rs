//! Chrome `trace_event` export for chrome://tracing / Perfetto.
//!
//! The merged timeline maps naturally onto the trace-event JSON format:
//! shards become processes (`pid`), job lanes become threads (`tid`,
//! with the control lane on tid 0), spans become `B`/`E` duration
//! events, counters and gauges become `C` counter tracks, and marks
//! become thread-scoped instants.

use std::fmt::Write as _;

use crate::event::{escape_json, Event, Kind};

/// Renders events as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`). Load the file via chrome://tracing or
/// <https://ui.perfetto.dev> to get a per-shard flamegraph of the run.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for e in events {
        let ph = match e.kind {
            Kind::Begin => "B",
            Kind::End => "E",
            Kind::Counter | Kind::Gauge => "C",
            Kind::Mark => "i",
        };
        if !first {
            out.push(',');
        }
        first = false;
        let tid = e.job.map(|j| j + 1).unwrap_or(0);
        let cat = if e.det { "det" } else { "adv" };
        let _ = write!(
            out,
            "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{},\"cat\":\"{}\"",
            escape_json(&e.name),
            ph,
            e.ts_us,
            e.shard,
            tid,
            cat,
        );
        match e.kind {
            Kind::Counter | Kind::Gauge => {
                let v = if e.value.is_finite() { e.value } else { 0.0 };
                let _ = write!(out, ",\"args\":{{{}:{}}}", escape_json(&e.name), v);
            }
            Kind::Mark => {
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"entry\":{},\"detail\":{}}}",
                    escape_json(&e.entry),
                    escape_json(&e.detail),
                );
            }
            Kind::Begin => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"entry\":{},\"detail\":{}}}",
                    escape_json(&e.entry),
                    escape_json(&e.detail),
                );
            }
            Kind::End => {}
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::span_id;

    #[test]
    fn trace_export_contains_duration_and_counter_events() {
        let begin = Event {
            entry: "fig01".into(),
            shard: 1,
            job: Some(0),
            seq: 0,
            id: span_id(1, Some(0), 0),
            det: true,
            ts_us: 10,
            kind: Kind::Begin,
            name: "job".into(),
            value: 0.0,
            detail: "mech=cf".into(),
        };
        let mut end = begin.clone();
        end.seq = 2;
        end.kind = Kind::End;
        end.ts_us = 50;
        end.value = 40.0;
        let mut ctr = begin.clone();
        ctr.seq = 1;
        ctr.id = 0;
        ctr.kind = Kind::Counter;
        ctr.name = "branches_stepped".into();
        ctr.value = 1234.0;
        let trace = to_chrome_trace(&[begin, ctr, end]);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"branches_stepped\":1234"));
        assert!(trace.contains("\"pid\":1"));
        assert!(trace.trim_end().ends_with("]}"));
    }
}
