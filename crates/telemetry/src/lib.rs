//! Structured, dependency-free telemetry for the secure-bp workspace.
//!
//! The campaign machinery runs paper-scale sweeps across sharded worker
//! subprocesses, but until this crate the only windows into a run were
//! unstructured stderr lines and the one-off `--profile` table. This
//! crate provides **spans**, **counters**, **gauges**, and **marks**
//! that serialize to an append-only JSONL event stream — hand-rolled
//! like `sbp_sweep::json`, no `tracing`, no `tokio` — plus the tooling
//! to merge per-worker sidecar streams into one deterministic campaign
//! timeline and export it as Chrome `trace_event` JSON for
//! chrome://tracing.
//!
//! # Hard invariant: observation only
//!
//! Telemetry never changes what the simulators compute. Reports,
//! stores, fingerprints, and verdicts are byte-identical with telemetry
//! on, off, or at any verbosity; the equivalence tests in the root
//! crate pin this. Span IDs are derived from `(shard, job, sequence)`
//! — never from wall-clock time or randomness — so the *deterministic
//! projection* of a timeline ([`Event::is_deterministic`],
//! [`canonical_projection`]) is byte-identical across runs and across
//! `--window-threads` settings. Wall-clock data (timestamps, span
//! durations, cache hit counters) rides along as advisory payload and
//! is zeroed out of the canonical projection.
//!
//! # Event lanes
//!
//! Every event belongs to one of two lanes:
//!
//! - the **job lane** (`job: Some(i)`): events emitted inside a
//!   [`job_scope`] while a worker executes plan job `i`. Buffered in a
//!   thread-local and flushed atomically when the scope ends, so
//!   concurrent jobs never interleave lines.
//! - the **control lane** (`job: None`): coordinator/worker lifecycle
//!   events (entry spans, stall kills, retries, GC stats) written
//!   straight through.
//!
//! See `docs/OBSERVABILITY.md` for the schema reference and the span
//! taxonomy.

#![deny(missing_docs)]

mod chrome;
mod event;
mod sink;
mod timeline;

pub use chrome::to_chrome_trace;
pub use event::{canonical_projection, span_id, validate, Event, Kind, TimelineStats, SCHEMA_V};
pub use sink::{
    control_gauge, control_mark, control_span, counter, disable, enable, enabled, gauge, job_scope,
    mark, set_entry, span, take_events, ControlSpan, Span,
};
pub use timeline::{merge, read_events, read_events_lenient, write_events};
