//! The telemetry event model: one flat record per JSONL line.
//!
//! The wire format is deliberately minimal — a single flat JSON object
//! per line with a fixed field order — so the parser can be a strict
//! hand-rolled scanner (the same philosophy as `sbp_sweep::json`, but
//! smaller: telemetry lines never nest).

use std::collections::HashMap;
use std::fmt::Write as _;

/// Wire-format version stamped into every line as `"v"`.
pub const SCHEMA_V: u64 = 1;

/// What a telemetry event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Span start; `id` names the span, `value` is unused (0).
    Begin,
    /// Span end; `id` matches the `Begin`, `value` is the advisory
    /// duration in microseconds (zeroed in the canonical projection).
    End,
    /// Monotone count attributed to the enclosing scope (`value`).
    Counter,
    /// Point-in-time measurement (`value`).
    Gauge,
    /// Instantaneous annotation with no value semantics.
    Mark,
}

impl Kind {
    /// Wire name (`"begin"`, `"end"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Begin => "begin",
            Kind::End => "end",
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Mark => "mark",
        }
    }

    fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "begin" => Kind::Begin,
            "end" => Kind::End,
            "counter" => Kind::Counter,
            "gauge" => Kind::Gauge,
            "mark" => Kind::Mark,
            _ => return None,
        })
    }
}

/// One telemetry event — one line of the JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Catalog entry the event belongs to (may be empty before the
    /// first `set_entry` on the coordinator lane).
    pub entry: String,
    /// Emitting lane: 0 is the coordinator / in-process runner, worker
    /// shards are 1-based (`shard index + 1`).
    pub shard: u32,
    /// Plan job index for job-lane events; `None` for the control lane.
    pub job: Option<u64>,
    /// Per-lane sequence number, strictly increasing within a lane.
    pub seq: u32,
    /// Span ID for `Begin`/`End` (see [`span_id`]); 0 otherwise.
    pub id: u64,
    /// Whether the event is part of the deterministic projection.
    /// Deterministic events depend only on simulated state; advisory
    /// events (`det: false`) may carry wall-clock or scheduling data.
    pub det: bool,
    /// Microseconds since the sink was enabled. Advisory: zeroed in
    /// the canonical projection.
    pub ts_us: u64,
    /// Event kind.
    pub kind: Kind,
    /// Event name (span name, counter name, ...). Never empty.
    pub name: String,
    /// Numeric payload (counter increment, gauge value, end duration).
    pub value: f64,
    /// Free-form context string (job label, window index, ...).
    pub detail: String,
}

impl Event {
    /// Whether this event survives into the canonical projection.
    pub fn is_deterministic(&self) -> bool {
        self.det
    }

    /// Serializes the event as one JSON line (no trailing newline).
    ///
    /// Field order is fixed so identical events produce identical
    /// bytes. `job` is omitted entirely for control-lane events.
    /// Non-finite values serialize as 0 (emitters never produce them,
    /// but the wire format must stay valid JSON).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"v\":{},\"entry\":{},\"shard\":{}",
            SCHEMA_V,
            escape_json(&self.entry),
            self.shard
        );
        if let Some(job) = self.job {
            let _ = write!(s, ",\"job\":{job}");
        }
        let _ = write!(
            s,
            ",\"seq\":{},\"id\":{},\"det\":{},\"ts_us\":{},\"kind\":\"{}\",\"name\":{},\"value\":{},\"detail\":{}}}",
            self.seq,
            self.id,
            self.det,
            self.ts_us,
            self.kind.as_str(),
            escape_json(&self.name),
            fmt_value(self.value),
            escape_json(&self.detail),
        );
        s
    }

    /// Parses one JSONL line back into an [`Event`].
    ///
    /// Strict: the line must be a flat JSON object with exactly the
    /// fields [`to_line`](Self::to_line) emits (minus `job` for the
    /// control lane); unknown or duplicate fields are errors.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let fields = parse_flat_object(line)?;
        let mut seen: HashMap<&str, &Scalar> = HashMap::new();
        for (k, v) in &fields {
            if seen.insert(k.as_str(), v).is_some() {
                return Err(format!("duplicate field {k:?}"));
            }
        }
        const KNOWN: [&str; 11] = [
            "v", "entry", "shard", "job", "seq", "id", "det", "ts_us", "kind", "name", "value",
        ];
        for k in seen.keys() {
            if !KNOWN.contains(k) && *k != "detail" {
                return Err(format!("unknown field {k:?}"));
            }
        }
        let num = |k: &str| -> Result<f64, String> {
            match seen.get(k) {
                Some(Scalar::Num(n)) => n
                    .parse::<f64>()
                    .map_err(|_| format!("field {k:?}: bad number {n:?}")),
                Some(_) => Err(format!("field {k:?}: expected number")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let int = |k: &str| -> Result<u64, String> {
            match seen.get(k) {
                Some(Scalar::Num(n)) => n
                    .parse::<u64>()
                    .map_err(|_| format!("field {k:?}: bad integer {n:?}")),
                Some(_) => Err(format!("field {k:?}: expected integer")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let string = |k: &str| -> Result<String, String> {
            match seen.get(k) {
                Some(Scalar::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("field {k:?}: expected string")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let boolean = |k: &str| -> Result<bool, String> {
            match seen.get(k) {
                Some(Scalar::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("field {k:?}: expected bool")),
                None => Err(format!("missing field {k:?}")),
            }
        };

        let v = int("v")?;
        if v != SCHEMA_V {
            return Err(format!("unsupported telemetry schema version {v}"));
        }
        let job = if seen.contains_key("job") {
            Some(int("job")?)
        } else {
            None
        };
        let kind_s = string("kind")?;
        let kind = Kind::parse(&kind_s).ok_or_else(|| format!("unknown event kind {kind_s:?}"))?;
        let name = string("name")?;
        if name.is_empty() {
            return Err("empty event name".into());
        }
        Ok(Event {
            entry: string("entry")?,
            shard: int("shard")? as u32,
            job,
            seq: int("seq")? as u32,
            id: int("id")?,
            det: boolean("det")?,
            ts_us: int("ts_us")?,
            kind,
            name,
            value: num("value")?,
            detail: string("detail")?,
        })
    }
}

/// Derives a span ID from lane coordinates — never from wall-clock or
/// randomness, so re-runs assign identical IDs.
///
/// Layout (high to low): 12 bits of shard, 32 bits of job index
/// (`0xFFFF_FFFF` marks the control lane), 20 bits of sequence.
pub fn span_id(shard: u32, job: Option<u64>, seq: u32) -> u64 {
    let job_part = match job {
        Some(j) => j & 0xFFFF_FFFF,
        None => 0xFFFF_FFFF,
    };
    ((shard as u64 & 0xFFF) << 52) | (job_part << 20) | (seq as u64 & 0xF_FFFF)
}

/// Lane key: which (entry, shard, job) stream an event belongs to.
pub(crate) fn lane_key(e: &Event) -> (String, u32, Option<u64>) {
    (e.entry.clone(), e.shard, e.job)
}

/// The deterministic, byte-stable projection of an event stream.
///
/// Keeps only `det: true` events, zeroes every advisory payload
/// (timestamps always, `value` on `End` events whose payload is a
/// duration), and **renumbers** sequence numbers per lane so that
/// advisory events interleaved in the source stream do not shift the
/// surviving events' positions. Span IDs are remapped to match the
/// renumbered sequences via each span's `Begin`. Two runs of the same
/// work — regardless of `--window-threads`, `--profile`, or telemetry
/// verbosity — produce byte-identical projections.
pub fn canonical_projection(events: &[Event]) -> Vec<Event> {
    let mut next_seq: HashMap<(String, u32, Option<u64>), u32> = HashMap::new();
    let mut id_map: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    for e in events {
        if !e.det {
            continue;
        }
        let mut c = e.clone();
        let seq = next_seq.entry(lane_key(e)).or_insert(0);
        c.seq = *seq;
        *seq += 1;
        c.ts_us = 0;
        match c.kind {
            Kind::Begin => {
                let new_id = span_id(c.shard, c.job, c.seq);
                id_map.insert(e.id, new_id);
                c.id = new_id;
            }
            Kind::End => {
                c.id = *id_map.get(&e.id).unwrap_or(&0);
                c.value = 0.0;
            }
            _ => {}
        }
        out.push(c);
    }
    out
}

/// Aggregate shape of a validated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimelineStats {
    /// Total events.
    pub events: usize,
    /// Completed spans (matched Begin/End pairs).
    pub spans: usize,
    /// Counter events.
    pub counters: usize,
    /// Gauge events.
    pub gauges: usize,
    /// Mark events.
    pub marks: usize,
}

/// Validates an event stream against the schema's structural rules.
///
/// Per lane (in stream order): sequence numbers strictly increase,
/// `Begin`/`End` bracket like a stack with matching IDs, and `Begin`
/// IDs are nonzero. Lanes may interleave freely in the stream (worker
/// sidecars interleave control events between job flushes).
pub fn validate(events: &[Event]) -> Result<TimelineStats, String> {
    let mut last_seq: HashMap<(String, u32, Option<u64>), u32> = HashMap::new();
    let mut stacks: HashMap<(String, u32, Option<u64>), Vec<u64>> = HashMap::new();
    let mut stats = TimelineStats {
        events: events.len(),
        ..TimelineStats::default()
    };
    for (i, e) in events.iter().enumerate() {
        let key = lane_key(e);
        if e.name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        if let Some(prev) = last_seq.get(&key) {
            if e.seq <= *prev {
                return Err(format!(
                    "event {i}: lane {key:?} seq {} not after {prev}",
                    e.seq
                ));
            }
        }
        last_seq.insert(key.clone(), e.seq);
        match e.kind {
            Kind::Begin => {
                if e.id == 0 {
                    return Err(format!("event {i}: begin with id 0"));
                }
                stacks.entry(key).or_default().push(e.id);
            }
            Kind::End => {
                let stack = stacks.entry(key.clone()).or_default();
                match stack.pop() {
                    Some(top) if top == e.id => stats.spans += 1,
                    Some(top) => {
                        return Err(format!(
                            "event {i}: end id {} does not match open span {top}",
                            e.id
                        ))
                    }
                    None => return Err(format!("event {i}: end with no open span in {key:?}")),
                }
            }
            Kind::Counter => stats.counters += 1,
            Kind::Gauge => stats.gauges += 1,
            Kind::Mark => stats.marks += 1,
        }
    }
    for (key, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("lane {key:?}: {} span(s) never ended", stack.len()));
        }
    }
    Ok(stats)
}

/// Formats an `f64` payload with shortest round-trip semantics
/// (`format!("{v}")`), mapping non-finite values to 0.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// JSON-escapes a string, including the surrounding quotes.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A scalar JSON value in a flat telemetry object.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    /// Raw number token, parsed on demand so integers survive exactly.
    Num(String),
    Bool(bool),
}

/// Parses `{"k":scalar,...}` — a single flat object of scalar values.
/// Telemetry lines never nest, so rejecting `[`/`{` values keeps the
/// parser small and the format honest.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', found {other:?}")),
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '/')) => s.push('/'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'b')) => s.push('\u{8}'),
                    Some((_, 'f')) => s.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {c:?} in \\u escape"))?;
                        }
                        // Surrogate pairs never occur (the writer emits
                        // \u only for C0 controls) but handle them for
                        // strict-JSON interop.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            let (_, b1) = chars.next().ok_or("truncated surrogate pair")?;
                            let (_, b2) = chars.next().ok_or("truncated surrogate pair")?;
                            if (b1, b2) != ('\\', 'u') {
                                return Err("unpaired surrogate".into());
                            }
                            let mut low = 0u32;
                            for _ in 0..4 {
                                let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                                low = low * 16
                                    + c.to_digit(16).ok_or_else(|| {
                                        format!("bad hex digit {c:?} in \\u escape")
                                    })?;
                            }
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("unpaired surrogate".into());
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        s.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) if (c as u32) < 0x20 => {
                    return Err("raw control character in string".into())
                }
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(format!("expected '{{', found {other:?}")),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected ':', found {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => Scalar::Str(parse_string(&mut chars)?),
                Some((_, 't')) | Some((_, 'f')) => {
                    let mut word = String::new();
                    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic()) {
                        word.push(chars.next().unwrap().1);
                    }
                    match word.as_str() {
                        "true" => Scalar::Bool(true),
                        "false" => Scalar::Bool(false),
                        w => return Err(format!("bad literal {w:?}")),
                    }
                }
                Some((_, c)) if *c == '-' || c.is_ascii_digit() => {
                    let mut tok = String::new();
                    while matches!(
                        chars.peek(),
                        Some((_, c)) if c.is_ascii_digit()
                            || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                    ) {
                        tok.push(chars.next().unwrap().1);
                    }
                    Scalar::Num(tok)
                }
                other => return Err(format!("unsupported value start {other:?}")),
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing content at byte {i}: {c:?}"));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(det: bool, kind: Kind, seq: u32, job: Option<u64>) -> Event {
        let id = match kind {
            Kind::Begin | Kind::End => span_id(1, job, seq),
            _ => 0,
        };
        Event {
            entry: "fig01".into(),
            shard: 1,
            job,
            seq,
            id,
            det,
            ts_us: 123,
            kind,
            name: "job".into(),
            value: 2.5,
            detail: "mech=cf".into(),
        }
    }

    #[test]
    fn line_round_trips_exactly() {
        for job in [Some(3), None] {
            for kind in [
                Kind::Begin,
                Kind::End,
                Kind::Counter,
                Kind::Gauge,
                Kind::Mark,
            ] {
                let mut e = sample(true, kind, 5, job);
                e.detail = "quote \" slash \\ newline \n tab \t unicode ✓ \u{1}".into();
                let line = e.to_line();
                let back = Event::parse_line(&line).expect("parse");
                assert_eq!(back, e, "line: {line}");
                assert_eq!(back.to_line(), line);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let good = sample(true, Kind::Mark, 0, Some(1)).to_line();
        assert!(Event::parse_line(&good).is_ok());
        for bad in [
            "",
            "{",
            "not json",
            "{\"v\":1}",
            &good.replace("\"v\":1", "\"v\":2"),
            &good.replace("\"kind\":\"mark\"", "\"kind\":\"sideways\""),
            &good.replace("\"seq\":0", "\"seq\":0,\"seq\":1"),
            &good.replace("\"seq\":0", "\"seq\":0,\"mystery\":3"),
            &format!("{good} trailing"),
        ] {
            assert!(Event::parse_line(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn span_ids_are_positional_and_distinct() {
        assert_ne!(span_id(1, Some(0), 0), span_id(2, Some(0), 0));
        assert_ne!(span_id(1, Some(0), 0), span_id(1, Some(1), 0));
        assert_ne!(span_id(1, Some(0), 0), span_id(1, Some(0), 1));
        assert_ne!(span_id(1, Some(0), 0), span_id(1, None, 0));
        assert_eq!(span_id(3, Some(7), 9), span_id(3, Some(7), 9));
        assert_ne!(span_id(1, None, 4), 0);
    }

    #[test]
    fn canonical_projection_drops_advisory_and_renumbers() {
        // Lane with an advisory counter wedged between det events: the
        // projection must close the seq gap and remap the span id.
        let events = vec![
            sample(true, Kind::Begin, 0, Some(2)),
            sample(false, Kind::Counter, 1, Some(2)),
            {
                let mut e = sample(true, Kind::End, 2, Some(2));
                e.id = span_id(1, Some(2), 0);
                e.value = 917.0; // advisory duration
                e
            },
        ];
        let canon = canonical_projection(&events);
        assert_eq!(canon.len(), 2);
        assert_eq!(canon[0].seq, 0);
        assert_eq!(canon[1].seq, 1);
        assert_eq!(canon[0].id, canon[1].id);
        assert_eq!(canon[1].value, 0.0);
        assert!(canon.iter().all(|e| e.ts_us == 0));
        // A second stream with extra advisory noise projects identically.
        let mut noisy = events.clone();
        noisy.insert(1, sample(false, Kind::Gauge, 3, Some(2)));
        let canon2 = canonical_projection(&noisy);
        let lines: Vec<String> = canon.iter().map(Event::to_line).collect();
        let lines2: Vec<String> = canon2.iter().map(Event::to_line).collect();
        assert_eq!(lines, lines2);
    }

    #[test]
    fn validate_checks_lane_structure() {
        let ok = vec![
            sample(true, Kind::Begin, 0, Some(1)),
            sample(false, Kind::Counter, 1, Some(1)),
            {
                let mut e = sample(true, Kind::End, 2, Some(1));
                e.id = span_id(1, Some(1), 0);
                e
            },
        ];
        let stats = validate(&ok).expect("valid");
        assert_eq!(stats.events, 3);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.counters, 1);

        // Unbalanced span.
        let unbalanced = vec![sample(true, Kind::Begin, 0, Some(1))];
        assert!(validate(&unbalanced).is_err());

        // Non-increasing seq within a lane.
        let stuck = vec![
            sample(true, Kind::Mark, 1, Some(1)),
            sample(true, Kind::Mark, 1, Some(1)),
        ];
        assert!(validate(&stuck).is_err());

        // Mismatched end id.
        let mismatched = vec![sample(true, Kind::Begin, 0, Some(1)), {
            let mut e = sample(true, Kind::End, 1, Some(1));
            e.id = 999;
            e
        }];
        assert!(validate(&mismatched).is_err());
    }
}
