//! Reading sidecar streams and merging them into one campaign timeline.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::event::{lane_key, Event};

/// Reads a JSONL event file. The file must exist and be readable;
/// malformed lines (a worker killed mid-write can tear its last line)
/// are skipped, mirroring the store's crash-healing reads.
pub fn read_events(path: &Path) -> Result<Vec<Event>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(e) = Event::parse_line(line) {
            events.push(e);
        }
    }
    Ok(events)
}

/// Like [`read_events`], but treats a missing file as an empty stream
/// (a worker that executed zero jobs never creates its sidecar).
pub fn read_events_lenient(path: &Path) -> Vec<Event> {
    if path.exists() {
        read_events(path).unwrap_or_default()
    } else {
        Vec::new()
    }
}

/// Writes events as a JSONL file (one [`Event::to_line`] per line),
/// replacing any previous content.
pub fn write_events(path: &Path, events: &[Event]) -> Result<(), String> {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = fs::create_dir_all(parent);
        }
    }
    let mut f =
        fs::File::create(path).map_err(|e| format!("failed to create {}: {e}", path.display()))?;
    f.write_all(out.as_bytes())
        .map_err(|e| format!("failed to write {}: {e}", path.display()))
}

/// Merges per-worker/coordinator event streams into one timeline in
/// deterministic lane order.
///
/// Two guarantees:
///
/// 1. **Retry dedup**: sidecars are append-only, so a retried (or
///    re-run) worker appends a second run of the same lane. A lane
///    "run" boundary is a sequence reset (seq not increasing); only the
///    *last* run of each lane survives, matching the store semantics
///    where the retry's rows are the ones that merged.
/// 2. **Deterministic order**: job lanes first, sorted by
///    (entry rank in `entry_order`, entry, shard, job) with events in
///    sequence order inside each lane; control lanes after, sorted by
///    (shard, entry rank, entry). No wall-clock anywhere in the sort.
pub fn merge(streams: Vec<Vec<Event>>, entry_order: &[String]) -> Vec<Event> {
    let rank: HashMap<&str, usize> = entry_order
        .iter()
        .enumerate()
        .map(|(i, e)| (e.as_str(), i))
        .collect();
    let rank_of = |entry: &str| *rank.get(entry).unwrap_or(&entry_order.len());

    // Split every lane into runs, keeping only the last run.
    let mut lanes: HashMap<(String, u32, Option<u64>), Vec<Event>> = HashMap::new();
    for stream in streams {
        for e in stream {
            let lane = lanes.entry(lane_key(&e)).or_default();
            match lane.last() {
                Some(prev) if e.seq <= prev.seq => {
                    // Sequence reset: a newer run of this lane begins.
                    lane.clear();
                    lane.push(e);
                }
                _ => lane.push(e),
            }
        }
    }

    type SortedLane<K> = (K, Vec<Event>);
    let mut job_lanes: Vec<SortedLane<(usize, String, u32, u64)>> = Vec::new();
    let mut control_lanes: Vec<SortedLane<(u32, usize, String)>> = Vec::new();
    for ((entry, shard, job), events) in lanes {
        match job {
            Some(j) => job_lanes.push(((rank_of(&entry), entry, shard, j), events)),
            None => control_lanes.push(((shard, rank_of(&entry), entry), events)),
        }
    }
    job_lanes.sort_by(|a, b| a.0.cmp(&b.0));
    control_lanes.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Vec::new();
    for (_, events) in job_lanes {
        out.extend(events);
    }
    for (_, events) in control_lanes {
        out.extend(events);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{span_id, Kind};

    fn ev(entry: &str, shard: u32, job: Option<u64>, seq: u32, name: &str) -> Event {
        Event {
            entry: entry.into(),
            shard,
            job,
            seq,
            id: 0,
            det: true,
            ts_us: 0,
            kind: Kind::Mark,
            name: name.into(),
            value: 0.0,
            detail: String::new(),
        }
    }

    #[test]
    fn merge_orders_lanes_deterministically() {
        let order = vec!["b_entry".to_string(), "a_entry".to_string()];
        // Streams supplied shard-2-first to prove sorting wins.
        let merged = merge(
            vec![
                vec![
                    ev("a_entry", 2, Some(0), 0, "m"),
                    ev("a_entry", 2, None, 0, "c"),
                ],
                vec![
                    ev("b_entry", 1, Some(1), 0, "m"),
                    ev("b_entry", 1, Some(0), 0, "m"),
                ],
            ],
            &order,
        );
        let lanes: Vec<(String, u32, Option<u64>)> = merged
            .iter()
            .map(|e| (e.entry.clone(), e.shard, e.job))
            .collect();
        assert_eq!(
            lanes,
            vec![
                ("b_entry".into(), 1, Some(0)),
                ("b_entry".into(), 1, Some(1)),
                ("a_entry".into(), 2, Some(0)),
                ("a_entry".into(), 2, None),
            ]
        );
    }

    #[test]
    fn merge_keeps_last_run_after_seq_reset() {
        // One lane appended twice (a retried worker): seqs 0,1 then 0,1,2.
        let stream = vec![
            ev("e", 1, Some(4), 0, "old"),
            ev("e", 1, Some(4), 1, "old"),
            ev("e", 1, Some(4), 0, "new"),
            ev("e", 1, Some(4), 1, "new"),
            ev("e", 1, Some(4), 2, "new"),
        ];
        let merged = merge(vec![stream], &["e".to_string()]);
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().all(|e| e.name == "new"));
    }

    #[test]
    fn file_round_trip_skips_torn_lines() {
        let dir = std::env::temp_dir().join(format!(
            "sbp-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut e = ev("fig01", 1, Some(0), 0, "job");
        e.kind = Kind::Begin;
        e.id = span_id(1, Some(0), 0);
        write_events(&path, std::slice::from_ref(&e)).unwrap();
        // Simulate a torn trailing line from a killed worker.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"entry\":\"fig01\",\"sha");
        std::fs::write(&path, text).unwrap();
        let back = read_events(&path).unwrap();
        assert_eq!(back, vec![e]);
        assert!(read_events(&dir.join("missing.jsonl")).is_err());
        assert!(read_events_lenient(&dir.join("missing.jsonl")).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
