//! Store-backed sweep orchestration: resume, sharding and merge.
//!
//! [`SweepSpec::run_with`] is the persistent, distributable variant of
//! [`SweepSpec::run`]: completed cells are looked up in a
//! [`SweepStore`] by fingerprint and skipped
//! (resume), a [`Shard`] filter restricts execution to a deterministic
//! slice of the flat job list so one spec fans out across processes or
//! machines, and [`merge_stores`] recombines shard stores into the full
//! report — byte-identical (records, JSONL, CSV, table) to a
//! single-process run of the same spec, because the report is a pure
//! function of the plan-ordered results and stored floats round-trip
//! exactly.

use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use sbp_types::{SbpError, SweepReport};

use crate::exec::{parallel_map_with, run_job_indexed, JobArena, RawResult};
use crate::spec::SweepSpec;
use crate::store::{plan_fingerprints, SweepStore};

/// A `k/n` slice of the flat job list (`k` is 1-based on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 0-based shard index.
    pub index: usize,
    /// Total shard count (≥ 1).
    pub count: usize,
}

impl Shard {
    /// Parses the CLI form `k/n` with `1 ≤ k ≤ n` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for malformed or out-of-range specs.
    pub fn parse(s: &str) -> Result<Self, SbpError> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| SbpError::config(format!("shard spec {s:?} is not of the form k/n")))?;
        let (k, n) = (
            k.trim()
                .parse::<usize>()
                .map_err(|e| SbpError::config(format!("shard index {k:?}: {e}")))?,
            n.trim()
                .parse::<usize>()
                .map_err(|e| SbpError::config(format!("shard count {n:?}: {e}")))?,
        );
        if n == 0 || k == 0 || k > n {
            return Err(SbpError::config(format!(
                "shard {k}/{n} out of range (need 1 ≤ k ≤ n)"
            )));
        }
        Ok(Shard {
            index: k - 1,
            count: n,
        })
    }

    /// Whether this shard owns the job with fingerprint `fp`. The `n`
    /// shards partition the job list — every fingerprint belongs to
    /// exactly one shard — and keying on the (FNV-mixed) fingerprint
    /// rather than the plan index decorrelates shard membership from the
    /// plan's fixed job stride: an `index % n` rule would hand one shard
    /// all the Baseline jobs whenever `n` equals the per-group job count,
    /// maximally unbalancing the fan-out when one mechanism is
    /// systematically slower.
    pub fn owns(&self, fp: u64) -> bool {
        fp % self.count as u64 == self.index as u64
    }
}

/// Options for a store-backed sweep run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// JSONL store to resume from / append completed cells to.
    pub store: Option<PathBuf>,
    /// Restrict execution to one shard of the job list.
    pub shard: Option<Shard>,
}

impl RunOptions {
    /// Parses `--store PATH` and `--shard K/N` out of a CLI argument
    /// list, returning the options and the remaining arguments.
    ///
    /// # Errors
    ///
    /// Returns configuration errors for missing values or malformed
    /// shard specs.
    pub fn from_args(args: &[String]) -> Result<(Self, Vec<String>), SbpError> {
        let mut opts = RunOptions::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--store" => {
                    let path = it
                        .next()
                        .ok_or_else(|| SbpError::config("--store needs a path"))?;
                    opts.store = Some(PathBuf::from(path));
                }
                "--shard" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| SbpError::config("--shard needs a k/n spec"))?;
                    opts.shard = Some(Shard::parse(spec)?);
                }
                _ => rest.push(arg.clone()),
            }
        }
        Ok((opts, rest))
    }
}

/// What a store-backed run did, and — when every cell has a result — the
/// built report.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The full report; `None` while cells are still pending (a shard run
    /// whose siblings have not completed yet).
    pub report: Option<SweepReport>,
    /// Jobs executed by this run.
    pub executed: usize,
    /// Jobs skipped because the store already held their result.
    pub skipped: usize,
    /// Jobs still missing a result (outside this shard and not stored).
    pub pending: usize,
}

impl SweepSpec {
    /// Plans the sweep, skips every job whose fingerprint is already in
    /// the store, executes the rest (restricted to `opts.shard` if set)
    /// appending each result to the store as it completes, and builds the
    /// report once all cells have results.
    ///
    /// # Errors
    ///
    /// Returns validation, execution and store I/O errors. Sharding
    /// without a store is rejected: the off-shard cells would stay
    /// pending, so no report could be built and the executed results
    /// would be discarded.
    pub fn run_with(&self, opts: &RunOptions) -> Result<SweepOutcome, SbpError> {
        self.validate()?;
        if opts.shard.is_some() && opts.store.is_none() {
            return Err(SbpError::config(
                "a sharded run needs a store (--store), or its results are thrown away",
            ));
        }
        let plan = crate::plan::plan(self);
        let fps = plan_fingerprints(self, &plan);
        let store = match &opts.store {
            Some(path) => Some(SweepStore::open(path)?),
            None => None,
        };
        let stored: Vec<bool> = fps
            .iter()
            .map(|fp| store.as_ref().is_some_and(|s| s.get(*fp).is_some()))
            .collect();
        let todo: Vec<usize> = (0..plan.jobs.len())
            .filter(|&i| !stored[i] && opts.shard.is_none_or(|sh| sh.owns(fps[i])))
            .collect();
        let skipped = stored.iter().filter(|s| **s).count();

        let store = store.map(Mutex::new);
        let fresh: Vec<Result<RawResult, SbpError>> =
            parallel_map_with(todo.len(), JobArena::new, |arena, k| {
                let i = todo[k];
                let result = run_job_indexed(arena, self, &plan, i)?;
                if let Some(s) = &store {
                    s.lock().append(fps[i], &result)?;
                }
                Ok(result)
            });
        let store = store.map(Mutex::into_inner);

        let mut results: Vec<Option<RawResult>> = vec![None; plan.jobs.len()];
        for (k, i) in todo.iter().enumerate() {
            results[*i] = Some(fresh[k].clone()?);
        }
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(s) = &store {
                    *slot = s.get(fps[i]).cloned();
                }
            }
        }
        let pending = results.iter().filter(|r| r.is_none()).count();
        let report = if pending == 0 {
            let complete: Vec<RawResult> = results.into_iter().map(Option::unwrap).collect();
            Some(crate::build::build_report(self, &plan, &complete))
        } else {
            None
        };
        Ok(SweepOutcome {
            report,
            executed: todo.len(),
            skipped,
            pending,
        })
    }
}

/// Recombines shard stores of one spec into the full report, optionally
/// writing the merged store (in canonical plan order) to `out`.
///
/// # Errors
///
/// Returns store I/O errors, and a store error naming the number of
/// missing cells when the shards do not cover the whole plan.
pub fn merge_stores(
    spec: &SweepSpec,
    shards: &[PathBuf],
    out: Option<&Path>,
) -> Result<SweepReport, SbpError> {
    spec.validate()?;
    let plan = crate::plan::plan(spec);
    let fps = plan_fingerprints(spec, &plan);
    let mut merged = std::collections::HashMap::new();
    for path in shards {
        merged.extend(SweepStore::open(path)?.into_map());
    }
    let mut results = Vec::with_capacity(plan.jobs.len());
    for (i, fp) in fps.iter().enumerate() {
        match merged.get(fp) {
            Some(r) => results.push(r.clone()),
            None => {
                let missing = fps.iter().filter(|f| !merged.contains_key(f)).count();
                return Err(SbpError::store(format!(
                    "merge incomplete: {missing} of {} cells missing (first: job {i}); \
                     note: sim fingerprints include SBP_SCALE (currently {}) — stores \
                     written under a different scale will not match",
                    plan.jobs.len(),
                    sbp_sim::scale(),
                )));
            }
        }
    }
    if let Some(path) = out {
        // Canonical plan order, duplicates collapsed to first sighting.
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<(u64, RawResult)> = fps
            .iter()
            .zip(&results)
            .filter(|(fp, _)| seen.insert(**fp))
            .map(|(fp, r)| (*fp, r.clone()))
            .collect();
        SweepStore::write_canonical(path, entries)?;
    }
    Ok(crate::build::build_report(spec, &plan, &results))
}

/// Garbage-collects the store at `path` against a set of live specs:
/// every line whose fingerprint appears in no spec's plan is dropped (see
/// [`SweepStore::compact`]). Returns the number of cells dropped; a
/// missing store file is an empty store and drops nothing.
///
/// This is the `--gc` entry point of the sweep binaries and the automatic
/// post-merge pass of the campaign orchestrator. Note that simulation
/// fingerprints include `SBP_SCALE`, so a GC run under a different scale
/// than the one that produced the store collects everything — exactly the
/// cells no present-scale run can resume from.
///
/// # Errors
///
/// Returns validation errors for malformed specs and store I/O errors.
pub fn gc_store(path: &Path, specs: &[SweepSpec]) -> Result<usize, SbpError> {
    let mut known = std::collections::HashSet::new();
    for spec in specs {
        spec.validate()?;
        let plan = crate::plan::plan(spec);
        known.extend(plan_fingerprints(spec, &plan));
    }
    let mut store = SweepStore::open(path)?;
    store.compact(&known)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_and_membership() {
        let s = Shard::parse("2/4").expect("parse");
        assert_eq!(s, Shard { index: 1, count: 4 });
        assert!(s.owns(1) && s.owns(5));
        assert!(!s.owns(0) && !s.owns(2));
        assert!(Shard::parse("0/4").is_err());
        assert!(Shard::parse("5/4").is_err());
        assert!(Shard::parse("1-4").is_err());
        assert!(Shard::parse("a/4").is_err());
        assert!(Shard::parse("1/0").is_err());
    }

    #[test]
    fn shards_partition_any_fingerprint_set() {
        for n in 1..=5 {
            let shards: Vec<Shard> = (1..=n)
                .map(|k| Shard::parse(&format!("{k}/{n}")).expect("parse"))
                .collect();
            for fp in (0u64..50).chain([u64::MAX, u64::MAX - 1, 0xdead_beef_0bad_5eed]) {
                assert_eq!(shards.iter().filter(|s| s.owns(fp)).count(), 1);
            }
        }
    }

    #[test]
    fn sharding_without_a_store_is_rejected() {
        let spec = SweepSpec::single("no store");
        let err = spec
            .run_with(&RunOptions {
                store: None,
                shard: Some(Shard { index: 0, count: 2 }),
            })
            .expect_err("shard without store must not execute");
        assert!(err.to_string().contains("store"), "{err}");
    }

    #[test]
    fn cli_args_are_extracted_and_rest_preserved() {
        let args: Vec<String> = ["--store", "/tmp/s.jsonl", "keep", "--shard", "1/2", "me"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, rest) = RunOptions::from_args(&args).expect("parse");
        assert_eq!(opts.store.as_deref(), Some(Path::new("/tmp/s.jsonl")));
        assert_eq!(opts.shard, Some(Shard { index: 0, count: 2 }));
        assert_eq!(rest, vec!["keep".to_string(), "me".to_string()]);
        assert!(RunOptions::from_args(&["--store".to_string()]).is_err());
        assert!(RunOptions::from_args(&["--shard".to_string(), "x".to_string()]).is_err());
    }
}
