//! The conformance layer: joining a [`SweepReport`] against paper
//! expectations into a [`VerdictTable`].
//!
//! An [`Expectation`] encodes one machine-checkable claim about a report —
//! a series mean within tolerance of the paper's number, a one-sided
//! bound, a direction constraint between two series, or the security
//! verdict of a Table 1 attack cell. [`check_report`] evaluates a list of
//! expectations and returns the per-expectation pass/fail rows plus the
//! aggregated per-entry verdict, with the same aligned-table/JSONL/CSV
//! emitters as the report itself.
//!
//! Tolerances are *scale aware*: at reduced `SBP_SCALE` the simulated
//! work shrinks and flush/rekey effects fade toward zero, so two-sided
//! tolerances and order slacks are widened by [`widen_factor`] (the
//! `1/sqrt(scale)` growth of relative sampling noise). One-sided bounds
//! and attack verdicts are scale-independent — attack campaigns carry
//! explicit trial counts — and are checked unwidened.

use sbp_types::report::{csv_field, fmt_f64, json_str, pct};
use sbp_types::{SbpError, SweepReport};

use crate::build::attack_cell_outcome;
use crate::json;

/// Fully-qualified name of one series column: the lookup key of
/// [`SweepReport::series_mean`]. For attack sweeps `interval` holds the
/// core-mode label (`"single-core"` / `"smt"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesKey {
    /// Mechanism series label (`"CF"`, `"Noisy-XOR-BP"`, ...).
    pub series: String,
    /// Predictor label.
    pub predictor: String,
    /// Switch-interval label (sim) or core-mode label (attack).
    pub interval: String,
}

impl SeriesKey {
    /// Builds a key from borrowed labels.
    pub fn new(series: &str, predictor: &str, interval: &str) -> Self {
        SeriesKey {
            series: series.to_string(),
            predictor: predictor.to_string(),
            interval: interval.to_string(),
        }
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.series, self.predictor, self.interval)
    }
}

/// One machine-checkable claim about a sweep report.
#[derive(Debug, Clone, PartialEq)]
pub enum Expectation {
    /// The series mean must be within `abs_tol + rel_tol·|expected|` of
    /// `expected` (tolerance widened at reduced scale).
    MeanWithin {
        /// Series to check.
        key: SeriesKey,
        /// The paper's reported mean.
        expected: f64,
        /// Absolute tolerance.
        abs_tol: f64,
        /// Relative tolerance (fraction of `|expected|`).
        rel_tol: f64,
    },
    /// The series mean must not exceed `limit` (checked unwidened: a
    /// smaller scale only shrinks overheads, so the bound stays valid).
    MeanAtMost {
        /// Series to check.
        key: SeriesKey,
        /// Upper bound on the mean.
        limit: f64,
    },
    /// The series mean must be at least `limit`.
    MeanAtLeast {
        /// Series to check.
        key: SeriesKey,
        /// Lower bound on the mean.
        limit: f64,
    },
    /// Direction constraint: `hi`'s mean must be at least `lo`'s mean,
    /// up to a noise slack (widened at reduced scale; ties always pass).
    OrderAtLeast {
        /// The series expected to cost at least as much.
        hi: SeriesKey,
        /// The series expected to cost no more.
        lo: SeriesKey,
        /// Allowed inversion before the check fails.
        slack: f64,
    },
    /// Security verdict of one attack cell (Table 1): the seed-aggregated
    /// outcome's classification must be one of `allowed`.
    Verdict {
        /// Attack campaign label (the report's row).
        attack: String,
        /// Mechanism series label.
        series: String,
        /// Predictor label.
        predictor: String,
        /// Core-mode label (`"single-core"` / `"smt"`).
        mode: String,
        /// Acceptable verdict labels (`"Defend"`, `"Mitigate"`,
        /// `"No Protection"`).
        allowed: Vec<String>,
    },
}

/// Default inversion slack of [`Expectation::order`]: generous enough for
/// seed noise at full scale, far below any real effect gap.
pub const DEFAULT_ORDER_SLACK: f64 = 0.003;

impl Expectation {
    /// A two-sided mean check against the paper's reported value.
    pub fn mean_within(
        series: &str,
        predictor: &str,
        interval: &str,
        expected: f64,
        abs_tol: f64,
    ) -> Self {
        Expectation::MeanWithin {
            key: SeriesKey::new(series, predictor, interval),
            expected,
            abs_tol,
            rel_tol: 0.0,
        }
    }

    /// An upper bound on a series mean.
    pub fn at_most(series: &str, predictor: &str, interval: &str, limit: f64) -> Self {
        Expectation::MeanAtMost {
            key: SeriesKey::new(series, predictor, interval),
            limit,
        }
    }

    /// A lower bound on a series mean.
    pub fn at_least(series: &str, predictor: &str, interval: &str, limit: f64) -> Self {
        Expectation::MeanAtLeast {
            key: SeriesKey::new(series, predictor, interval),
            limit,
        }
    }

    /// A direction constraint: `hi ≥ lo` (up to the default slack). Both
    /// keys share `predictor`; the intervals may differ (that is how
    /// "flush cost grows with flush frequency" is spelled).
    pub fn order(
        predictor: &str,
        hi_series: &str,
        hi_interval: &str,
        lo_series: &str,
        lo_interval: &str,
    ) -> Self {
        Expectation::OrderAtLeast {
            hi: SeriesKey::new(hi_series, predictor, hi_interval),
            lo: SeriesKey::new(lo_series, predictor, lo_interval),
            slack: DEFAULT_ORDER_SLACK,
        }
    }

    /// An exact security-verdict check for one attack cell.
    pub fn verdict(
        attack: &str,
        series: &str,
        predictor: &str,
        mode: &str,
        expected: &str,
    ) -> Self {
        Expectation::Verdict {
            attack: attack.to_string(),
            series: series.to_string(),
            predictor: predictor.to_string(),
            mode: mode.to_string(),
            allowed: vec![expected.to_string()],
        }
    }

    /// A verdict check accepting any of `allowed` (e.g. "at most
    /// Mitigate" for a key-bimodal cell).
    pub fn verdict_in(
        attack: &str,
        series: &str,
        predictor: &str,
        mode: &str,
        allowed: &[&str],
    ) -> Self {
        Expectation::Verdict {
            attack: attack.to_string(),
            series: series.to_string(),
            predictor: predictor.to_string(),
            mode: mode.to_string(),
            allowed: allowed.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Compact description used as the verdict table's row key.
    pub fn describe(&self) -> String {
        match self {
            Expectation::MeanWithin { key, .. } => format!("mean {key}"),
            Expectation::MeanAtMost { key, .. } => format!("max {key}"),
            Expectation::MeanAtLeast { key, .. } => format!("min {key}"),
            Expectation::OrderAtLeast { hi, lo, .. } => format!("order {hi} >= {lo}"),
            Expectation::Verdict {
                attack,
                series,
                predictor,
                mode,
                ..
            } => format!("verdict {attack} vs {series}/{predictor}/{mode}"),
        }
    }
}

/// Tolerance widening at reduced scale: `max(1, sqrt(1/scale))` — the
/// growth rate of relative sampling noise as the simulated work shrinks.
/// Scales at or above 1 never widen.
pub fn widen_factor(scale: f64) -> f64 {
    if scale >= 1.0 || scale <= 0.0 {
        1.0
    } else {
        (1.0 / scale).sqrt()
    }
}

/// Outcome of one expectation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The claim holds.
    Pass,
    /// The claim is violated.
    Fail,
    /// The report holds no cell the claim refers to (counts as failure).
    Missing,
}

impl CheckStatus {
    /// Table / JSONL label.
    pub fn label(self) -> &'static str {
        match self {
            CheckStatus::Pass => "pass",
            CheckStatus::Fail => "FAIL",
            CheckStatus::Missing => "MISSING",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pass" => Ok(CheckStatus::Pass),
            "FAIL" => Ok(CheckStatus::Fail),
            "MISSING" => Ok(CheckStatus::Missing),
            other => Err(format!("unknown check status {other:?}")),
        }
    }
}

/// One evaluated expectation: the claim, the rendered expected/actual
/// values, the signed miss distance and the tolerance it was checked
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRow {
    /// `Expectation::describe()` of the claim.
    pub check: String,
    /// Rendered expected value (paper number, bound or verdict list).
    pub expected: String,
    /// Rendered measured value (`"missing"` when the cell is absent).
    pub actual: String,
    /// Signed distance from the expectation (mean − expected, actual −
    /// limit, hi − lo, or 0/1 for verdicts); 0 for missing cells.
    pub delta: f64,
    /// Tolerance the delta was compared against, after widening.
    pub tolerance: f64,
    /// Pass / fail / missing.
    pub status: CheckStatus,
}

/// The evaluated conformance report of one catalog entry: one row per
/// expectation plus the aggregated verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictTable {
    /// Entry (or report) name the expectations were checked against.
    pub entry: String,
    /// `SBP_SCALE` the evaluation ran under.
    pub scale: f64,
    /// The tolerance widening factor applied ([`widen_factor`]).
    pub widen: f64,
    /// One row per expectation, expectation order.
    pub rows: Vec<CheckRow>,
}

impl VerdictTable {
    /// Whether every expectation passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.status == CheckStatus::Pass)
    }

    /// (pass, fail, missing) row counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.rows {
            match r.status {
                CheckStatus::Pass => c.0 += 1,
                CheckStatus::Fail => c.1 += 1,
                CheckStatus::Missing => c.2 += 1,
            }
        }
        c
    }

    /// The aggregated per-entry verdict line.
    pub fn summary(&self) -> String {
        let (pass, fail, missing) = self.counts();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        format!(
            "verdict[{}]: {verdict} — {pass} pass, {fail} fail, {missing} missing \
             (scale {}, tolerance x{:.2})",
            self.entry, self.scale, self.widen,
        )
    }

    /// Emits the aligned per-expectation table, one row per claim,
    /// followed by the summary line.
    pub fn to_table(&self) -> String {
        let headers = ["status", "check", "expected", "actual", "delta"];
        let rendered: Vec<[String; 5]> = self
            .rows
            .iter()
            .map(|r| {
                [
                    r.status.label().to_string(),
                    r.check.clone(),
                    r.expected.clone(),
                    r.actual.clone(),
                    pct(r.delta),
                ]
            })
            .collect();
        let widths: Vec<usize> = (0..headers.len())
            .map(|i| {
                rendered
                    .iter()
                    .map(|row| row[i].chars().count())
                    .chain(std::iter::once(headers[i].chars().count()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        for (i, h) in headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{h:<width$}", width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            // Trailing alignment spaces would make golden files fragile.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Emits one JSON object per line: a header object carrying the
    /// entry/scale/widen fields, then one object per row. The floats use
    /// shortest-roundtrip formatting, so [`VerdictTable::from_jsonl`]
    /// recovers the table exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"verdict_table\",\"entry\":{},\"scale\":{},\"widen\":{}}}\n",
            json_str(&self.entry),
            fmt_f64(self.scale),
            fmt_f64(self.widen),
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"kind\":\"verdict_row\",\"check\":{},\"expected\":{},\
                 \"actual\":{},\"delta\":{},\"tolerance\":{},\"status\":{}}}\n",
                json_str(&r.check),
                json_str(&r.expected),
                json_str(&r.actual),
                fmt_f64(r.delta),
                fmt_f64(r.tolerance),
                json_str(r.status.label()),
            ));
        }
        out
    }

    /// Parses a table back from its [`VerdictTable::to_jsonl`] form.
    ///
    /// # Errors
    ///
    /// Returns a store error for malformed lines, a missing header, or
    /// unknown statuses.
    pub fn from_jsonl(text: &str) -> Result<Self, SbpError> {
        let bad = |n: usize, e: String| SbpError::store(format!("verdict line {}: {e}", n + 1));
        let mut header: Option<VerdictTable> = None;
        // Enumerate before filtering so errors cite physical line numbers.
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| bad(n, e))?;
            let obj = value
                .as_object()
                .ok_or_else(|| bad(n, "not a JSON object".to_string()))?;
            match json::get_str(obj, "kind").map_err(|e| bad(n, e))? {
                "verdict_table" => {
                    if header.is_some() {
                        return Err(bad(n, "duplicate header line".to_string()));
                    }
                    header = Some(VerdictTable {
                        entry: json::get_str(obj, "entry")
                            .map_err(|e| bad(n, e))?
                            .to_string(),
                        scale: json::get_f64(obj, "scale").map_err(|e| bad(n, e))?,
                        widen: json::get_f64(obj, "widen").map_err(|e| bad(n, e))?,
                        rows: Vec::new(),
                    });
                }
                "verdict_row" => {
                    let table = header
                        .as_mut()
                        .ok_or_else(|| bad(n, "row before header line".to_string()))?;
                    table.rows.push(CheckRow {
                        check: json::get_str(obj, "check")
                            .map_err(|e| bad(n, e))?
                            .to_string(),
                        expected: json::get_str(obj, "expected")
                            .map_err(|e| bad(n, e))?
                            .to_string(),
                        actual: json::get_str(obj, "actual")
                            .map_err(|e| bad(n, e))?
                            .to_string(),
                        delta: json::get_f64(obj, "delta").map_err(|e| bad(n, e))?,
                        tolerance: json::get_f64(obj, "tolerance").map_err(|e| bad(n, e))?,
                        status: CheckStatus::parse(
                            json::get_str(obj, "status").map_err(|e| bad(n, e))?,
                        )
                        .map_err(|e| bad(n, e))?,
                    });
                }
                other => return Err(bad(n, format!("unknown line kind {other:?}"))),
            }
        }
        header.ok_or_else(|| SbpError::store("verdict JSONL holds no header line"))
    }

    /// Emits the rows as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("entry,check,expected,actual,delta,tolerance,status\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                csv_field(&self.entry),
                csv_field(&r.check),
                csv_field(&r.expected),
                csv_field(&r.actual),
                fmt_f64(r.delta),
                fmt_f64(r.tolerance),
                r.status.label(),
            ));
        }
        out
    }
}

/// Evaluates `expectations` against `report` under the ambient
/// `SBP_SCALE` (the scale the report was presumably produced at).
pub fn check_report(
    report: &SweepReport,
    expectations: &[Expectation],
    entry: &str,
) -> VerdictTable {
    check_report_at(report, expectations, entry, sbp_sim::scale())
}

/// Evaluates `expectations` against `report` with an explicit scale for
/// the tolerance widening rule (tests pin this for determinism).
pub fn check_report_at(
    report: &SweepReport,
    expectations: &[Expectation],
    entry: &str,
    scale: f64,
) -> VerdictTable {
    let widen = widen_factor(scale);
    let rows = expectations
        .iter()
        .map(|e| check_one(report, e, widen))
        .collect();
    VerdictTable {
        entry: entry.to_string(),
        scale,
        widen,
        rows,
    }
}

fn check_one(report: &SweepReport, exp: &Expectation, widen: f64) -> CheckRow {
    let check = exp.describe();
    let missing = |expected: String, tolerance: f64| CheckRow {
        check: check.clone(),
        expected,
        actual: "missing".to_string(),
        delta: 0.0,
        tolerance,
        status: CheckStatus::Missing,
    };
    match exp {
        Expectation::MeanWithin {
            key,
            expected,
            abs_tol,
            rel_tol,
        } => {
            let tol = (abs_tol + rel_tol * expected.abs()) * widen;
            let rendered = format!("{} +-{}", pct(*expected), pct(tol));
            match report.series_mean(&key.series, &key.predictor, &key.interval) {
                None => missing(rendered, tol),
                Some(actual) => {
                    let delta = actual - expected;
                    CheckRow {
                        check,
                        expected: rendered,
                        actual: pct(actual),
                        delta,
                        tolerance: tol,
                        status: if delta.abs() <= tol {
                            CheckStatus::Pass
                        } else {
                            CheckStatus::Fail
                        },
                    }
                }
            }
        }
        Expectation::MeanAtMost { key, limit } => {
            let rendered = format!("<= {}", pct(*limit));
            match report.series_mean(&key.series, &key.predictor, &key.interval) {
                None => missing(rendered, 0.0),
                Some(actual) => CheckRow {
                    check,
                    expected: rendered,
                    actual: pct(actual),
                    delta: actual - limit,
                    tolerance: 0.0,
                    status: if actual <= *limit {
                        CheckStatus::Pass
                    } else {
                        CheckStatus::Fail
                    },
                },
            }
        }
        Expectation::MeanAtLeast { key, limit } => {
            let rendered = format!(">= {}", pct(*limit));
            match report.series_mean(&key.series, &key.predictor, &key.interval) {
                None => missing(rendered, 0.0),
                Some(actual) => CheckRow {
                    check,
                    expected: rendered,
                    actual: pct(actual),
                    delta: actual - limit,
                    tolerance: 0.0,
                    status: if actual >= *limit {
                        CheckStatus::Pass
                    } else {
                        CheckStatus::Fail
                    },
                },
            }
        }
        Expectation::OrderAtLeast { hi, lo, slack } => {
            let tol = slack * widen;
            let rendered = format!("{hi} >= {lo}");
            let hi_mean = report.series_mean(&hi.series, &hi.predictor, &hi.interval);
            let lo_mean = report.series_mean(&lo.series, &lo.predictor, &lo.interval);
            match (hi_mean, lo_mean) {
                (Some(h), Some(l)) => CheckRow {
                    check,
                    expected: rendered,
                    actual: format!("{} vs {}", pct(h), pct(l)),
                    delta: h - l,
                    tolerance: tol,
                    status: if h - l >= -tol {
                        CheckStatus::Pass
                    } else {
                        CheckStatus::Fail
                    },
                },
                _ => missing(rendered, tol),
            }
        }
        Expectation::Verdict {
            attack,
            series,
            predictor,
            mode,
            allowed,
        } => {
            let rendered = allowed.join(" | ");
            match attack_cell_outcome(report, series, predictor, mode, attack) {
                None => missing(rendered, 0.0),
                Some(outcome) => {
                    let label = outcome.verdict().label();
                    let pass = allowed.iter().any(|a| a == label);
                    CheckRow {
                        check,
                        expected: rendered,
                        actual: format!("{label} ({})", pct(outcome.success_rate)),
                        delta: if pass { 0.0 } else { 1.0 },
                        tolerance: 0.0,
                        status: if pass {
                            CheckStatus::Pass
                        } else {
                            CheckStatus::Fail
                        },
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{CellSummary, PredictionStats, RunRecord, SeriesSummary};

    fn report_with(series: &[(&str, f64)]) -> SweepReport {
        SweepReport {
            name: "test".to_string(),
            mode: "single-core".to_string(),
            core: "fpga".to_string(),
            case_ids: vec!["case1".to_string()],
            records: Vec::new(),
            cells: Vec::new(),
            series: series
                .iter()
                .map(|(label, mean)| SeriesSummary {
                    label: label.to_string(),
                    series: label.to_string(),
                    predictor: "Gshare".to_string(),
                    interval: "8M".to_string(),
                    mean: *mean,
                })
                .collect(),
            hw: Vec::new(),
        }
    }

    fn attack_report(rate: f64, chance: f64) -> SweepReport {
        let record = RunRecord {
            series: "CF".to_string(),
            predictor: "Gshare".to_string(),
            interval: "smt".to_string(),
            case_id: "SpectreV2".to_string(),
            seed_index: 0,
            seed: 1,
            cycles: 0.0,
            overhead: None,
            stderr: None,
            stats: PredictionStats::default(),
            per_thread: Vec::new(),
            attack: Some(sbp_types::AttackRecord {
                attack: "SpectreV2".to_string(),
                success_rate: rate,
                chance,
                trials: 1000,
                verdict: String::new(),
            }),
        };
        SweepReport {
            name: "attack".to_string(),
            mode: "attack".to_string(),
            core: "fpga".to_string(),
            case_ids: vec!["SpectreV2".to_string()],
            records: vec![record],
            cells: vec![CellSummary {
                label: "CF-smt".to_string(),
                series: "CF".to_string(),
                predictor: "Gshare".to_string(),
                interval: "smt".to_string(),
                case_id: "SpectreV2".to_string(),
                mean: rate,
                stddev: 0.0,
                stderr: 0.0,
                n: 1,
            }],
            series: Vec::new(),
            hw: Vec::new(),
        }
    }

    #[test]
    fn widening_grows_below_scale_one_only() {
        assert_eq!(widen_factor(1.0), 1.0);
        assert_eq!(widen_factor(4.0), 1.0);
        assert!((widen_factor(0.25) - 2.0).abs() < 1e-12);
        assert!((widen_factor(0.01) - 10.0).abs() < 1e-12);
        assert_eq!(widen_factor(0.0), 1.0, "degenerate scale never widens");
    }

    #[test]
    fn mean_within_passes_inside_the_widened_tolerance() {
        let report = report_with(&[("CF", 0.012)]);
        let exp = [Expectation::mean_within("CF", "Gshare", "8M", 0.010, 0.001)];
        let strict = check_report_at(&report, &exp, "e", 1.0);
        assert_eq!(strict.rows[0].status, CheckStatus::Fail);
        assert!((strict.rows[0].delta - 0.002).abs() < 1e-12);
        // At scale 0.01 the tolerance widens 10x and the check passes.
        let widened = check_report_at(&report, &exp, "e", 0.01);
        assert_eq!(widened.rows[0].status, CheckStatus::Pass);
        assert!(!strict.passed() && widened.passed());
    }

    #[test]
    fn one_sided_bounds_ignore_widening() {
        let report = report_with(&[("CF", 0.08)]);
        let exps = [
            Expectation::at_most("CF", "Gshare", "8M", 0.05),
            Expectation::at_least("CF", "Gshare", "8M", 0.05),
        ];
        for scale in [1.0, 0.01] {
            let t = check_report_at(&report, &exps, "e", scale);
            assert_eq!(t.rows[0].status, CheckStatus::Fail, "scale {scale}");
            assert_eq!(t.rows[1].status, CheckStatus::Pass, "scale {scale}");
        }
    }

    #[test]
    fn order_allows_ties_and_slack_inversions() {
        let report = report_with(&[("CF", 0.005), ("PF", 0.005), ("XOR-BP", 0.04)]);
        let tie = [Expectation::order("Gshare", "CF", "8M", "PF", "8M")];
        assert!(check_report_at(&report, &tie, "e", 1.0).passed());
        let inverted = [Expectation::order("Gshare", "CF", "8M", "XOR-BP", "8M")];
        assert!(!check_report_at(&report, &inverted, "e", 1.0).passed());
        let holds = [Expectation::order("Gshare", "XOR-BP", "8M", "CF", "8M")];
        assert!(check_report_at(&report, &holds, "e", 1.0).passed());
    }

    #[test]
    fn verdict_checks_classify_the_aggregated_cell() {
        let broken = attack_report(0.97, 0.005);
        let exp = [Expectation::verdict(
            "SpectreV2",
            "CF",
            "Gshare",
            "smt",
            "No Protection",
        )];
        assert!(check_report_at(&broken, &exp, "e", 1.0).passed());
        let defended = attack_report(0.006, 0.005);
        let t = check_report_at(&defended, &exp, "e", 1.0);
        assert!(!t.passed());
        assert_eq!(t.rows[0].delta, 1.0);
        let either = [Expectation::verdict_in(
            "SpectreV2",
            "CF",
            "Gshare",
            "smt",
            &["Defend", "Mitigate"],
        )];
        assert!(check_report_at(&defended, &either, "e", 1.0).passed());
    }

    #[test]
    fn missing_cells_fail_the_table() {
        let report = report_with(&[("CF", 0.01)]);
        let exps = [
            Expectation::mean_within("PF", "Gshare", "8M", 0.0, 0.1),
            Expectation::verdict("SpectreV2", "CF", "Gshare", "smt", "Defend"),
            Expectation::order("Gshare", "CF", "8M", "PF", "8M"),
        ];
        let t = check_report_at(&report, &exps, "e", 1.0);
        assert!(!t.passed());
        assert_eq!(t.counts(), (0, 0, 3));
        assert!(t.rows.iter().all(|r| r.actual == "missing"));
        assert!(t.summary().contains("FAIL"));
    }

    #[test]
    fn table_emitter_is_aligned_and_summarized() {
        let report = report_with(&[("CF", 0.012)]);
        let exps = [
            Expectation::mean_within("CF", "Gshare", "8M", 0.012, 0.01),
            Expectation::at_most("CF", "Gshare", "8M", 0.5),
        ];
        let t = check_report_at(&report, &exps, "entry01", 1.0);
        let out = t.to_table();
        assert!(out.starts_with("status"), "{out}");
        assert!(out.contains("mean CF/Gshare/8M"));
        assert!(out.contains("verdict[entry01]: PASS — 2 pass, 0 fail, 0 missing"));
        assert!(!out.lines().any(|l| l.ends_with(' ')), "no trailing spaces");
    }

    #[test]
    fn jsonl_roundtrips_exactly() {
        let report = report_with(&[("CF", 0.0123456789012345), ("PF", -0.002)]);
        let exps = [
            Expectation::mean_within("CF", "Gshare", "8M", 0.01, 0.001),
            Expectation::order("Gshare", "PF", "8M", "CF", "8M"),
            Expectation::verdict("SpectreV2", "CF", "Gshare", "smt", "Defend"),
        ];
        let t = check_report_at(&report, &exps, "weird \"name\"\n", 0.02);
        let text = t.to_jsonl();
        let back = VerdictTable::from_jsonl(&text).expect("parse");
        assert_eq!(back, t);
        assert_eq!(back.to_jsonl(), text, "emit is a fixpoint");
    }

    #[test]
    fn jsonl_rejects_malformed_documents() {
        assert!(VerdictTable::from_jsonl("").is_err(), "no header");
        assert!(VerdictTable::from_jsonl("{\"kind\":\"verdict_row\"}").is_err());
        let t = check_report_at(&report_with(&[]), &[], "e", 1.0);
        let double = format!("{}{}", t.to_jsonl(), t.to_jsonl());
        assert!(VerdictTable::from_jsonl(&double).is_err(), "two headers");
        assert!(VerdictTable::from_jsonl("not json").is_err());
        assert!(VerdictTable::from_jsonl("{\"kind\":\"warp\"}").is_err());
    }

    #[test]
    fn csv_emits_one_row_per_expectation() {
        let report = report_with(&[("CF", 0.012)]);
        let exps = [Expectation::at_most("CF", "Gshare", "8M", 0.5)];
        let csv = check_report_at(&report, &exps, "e,1", 1.0).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("entry,check,expected"));
        assert!(lines[1].starts_with("\"e,1\",max CF/Gshare/8M"));
    }
}
