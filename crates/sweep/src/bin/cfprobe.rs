//! Quick probe: CF / Noisy-XOR-BP overhead on two SMT pairs across the
//! 8 M and off intervals (a fig10 subset), printed as the engine's table —
//! also the CI smoke test for the sweep pipeline and its store layer.
//!
//! ```console
//! $ SBP_SCALE=0.02 cargo run -p sbp-sweep --bin cfprobe --release
//! $ cfprobe --store probe.jsonl             # resumable: re-runs skip stored cells
//! $ cfprobe --store shard1.jsonl --shard 1/2   # one process of a 2-way fan-out
//! $ cfprobe --merge merged.jsonl shard1.jsonl shard2.jsonl
//! $ cfprobe --store probe.jsonl --gc        # drop cells this spec no longer plans
//! ```
//!
//! Status (`executed/skipped/pending` counts) goes to stderr; the report
//! table goes to stdout, so a merged run's stdout is byte-comparable with
//! an unsharded run's.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::SwitchInterval;
use sbp_sweep::{gc_store, merge_stores, CaseSpec, RunOptions, SweepSpec};

fn spec() -> SweepSpec {
    SweepSpec::smt("cfprobe")
        .with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_intervals(vec![SwitchInterval::M8, SwitchInterval::Off])
        .with_cases(vec![
            CaseSpec::pair("zeusmp+lbm", "zeusmp", "lbm"),
            CaseSpec::pair("gobmk+h264", "gobmk", "h264ref"),
        ])
        .with_master_seed(42)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("cfprobe: {e}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.first().is_some_and(|a| a == "--merge") {
        let out = args
            .get(1)
            .ok_or("--merge needs an output store path and at least one input store")?;
        let inputs: Vec<std::path::PathBuf> = args[2..].iter().map(Into::into).collect();
        if inputs.is_empty() {
            return Err("--merge needs at least one input store".into());
        }
        let report = merge_stores(&spec(), &inputs, Some(std::path::Path::new(out)))?;
        eprintln!("cfprobe: merged {} stores into {out}", inputs.len());
        print!("{}", report.to_table());
        return Ok(());
    }
    let (opts, rest) = RunOptions::from_args(args)?;
    let gc = rest.iter().any(|a| a == "--gc");
    let rest: Vec<&String> = rest.iter().filter(|a| *a != "--gc").collect();
    if !rest.is_empty() {
        return Err(format!("unknown arguments: {rest:?}").into());
    }
    if gc && opts.store.is_none() {
        // Validate before the sweep runs — failing afterwards would
        // throw away the whole (un-persisted) run.
        return Err("--gc needs --store".into());
    }
    let outcome = spec().run_with(&opts)?;
    eprintln!(
        "cfprobe: executed {} skipped {} pending {}",
        outcome.executed, outcome.skipped, outcome.pending
    );
    match outcome.report {
        Some(report) => print!("{}", report.to_table()),
        None => eprintln!("cfprobe: shard incomplete; merge the shard stores for the report"),
    }
    if gc {
        let store = opts.store.as_ref().expect("validated above");
        let dropped = gc_store(store, &[spec()])?;
        eprintln!("cfprobe: gc dropped {dropped} stale cell(s)");
    }
    Ok(())
}
