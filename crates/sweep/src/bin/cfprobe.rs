//! Quick probe: CF / Noisy-XOR-BP overhead on two SMT pairs across the
//! 8 M and off intervals (a fig10 subset), printed as the engine's table —
//! also the CI smoke test for the sweep pipeline.
//!
//! Run with `SBP_SCALE=0.02 cargo run -p sbp-sweep --bin cfprobe --release`
//! for a fast pass.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::SwitchInterval;
use sbp_sweep::{CaseSpec, SweepSpec};

fn main() {
    let report = SweepSpec::smt("cfprobe")
        .with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL])
        .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
        .with_intervals(vec![SwitchInterval::M8, SwitchInterval::Off])
        .with_cases(vec![
            CaseSpec::pair("zeusmp+lbm", "zeusmp", "lbm"),
            CaseSpec::pair("gobmk+h264", "gobmk", "h264ref"),
        ])
        .with_master_seed(42)
        .run()
        .expect("sweep");
    print!("{}", report.to_table());
}
