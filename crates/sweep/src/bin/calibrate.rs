//! Calibration report: per-benchmark baseline prediction accuracy, BTB hit
//! rate and per-predictor MPKI, compared against the anchors the paper
//! reports (Gshare 8.45 / Tournament 5.17 / LTAGE 4.10 / TAGE-SC-L 3.99
//! MPKI on SMT-2; gcc PHT 90.1%, gobmk BTB 85.2%, libquantum BTB 99.3%).
//!
//! Both halves are baseline-only characterization sweeps: a spec with an
//! empty mechanism list plans exactly one baseline job per grid point.
//!
//! Run with `cargo run -p sbp-sweep --bin calibrate --release`; pass
//! `--store PATH` to persist/resume the (slow) characterization cells and
//! `--shard K/N` to split them across processes — both sweeps share one
//! store, their cells are distinguished by fingerprint. `--gc` compacts
//! the store afterwards, dropping cells neither sweep still plans (stale
//! budgets, removed cases, old scales).

use sbp_predictors::PredictorKind;
use sbp_sim::{SwitchInterval, WorkBudget};
use sbp_sweep::{CaseSpec, RunOptions, SweepSpec};
use sbp_trace::{cases_single, cases_smt2};
use sbp_types::report::mean;
use sbp_types::SweepReport;

/// Runs one spec through the store-backed path, reporting what happened.
fn run(spec: &SweepSpec, opts: &RunOptions) -> Option<SweepReport> {
    let outcome = match spec.run_with(opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("calibrate: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "calibrate[{}]: executed {} skipped {} pending {}",
        spec.name, outcome.executed, outcome.skipped, outcome.pending
    );
    if outcome.report.is_none() {
        eprintln!(
            "calibrate[{}]: shard incomplete; run the remaining shards against this store",
            spec.name
        );
    }
    outcome.report
}

/// The per-benchmark single-core characterization sweep.
fn single_spec() -> SweepSpec {
    let mut seen = std::collections::BTreeSet::new();
    let cases: Vec<CaseSpec> = cases_single()
        .iter()
        .flat_map(|c| [c.target, c.background])
        .filter(|name| seen.insert(*name))
        .map(|name| CaseSpec::new(name, &[name, "namd"]))
        .collect();
    SweepSpec::single("calibrate: per-benchmark baseline")
        .with_cases(cases)
        .with_intervals(vec![SwitchInterval::M8])
        .with_budget(WorkBudget {
            warmup: 50_000,
            measure: 400_000,
        })
        .with_master_seed(7)
}

/// The SMT-2 MPKI-per-predictor characterization sweep.
fn smt_spec() -> SweepSpec {
    SweepSpec::smt("calibrate: SMT-2 MPKI")
        .with_predictors(PredictorKind::ALL.to_vec())
        .with_cases(sbp_sweep::cases_from(&cases_smt2()[..4]))
        .with_budget(WorkBudget {
            warmup: 100_000,
            measure: 600_000,
        })
        .with_master_seed(11)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, gc) = match RunOptions::from_args(&args) {
        Ok((opts, rest)) => {
            let gc = rest.iter().any(|a| a == "--gc");
            let rest: Vec<&String> = rest.iter().filter(|a| *a != "--gc").collect();
            if !rest.is_empty() {
                eprintln!("calibrate: unknown arguments: {rest:?}");
                std::process::exit(2);
            }
            if gc && opts.store.is_none() {
                // Validate before the slow sweeps run — failing
                // afterwards would throw away the un-persisted work.
                eprintln!("calibrate: --gc needs --store");
                std::process::exit(2);
            }
            (opts, gc)
        }
        Err(e) => {
            eprintln!("calibrate: {e}");
            std::process::exit(2);
        }
    };
    println!("== per-benchmark baseline (single-core, Gshare) ==");
    let single = single_spec();
    if let Some(report) = run(&single, &opts) {
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>10}",
            "benchmark", "condAcc", "btbHit", "MPKI", "IPC"
        );
        for rec in report.records_for("Baseline") {
            let s = &rec.stats;
            println!(
                "{:<16} {:>7.1}% {:>7.1}% {:>8.2} {:>10.2}",
                rec.case_id,
                100.0 * s.cond_accuracy(),
                100.0 * s.btb_hit_rate(),
                s.mpki(),
                s.ipc()
            );
        }
    }

    println!("\n== SMT-2 baseline MPKI per predictor (paper: 8.45 / 5.17 / 4.10 / 3.99) ==");
    let smt = smt_spec();
    if let Some(report) = run(&smt, &opts) {
        for kind in PredictorKind::ALL {
            let mpkis: Vec<f64> = report
                .records_for("Baseline")
                .filter(|r| r.predictor == kind.label())
                .map(|r| r.stats.mpki())
                .collect();
            println!("{:<12} avg MPKI {:>6.2}", kind.label(), mean(&mpkis));
        }
    }

    if gc {
        let store = opts.store.as_ref().expect("validated at argument parse");
        // The shared store is live iff a cell belongs to either sweep.
        match sbp_sweep::gc_store(store, &[single, smt]) {
            Ok(dropped) => eprintln!("calibrate: gc dropped {dropped} stale cell(s)"),
            Err(e) => {
                eprintln!("calibrate: {e}");
                std::process::exit(2);
            }
        }
    }
}
