//! The persistent sweep store: completed job results as JSON-lines on
//! disk, keyed by a stable cell fingerprint.
//!
//! Each line holds one executed job's raw outcome together with the
//! fingerprint of the cell that produced it. A fingerprint hashes the
//! job's *identity* — the full payload (mechanism/predictor/workloads/
//! budget or attack/trials), the derived seed, and for simulation jobs
//! the `SBP_SCALE` work multiplier (attack jobs never read the scale) —
//! so a re-run of the same spec recognizes its completed cells and
//! skips them (resume), shard runs of one spec write compatible stores,
//! and a changed axis value, seed or scale never aliases a stale
//! result.
//!
//! Results are appended and flushed as each job finishes, so a killed run
//! loses at most the jobs in flight. Lines are parsed back with a small
//! self-contained JSON reader (the workspace builds offline; no external
//! JSON dependency exists), and unknown lines are rejected rather than
//! ignored — a corrupt store should fail loudly, not resume quietly.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use sbp_types::report::stats_json;
use sbp_types::{PredictionStats, SbpError};

use crate::exec::{RawResult, RawRun};
use crate::plan::{Job, SweepPlan};
use crate::spec::SweepSpec;

/// FNV-1a 64-bit hash (stable across platforms and processes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of one planned job: a hash of the job payload, its
/// derived seed and the process's `SBP_SCALE` multiplier.
///
/// The canonical identity string spells out every input that changes the
/// cell's result; anything display-only (the spec name, case ids) is
/// deliberately excluded so renames don't invalidate a store.
pub fn job_fingerprint(spec: &SweepSpec, plan: &SweepPlan, job: &Job) -> u64 {
    let identity = match job {
        Job::Sim { group, mechanism } => {
            let g = &plan.groups[*group];
            let case = &spec.cases[g.case_index];
            // The full core config, not just its name: every timing
            // parameter and the BTB geometry change the cell's result,
            // and `with_core` accepts arbitrary field overrides.
            format!(
                "sim|core={:?}|mode={}|predictor={}|interval={}|workloads={}|\
                 budget={}/{}|mechanism={mechanism:?}|seed={}|scale={}",
                spec.core,
                spec.mode.label(),
                g.predictor.label(),
                g.interval.label(),
                case.workloads.join("+"),
                spec.budget.warmup,
                spec.budget.measure,
                g.seed,
                sbp_sim::scale(),
            )
        }
        // No scale term: attack campaigns never read SBP_SCALE — their
        // work is fully described by the explicit trial count — and
        // including it would invalidate stores across scale changes for
        // results that are bit-identical.
        Job::Attack(a) => format!(
            "attack|attack={}|mechanism={:?}|predictor={}|smt={}|trials={}|seed={}",
            a.attack.label(),
            a.mechanism,
            a.predictor.label(),
            a.smt,
            a.trials,
            a.seed,
        ),
    };
    fnv1a64(identity.as_bytes())
}

/// Fingerprints of every job in plan order.
pub fn plan_fingerprints(spec: &SweepSpec, plan: &SweepPlan) -> Vec<u64> {
    plan.jobs
        .iter()
        .map(|j| job_fingerprint(spec, plan, j))
        .collect()
}

/// A JSONL-backed store of completed job results, keyed by fingerprint.
#[derive(Debug)]
pub struct SweepStore {
    path: PathBuf,
    map: HashMap<u64, RawResult>,
}

impl SweepStore {
    /// Opens (and loads) the store at `path`; a missing file is an empty
    /// store, created on the first append.
    ///
    /// # Errors
    ///
    /// Returns a store error when the file exists but cannot be read or a
    /// line cannot be parsed.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SbpError> {
        let path = path.into();
        let mut map = HashMap::new();
        match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(SbpError::store(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
            Ok(text) => {
                for (n, line) in text.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (fp, result) = parse_line(line).map_err(|e| {
                        SbpError::store(format!("{} line {}: {e}", path.display(), n + 1))
                    })?;
                    map.insert(fp, result);
                }
            }
        }
        Ok(SweepStore { path, map })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The stored result for a fingerprint, if any.
    pub fn get(&self, fp: u64) -> Option<&RawResult> {
        self.map.get(&fp)
    }

    /// Inserts one result and appends its line to the backing file,
    /// flushed before returning — a killed run keeps everything appended
    /// so far.
    ///
    /// # Errors
    ///
    /// Returns a store error when the file cannot be written.
    pub fn append(&mut self, fp: u64, result: &RawResult) -> Result<(), SbpError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| SbpError::store(format!("cannot open {}: {e}", self.path.display())))?;
        file.write_all(line_of(fp, result).as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| SbpError::store(format!("cannot write {}: {e}", self.path.display())))?;
        self.map.insert(fp, result.clone());
        Ok(())
    }

    /// Consumes the store, returning the fingerprint → result map.
    pub fn into_map(self) -> HashMap<u64, RawResult> {
        self.map
    }

    /// Writes a store file holding `entries` in the given (canonical)
    /// order, replacing any existing file — the merge entry point uses
    /// plan order so merged stores are deterministic.
    ///
    /// # Errors
    ///
    /// Returns a store error when the file cannot be written.
    pub fn write_canonical(
        path: &Path,
        entries: impl IntoIterator<Item = (u64, RawResult)>,
    ) -> Result<(), SbpError> {
        let mut text = String::new();
        for (fp, result) in entries {
            text.push_str(&line_of(fp, &result));
        }
        std::fs::write(path, text)
            .map_err(|e| SbpError::store(format!("cannot write {}: {e}", path.display())))
    }
}

/// Serializes one (fingerprint, result) pair as a store JSONL line.
fn line_of(fp: u64, result: &RawResult) -> String {
    match result {
        RawResult::Sim(run) => {
            let per_thread: Vec<String> = run.per_thread.iter().map(stats_json).collect();
            format!(
                "{{\"fp\":\"{fp:016x}\",\"kind\":\"sim\",\"cycles\":{},\"stats\":{},\
                 \"per_thread\":[{}]}}\n",
                fmt_f64(run.cycles),
                stats_json(&run.stats),
                per_thread.join(","),
            )
        }
        RawResult::Attack(out) => format!(
            "{{\"fp\":\"{fp:016x}\",\"kind\":\"attack\",\"success_rate\":{},\
             \"chance\":{},\"trials\":{}}}\n",
            fmt_f64(out.success_rate),
            fmt_f64(out.chance),
            out.trials,
        ),
    }
}

/// Shortest-roundtrip float formatting (Rust's `{}` for `f64` guarantees
/// exact value recovery on parse — the property merged-store reports rely
/// on to be byte-identical with unsharded runs).
fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

fn parse_line(line: &str) -> Result<(u64, RawResult), String> {
    let value = json::parse(line)?;
    let obj = value.as_object().ok_or("line is not a JSON object")?;
    let fp_hex = json::get_str(obj, "fp")?;
    let fp = u64::from_str_radix(fp_hex, 16).map_err(|e| format!("bad fingerprint: {e}"))?;
    let result = match json::get_str(obj, "kind")? {
        "sim" => {
            let stats = stats_from(json::get(obj, "stats")?)?;
            let per_thread = json::get(obj, "per_thread")?
                .as_array()
                .ok_or("per_thread is not an array")?
                .iter()
                .map(stats_from)
                .collect::<Result<Vec<_>, _>>()?;
            RawResult::Sim(RawRun {
                cycles: json::get_f64(obj, "cycles")?,
                stats,
                per_thread,
            })
        }
        "attack" => RawResult::Attack(sbp_attack::AttackOutcome {
            success_rate: json::get_f64(obj, "success_rate")?,
            chance: json::get_f64(obj, "chance")?,
            trials: json::get_u64(obj, "trials")?,
        }),
        other => return Err(format!("unknown result kind {other:?}")),
    };
    Ok((fp, result))
}

fn stats_from(value: &json::Value) -> Result<PredictionStats, String> {
    let obj = value.as_object().ok_or("stats is not a JSON object")?;
    Ok(PredictionStats {
        instructions: json::get_u64(obj, "instructions")?,
        cond_branches: json::get_u64(obj, "cond_branches")?,
        cond_mispredicts: json::get_u64(obj, "cond_mispredicts")?,
        btb_lookups: json::get_u64(obj, "btb_lookups")?,
        btb_misses: json::get_u64(obj, "btb_misses")?,
        btb_wrong_target: json::get_u64(obj, "btb_wrong_target")?,
        indirect_branches: json::get_u64(obj, "indirect_branches")?,
        indirect_mispredicts: json::get_u64(obj, "indirect_mispredicts")?,
        returns: json::get_u64(obj, "returns")?,
        ras_mispredicts: json::get_u64(obj, "ras_mispredicts")?,
        context_switches: json::get_u64(obj, "context_switches")?,
        privilege_switches: json::get_u64(obj, "privilege_switches")?,
        cycles: json::get_u64(obj, "cycles")?,
    })
}

/// A minimal recursive-descent JSON reader for the store's own lines.
///
/// Numbers keep their raw token so integers round-trip at full `u64`
/// precision and floats parse with Rust's exact shortest-roundtrip
/// grammar.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, kept as its raw token.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The key/value pairs of an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The elements of an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Looks up a required object field.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// A required string field.
    pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
        match get(obj, key)? {
            Value::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    /// A required `u64` field.
    pub fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
        match get(obj, key)? {
            Value::Num(raw) => raw
                .parse::<u64>()
                .map_err(|e| format!("field {key:?}: {e}")),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    /// A required `f64` field.
    pub fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
        match get(obj, key)? {
            Value::Num(raw) => raw
                .parse::<f64>()
                .map_err(|e| format!("field {key:?}: {e}")),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(format!("expected {lit:?} at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => return Err(format!("unexpected {other:?} in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("unexpected {other:?} in array")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // byte boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("empty string tail")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let raw =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            // Validate the token parses as a float (covers integers too).
            raw.parse::<f64>()
                .map_err(|e| format!("bad number {raw:?}: {e}"))?;
            Ok(Value::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_attack::AttackOutcome;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sbp_store_test_{}_{name}.jsonl",
            std::process::id()
        ))
    }

    fn sample_sim() -> RawResult {
        let stats = PredictionStats {
            instructions: 123_456,
            cond_mispredicts: 789,
            cycles: 654_321,
            ..Default::default()
        };
        let mut t1 = stats;
        t1.instructions = 23_456;
        RawResult::Sim(RawRun {
            // A value exercising the shortest-roundtrip formatter.
            cycles: 123_456.789_012_345_6,
            stats,
            per_thread: vec![stats, t1],
        })
    }

    fn sample_attack() -> RawResult {
        RawResult::Attack(AttackOutcome {
            success_rate: 0.9653333333333334,
            chance: 0.005,
            trials: 1500,
        })
    }

    #[test]
    fn roundtrips_sim_and_attack_results_exactly() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        assert!(store.is_empty());
        store
            .append(0x0123_4567_89ab_cdef, &sample_sim())
            .expect("append");
        store
            .append(0xffff_0000_ffff_0000, &sample_attack())
            .expect("append");
        let reloaded = SweepStore::open(&path).expect("reload");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(0x0123_4567_89ab_cdef), Some(&sample_sim()));
        assert_eq!(reloaded.get(0xffff_0000_ffff_0000), Some(&sample_attack()));
        assert_eq!(reloaded.get(1), None);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn canonical_write_is_deterministic_and_reloadable() {
        let (a, b) = (tmp("canon_a"), tmp("canon_b"));
        let entries = vec![(7u64, sample_attack()), (9u64, sample_sim())];
        SweepStore::write_canonical(&a, entries.clone()).expect("write a");
        SweepStore::write_canonical(&b, entries).expect("write b");
        assert_eq!(
            std::fs::read(&a).expect("read a"),
            std::fs::read(&b).expect("read b")
        );
        let reloaded = SweepStore::open(&a).expect("reload");
        assert_eq!(reloaded.get(9), Some(&sample_sim()));
        std::fs::remove_file(&a).expect("cleanup");
        std::fs::remove_file(&b).expect("cleanup");
    }

    #[test]
    fn corrupt_lines_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"fp\":\"zz\"}\n").expect("write");
        assert!(matches!(
            SweepStore::open(&path),
            Err(SbpError::Store(msg)) if msg.contains("line 1")
        ));
        std::fs::write(&path, "{\"fp\":\"10\",\"kind\":\"warp\"}\n").expect("write");
        assert!(SweepStore::open(&path).is_err());
        std::fs::write(&path, "not json\n").expect("write");
        assert!(SweepStore::open(&path).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn fingerprints_separate_payload_seed_and_identity() {
        use sbp_core::Mechanism;
        let spec = SweepSpec::single("fp")
            .with_cases(vec![crate::spec::CaseSpec::pair("c1", "gcc", "calculix")])
            .with_intervals(vec![sbp_sim::SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()]);
        let plan = crate::plan::plan(&spec);
        let fps = plan_fingerprints(&spec, &plan);
        let distinct: std::collections::BTreeSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "per-job fingerprints distinct");
        // A different master seed re-fingerprints every cell.
        let reseeded = spec.clone().with_master_seed(99);
        let fps2 = plan_fingerprints(&reseeded, &crate::plan::plan(&reseeded));
        assert!(fps.iter().zip(&fps2).all(|(a, b)| a != b));
        // The fingerprint ignores display-only strings: renaming the spec
        // or a case id keeps the store valid.
        let mut renamed = spec.clone();
        renamed.name = "renamed".to_string();
        renamed.cases[0].id = "other-id".to_string();
        assert_eq!(
            fps,
            plan_fingerprints(&renamed, &crate::plan::plan(&renamed))
        );
    }

    #[test]
    fn attack_fingerprints_are_stable_under_axis_edits() {
        use sbp_attack::AttackKind;
        use sbp_core::Mechanism;
        let full = SweepSpec::attack("fp")
            .with_attacks(vec![AttackKind::SpectreV2, AttackKind::Sbpa])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()]);
        let narrowed = full
            .clone()
            .with_attacks(vec![AttackKind::Sbpa])
            .with_mechanisms(vec![Mechanism::noisy_xor_bp()]);
        let full_plan = crate::plan::plan(&full);
        let full_fps: std::collections::BTreeSet<u64> =
            plan_fingerprints(&full, &full_plan).into_iter().collect();
        let narrow_plan = crate::plan::plan(&narrowed);
        for fp in plan_fingerprints(&narrowed, &narrow_plan) {
            assert!(full_fps.contains(&fp), "narrowed grid reuses stored cells");
        }
    }

    #[test]
    fn json_parser_handles_the_store_grammar() {
        let v = json::parse(r#"{"a":[1,2.5,-3e2],"s":"x\"\nA","b":true,"n":null}"#).expect("parse");
        let obj = v.as_object().expect("object");
        let arr = json::get(obj, "a").unwrap().as_array().expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(json::get_str(obj, "s").unwrap(), "x\"\nA");
        assert!(json::parse("{\"a\":1} trailing").is_err());
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("").is_err());
        assert_eq!(
            json::get_u64(
                json::parse(r#"{"x":18446744073709551615}"#)
                    .unwrap()
                    .as_object()
                    .unwrap(),
                "x"
            )
            .unwrap(),
            u64::MAX,
            "u64 integers round-trip at full precision"
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
