//! The persistent sweep store: completed job results as JSON-lines on
//! disk, keyed by a stable cell fingerprint.
//!
//! Each line holds one executed job's raw outcome together with the
//! fingerprint of the cell that produced it. A fingerprint hashes the
//! job's *identity* — the full payload (mechanism/predictor/workloads/
//! budget or attack/trials), the derived seed, and for simulation jobs
//! the `SBP_SCALE` work multiplier (attack jobs never read the scale) —
//! so a re-run of the same spec recognizes its completed cells and
//! skips them (resume), shard runs of one spec write compatible stores,
//! and a changed axis value, seed or scale never aliases a stale
//! result.
//!
//! Results are appended and flushed as each job finishes, so a killed run
//! loses at most the jobs in flight. Lines are parsed back with the
//! self-contained [`crate::json`] reader (the workspace builds offline; no
//! external JSON dependency exists), and unknown lines are rejected rather
//! than ignored — a corrupt store should fail loudly, not resume quietly.
//! The one recoverable wound is a final line without its newline (a
//! crash mid-append): its record is kept if it parses and dropped with a
//! warning otherwise, and the file is healed by a rewrite either way.
//! Stores only grow; [`SweepStore::compact`] is the garbage collector,
//! dropping lines whose fingerprint no known spec produces any more.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};

use sbp_types::report::stats_json;
use sbp_types::{PredictionStats, SbpError};

use crate::exec::{RawResult, RawRun};
use crate::json;
use crate::plan::{Job, SweepPlan};
use crate::spec::SweepSpec;

/// FNV-1a 64-bit hash (stable across platforms and processes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of one planned job: a hash of the job payload, its
/// derived seed and the process's `SBP_SCALE` multiplier.
///
/// The canonical identity string spells out every input that changes the
/// cell's result; anything display-only (the spec name, case ids) is
/// deliberately excluded so renames don't invalidate a store.
pub fn job_fingerprint(spec: &SweepSpec, plan: &SweepPlan, job: &Job) -> u64 {
    let identity = match job {
        Job::Sim { group, mechanism } => {
            let g = &plan.groups[*group];
            let case = &spec.cases[g.case_index];
            // The full core config, not just its name: every timing
            // parameter and the BTB geometry change the cell's result,
            // and `with_core` accepts arbitrary field overrides.
            //
            // The sampling term keeps sampled and exact cells apart: an
            // exact run contributes no term at all (so existing exact
            // stores stay valid), while every distinct window layout
            // fingerprints separately — a sampled estimate must never
            // resume as, or be resumed by, an exact measurement.
            let sampling = match &spec.sampling {
                None => String::new(),
                Some(plan) => format!("|sampling={}", plan.fingerprint()),
            };
            format!(
                "sim|core={:?}|mode={}|predictor={}|interval={}|workloads={}|\
                 budget={}/{}|mechanism={mechanism:?}|seed={}|scale={}{sampling}",
                spec.core,
                spec.mode.label(),
                g.predictor.label(),
                g.interval.label(),
                case.workloads.join("+"),
                spec.budget.warmup,
                spec.budget.measure,
                g.seed,
                sbp_sim::scale(),
            )
        }
        // No scale term: attack campaigns never read SBP_SCALE — their
        // work is fully described by the explicit trial count — and
        // including it would invalidate stores across scale changes for
        // results that are bit-identical.
        Job::Attack(a) => format!(
            "attack|attack={}|mechanism={:?}|predictor={}|smt={}|trials={}|seed={}",
            a.attack.label(),
            a.mechanism,
            a.predictor.label(),
            a.smt,
            a.trials,
            a.seed,
        ),
    };
    fnv1a64(identity.as_bytes())
}

/// Fingerprints of every job in plan order.
pub fn plan_fingerprints(spec: &SweepSpec, plan: &SweepPlan) -> Vec<u64> {
    plan.jobs
        .iter()
        .map(|j| job_fingerprint(spec, plan, j))
        .collect()
}

/// A JSONL-backed store of completed job results, keyed by fingerprint.
#[derive(Debug)]
pub struct SweepStore {
    path: PathBuf,
    map: HashMap<u64, RawResult>,
    /// Fingerprints in first-sighting file order, so a rewrite (compaction)
    /// preserves the backing file's line order byte-for-byte.
    order: Vec<u64>,
}

impl SweepStore {
    /// Opens (and loads) the store at `path`; a missing file is an empty
    /// store, created on the first append.
    ///
    /// A final line lacking its trailing newline is the expected wreckage
    /// of a run killed mid-append. If it parses, its record is kept; if
    /// not, it is skipped with a warning (the in-flight job re-executes on
    /// resume). Either way the file is healed by a canonical rewrite, so
    /// the next append starts on a clean line boundary instead of gluing
    /// onto the tail. Every *interior* malformed line fails loudly, as
    /// does a duplicated fingerprint whose payload disagrees with the
    /// first sighting (byte-identical duplicates are collapsed silently;
    /// shard merges legitimately produce them).
    ///
    /// # Errors
    ///
    /// Returns a store error when the file exists but cannot be read, an
    /// interior line cannot be parsed, or a duplicate fingerprint carries
    /// a conflicting result.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SbpError> {
        let path = path.into();
        let mut map: HashMap<u64, RawResult> = HashMap::new();
        let mut order = Vec::new();
        let mut heal = false;
        match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(SbpError::store(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                // Any non-empty file without a final newline was cut off
                // mid-append and needs a rewrite, even when the tail
                // happens to parse (an append would glue onto it).
                heal = !text.is_empty() && !text.ends_with('\n');
                for (n, line) in lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (fp, result) = match parse_line(line) {
                        Ok(parsed) => parsed,
                        Err(e) if n + 1 == lines.len() && heal => {
                            eprintln!(
                                "warning: {} line {}: {e} — dropping truncated final \
                                 line (crash mid-append); the cell will re-execute",
                                path.display(),
                                n + 1,
                            );
                            break;
                        }
                        Err(e) => {
                            return Err(SbpError::store(format!(
                                "{} line {}: {e}",
                                path.display(),
                                n + 1
                            )))
                        }
                    };
                    match map.insert(fp, result) {
                        None => order.push(fp),
                        Some(previous) if previous == map[&fp] => {}
                        Some(_) => {
                            return Err(SbpError::store(format!(
                                "{} line {}: duplicate fingerprint {fp:016x} with a \
                                 conflicting result — the store is corrupt",
                                path.display(),
                                n + 1,
                            )))
                        }
                    }
                }
            }
        }
        let store = SweepStore { path, map, order };
        if heal {
            let entries: Vec<(u64, RawResult)> = store
                .order
                .iter()
                .map(|fp| (*fp, store.map[fp].clone()))
                .collect();
            Self::write_canonical(&store.path, entries)?;
        }
        Ok(store)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The stored result for a fingerprint, if any.
    pub fn get(&self, fp: u64) -> Option<&RawResult> {
        self.map.get(&fp)
    }

    /// Inserts one result and appends its line to the backing file,
    /// flushed before returning — a killed run keeps everything appended
    /// so far.
    ///
    /// # Errors
    ///
    /// Returns a store error when the file cannot be written.
    pub fn append(&mut self, fp: u64, result: &RawResult) -> Result<(), SbpError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| SbpError::store(format!("cannot open {}: {e}", self.path.display())))?;
        file.write_all(line_of(fp, result).as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| SbpError::store(format!("cannot write {}: {e}", self.path.display())))?;
        if self.map.insert(fp, result.clone()).is_none() {
            self.order.push(fp);
        }
        Ok(())
    }

    /// Consumes the store, returning the fingerprint → result map.
    pub fn into_map(self) -> HashMap<u64, RawResult> {
        self.map
    }

    /// Garbage-collects the store: drops every stored result whose
    /// fingerprint is not in `known` (the union of fingerprints some set
    /// of live specs still plans) and rewrites the backing file in its
    /// original line order. Returns the number of results dropped; a
    /// collection that drops nothing leaves the file bytes untouched.
    ///
    /// # Errors
    ///
    /// Returns a store error when the rewritten file cannot be written.
    pub fn compact(&mut self, known: &HashSet<u64>) -> Result<usize, SbpError> {
        let before = self.order.len();
        self.order.retain(|fp| known.contains(fp));
        let dropped = before - self.order.len();
        if dropped == 0 {
            return Ok(0);
        }
        self.map.retain(|fp, _| known.contains(fp));
        let entries: Vec<(u64, RawResult)> = self
            .order
            .iter()
            .map(|fp| (*fp, self.map[fp].clone()))
            .collect();
        Self::write_canonical(&self.path, entries)?;
        Ok(dropped)
    }

    /// Writes a store file holding `entries` in the given (canonical)
    /// order, replacing any existing file — the merge entry point uses
    /// plan order so merged stores are deterministic.
    ///
    /// # Errors
    ///
    /// Returns a store error when the file cannot be written.
    pub fn write_canonical(
        path: &Path,
        entries: impl IntoIterator<Item = (u64, RawResult)>,
    ) -> Result<(), SbpError> {
        let mut text = String::new();
        for (fp, result) in entries {
            text.push_str(&line_of(fp, &result));
        }
        std::fs::write(path, text)
            .map_err(|e| SbpError::store(format!("cannot write {}: {e}", path.display())))
    }
}

/// Serializes one (fingerprint, result) pair as a store JSONL line.
fn line_of(fp: u64, result: &RawResult) -> String {
    match result {
        RawResult::Sim(run) => {
            let per_thread: Vec<String> = run.per_thread.iter().map(stats_json).collect();
            // The stderr field appears only on sampled results, so exact
            // stores keep their historical bytes.
            let stderr = match run.stderr {
                None => String::new(),
                Some(se) => format!(",\"stderr\":{}", fmt_f64(se)),
            };
            format!(
                "{{\"fp\":\"{fp:016x}\",\"kind\":\"sim\",\"cycles\":{},\"stats\":{},\
                 \"per_thread\":[{}]{stderr}}}\n",
                fmt_f64(run.cycles),
                stats_json(&run.stats),
                per_thread.join(","),
            )
        }
        RawResult::Attack(out) => format!(
            "{{\"fp\":\"{fp:016x}\",\"kind\":\"attack\",\"success_rate\":{},\
             \"chance\":{},\"trials\":{}}}\n",
            fmt_f64(out.success_rate),
            fmt_f64(out.chance),
            out.trials,
        ),
    }
}

/// Shortest-roundtrip float formatting (Rust's `{}` for `f64` guarantees
/// exact value recovery on parse — the property merged-store reports rely
/// on to be byte-identical with unsharded runs).
fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

fn parse_line(line: &str) -> Result<(u64, RawResult), String> {
    let value = json::parse(line)?;
    let obj = value.as_object().ok_or("line is not a JSON object")?;
    let fp_hex = json::get_str(obj, "fp")?;
    let fp = u64::from_str_radix(fp_hex, 16).map_err(|e| format!("bad fingerprint: {e}"))?;
    let result = match json::get_str(obj, "kind")? {
        "sim" => {
            let stats = stats_from(json::get(obj, "stats")?)?;
            let per_thread = json::get(obj, "per_thread")?
                .as_array()
                .ok_or("per_thread is not an array")?
                .iter()
                .map(stats_from)
                .collect::<Result<Vec<_>, _>>()?;
            RawResult::Sim(RawRun {
                cycles: json::get_f64(obj, "cycles")?,
                stats,
                per_thread,
                stderr: json::opt_f64(obj, "stderr")?,
            })
        }
        "attack" => RawResult::Attack(sbp_attack::AttackOutcome {
            success_rate: json::get_f64(obj, "success_rate")?,
            chance: json::get_f64(obj, "chance")?,
            trials: json::get_u64(obj, "trials")?,
        }),
        other => return Err(format!("unknown result kind {other:?}")),
    };
    Ok((fp, result))
}

fn stats_from(value: &json::Value) -> Result<PredictionStats, String> {
    let obj = value.as_object().ok_or("stats is not a JSON object")?;
    Ok(PredictionStats {
        instructions: json::get_u64(obj, "instructions")?,
        cond_branches: json::get_u64(obj, "cond_branches")?,
        cond_mispredicts: json::get_u64(obj, "cond_mispredicts")?,
        btb_lookups: json::get_u64(obj, "btb_lookups")?,
        btb_misses: json::get_u64(obj, "btb_misses")?,
        btb_wrong_target: json::get_u64(obj, "btb_wrong_target")?,
        indirect_branches: json::get_u64(obj, "indirect_branches")?,
        indirect_mispredicts: json::get_u64(obj, "indirect_mispredicts")?,
        returns: json::get_u64(obj, "returns")?,
        ras_mispredicts: json::get_u64(obj, "ras_mispredicts")?,
        context_switches: json::get_u64(obj, "context_switches")?,
        privilege_switches: json::get_u64(obj, "privilege_switches")?,
        cycles: json::get_u64(obj, "cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_attack::AttackOutcome;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sbp_store_test_{}_{name}.jsonl",
            std::process::id()
        ))
    }

    fn sample_sim() -> RawResult {
        let stats = PredictionStats {
            instructions: 123_456,
            cond_mispredicts: 789,
            cycles: 654_321,
            ..Default::default()
        };
        let mut t1 = stats;
        t1.instructions = 23_456;
        RawResult::Sim(RawRun {
            // A value exercising the shortest-roundtrip formatter.
            cycles: 123_456.789_012_345_6,
            stats,
            per_thread: vec![stats, t1],
            stderr: None,
        })
    }

    fn sample_sampled() -> RawResult {
        let RawResult::Sim(mut run) = sample_sim() else {
            unreachable!()
        };
        run.stderr = Some(431.062_5);
        RawResult::Sim(run)
    }

    fn sample_attack() -> RawResult {
        RawResult::Attack(AttackOutcome {
            success_rate: 0.9653333333333334,
            chance: 0.005,
            trials: 1500,
        })
    }

    #[test]
    fn roundtrips_sim_and_attack_results_exactly() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        assert!(store.is_empty());
        store
            .append(0x0123_4567_89ab_cdef, &sample_sim())
            .expect("append");
        store
            .append(0xffff_0000_ffff_0000, &sample_attack())
            .expect("append");
        let reloaded = SweepStore::open(&path).expect("reload");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(0x0123_4567_89ab_cdef), Some(&sample_sim()));
        assert_eq!(reloaded.get(0xffff_0000_ffff_0000), Some(&sample_attack()));
        assert_eq!(reloaded.get(1), None);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn canonical_write_is_deterministic_and_reloadable() {
        let (a, b) = (tmp("canon_a"), tmp("canon_b"));
        let entries = vec![(7u64, sample_attack()), (9u64, sample_sim())];
        SweepStore::write_canonical(&a, entries.clone()).expect("write a");
        SweepStore::write_canonical(&b, entries).expect("write b");
        assert_eq!(
            std::fs::read(&a).expect("read a"),
            std::fs::read(&b).expect("read b")
        );
        let reloaded = SweepStore::open(&a).expect("reload");
        assert_eq!(reloaded.get(9), Some(&sample_sim()));
        std::fs::remove_file(&a).expect("cleanup");
        std::fs::remove_file(&b).expect("cleanup");
    }

    #[test]
    fn truncated_final_line_is_dropped_and_recoverable() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(1, &sample_sim()).expect("append");
        store.append(2, &sample_attack()).expect("append");
        let intact = std::fs::read_to_string(&path).expect("read");
        // Simulate a crash mid-append: half of a third line, no newline.
        std::fs::write(&path, format!("{intact}{{\"fp\":\"3\",\"kind\":\"at")).expect("write");
        let reloaded = SweepStore::open(&path).expect("truncated tail is recoverable");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(1), Some(&sample_sim()));
        // The rewrite healed the file: clean bytes, appends work again.
        assert_eq!(std::fs::read_to_string(&path).expect("read"), intact);
        let mut reloaded = reloaded;
        reloaded
            .append(3, &sample_sim())
            .expect("append after heal");
        assert_eq!(SweepStore::open(&path).expect("reopen").len(), 3);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn parseable_tail_without_newline_is_kept_and_healed() {
        let path = tmp("newline_lost");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(1, &sample_sim()).expect("append");
        store.append(2, &sample_attack()).expect("append");
        let intact = std::fs::read_to_string(&path).expect("read");
        // The record's bytes landed but the newline did not: the line
        // parses, yet an append would glue onto it. open() must heal.
        std::fs::write(&path, intact.trim_end_matches('\n')).expect("write");
        let mut reloaded = SweepStore::open(&path).expect("open heals");
        assert_eq!(reloaded.len(), 2, "the complete record is kept");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            intact,
            "the trailing newline is restored"
        );
        reloaded
            .append(3, &sample_sim())
            .expect("append after heal");
        assert_eq!(SweepStore::open(&path).expect("reopen").len(), 3);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn truncated_interior_line_still_fails() {
        let path = tmp("interior");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(1, &sample_sim()).expect("append");
        let intact = std::fs::read_to_string(&path).expect("read");
        // The garbage line is followed by a valid complete line: that is
        // not crash wreckage, it is corruption.
        std::fs::write(&path, format!("{{\"fp\":\"3\",\"kind\":\"at\n{intact}")).expect("write");
        assert!(matches!(
            SweepStore::open(&path),
            Err(SbpError::Store(msg)) if msg.contains("line 1")
        ));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn duplicate_fingerprints_collapse_or_conflict() {
        let path = tmp("dupes");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(9, &sample_attack()).expect("append");
        let line = std::fs::read_to_string(&path).expect("read");
        // A byte-identical duplicate (e.g. from overlapping shard stores
        // concatenated together) is collapsed silently.
        std::fs::write(&path, format!("{line}{line}")).expect("write");
        let reloaded = SweepStore::open(&path).expect("identical duplicate ok");
        assert_eq!(reloaded.len(), 1);
        // The same fingerprint with a different payload is corruption.
        let conflicting = line.replace("\"trials\":1500", "\"trials\":7");
        assert_ne!(line, conflicting, "replacement must hit");
        std::fs::write(&path, format!("{line}{conflicting}")).expect("write");
        assert!(matches!(
            SweepStore::open(&path),
            Err(SbpError::Store(msg)) if msg.contains("conflicting")
        ));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn corrupt_lines_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"fp\":\"zz\"}\n").expect("write");
        assert!(matches!(
            SweepStore::open(&path),
            Err(SbpError::Store(msg)) if msg.contains("line 1")
        ));
        std::fs::write(&path, "{\"fp\":\"10\",\"kind\":\"warp\"}\n").expect("write");
        assert!(SweepStore::open(&path).is_err());
        std::fs::write(&path, "not json\n").expect("write");
        assert!(SweepStore::open(&path).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn fingerprints_separate_payload_seed_and_identity() {
        use sbp_core::Mechanism;
        let spec = SweepSpec::single("fp")
            .with_cases(vec![crate::spec::CaseSpec::pair("c1", "gcc", "calculix")])
            .with_intervals(vec![sbp_sim::SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()]);
        let plan = crate::plan::plan(&spec);
        let fps = plan_fingerprints(&spec, &plan);
        let distinct: std::collections::BTreeSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "per-job fingerprints distinct");
        // A different master seed re-fingerprints every cell.
        let reseeded = spec.clone().with_master_seed(99);
        let fps2 = plan_fingerprints(&reseeded, &crate::plan::plan(&reseeded));
        assert!(fps.iter().zip(&fps2).all(|(a, b)| a != b));
        // The fingerprint ignores display-only strings: renaming the spec
        // or a case id keeps the store valid.
        let mut renamed = spec.clone();
        renamed.name = "renamed".to_string();
        renamed.cases[0].id = "other-id".to_string();
        assert_eq!(
            fps,
            plan_fingerprints(&renamed, &crate::plan::plan(&renamed))
        );
    }

    #[test]
    fn stderr_roundtrips_and_exact_lines_keep_their_bytes() {
        let path = tmp("stderr");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(1, &sample_sim()).expect("append");
        let exact_line = std::fs::read_to_string(&path).expect("read");
        assert!(
            !exact_line.contains("stderr"),
            "exact results serialize without a stderr field"
        );
        store.append(2, &sample_sampled()).expect("append");
        let reloaded = SweepStore::open(&path).expect("reload");
        assert_eq!(reloaded.get(1), Some(&sample_sim()));
        assert_eq!(reloaded.get(2), Some(&sample_sampled()));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn sampled_and_exact_cells_never_share_a_fingerprint() {
        use sbp_core::Mechanism;
        use sbp_sim::SamplingPlan;
        let exact = SweepSpec::single("fp")
            .with_cases(vec![crate::spec::CaseSpec::pair("c1", "gcc", "calculix")])
            .with_intervals(vec![sbp_sim::SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()]);
        let sampled = exact
            .clone()
            .with_sampling(Some(SamplingPlan::single_default()));
        let exact_fps: std::collections::BTreeSet<u64> =
            plan_fingerprints(&exact, &crate::plan::plan(&exact))
                .into_iter()
                .collect();
        let sampled_fps = plan_fingerprints(&sampled, &crate::plan::plan(&sampled));
        for fp in &sampled_fps {
            assert!(
                !exact_fps.contains(fp),
                "a sampled cell must never resume from an exact store (or vice versa)"
            );
        }
        // Distinct window layouts are distinct estimators: resuming one
        // plan's estimate into another would silently mix error models.
        let quick = exact.clone().with_sampling(Some(SamplingPlan::quick()));
        let quick_fps = plan_fingerprints(&quick, &crate::plan::plan(&quick));
        for (a, b) in sampled_fps.iter().zip(&quick_fps) {
            assert_ne!(a, b, "different sampling plans fingerprint separately");
        }
    }

    #[test]
    fn attack_fingerprints_are_stable_under_axis_edits() {
        use sbp_attack::AttackKind;
        use sbp_core::Mechanism;
        let full = SweepSpec::attack("fp")
            .with_attacks(vec![AttackKind::SpectreV2, AttackKind::Sbpa])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()]);
        let narrowed = full
            .clone()
            .with_attacks(vec![AttackKind::Sbpa])
            .with_mechanisms(vec![Mechanism::noisy_xor_bp()]);
        let full_plan = crate::plan::plan(&full);
        let full_fps: std::collections::BTreeSet<u64> =
            plan_fingerprints(&full, &full_plan).into_iter().collect();
        let narrow_plan = crate::plan::plan(&narrowed);
        for fp in plan_fingerprints(&narrowed, &narrow_plan) {
            assert!(full_fps.contains(&fp), "narrowed grid reuses stored cells");
        }
    }

    #[test]
    fn compact_drops_unknown_cells_in_file_order() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(1, &sample_sim()).expect("append");
        store.append(2, &sample_attack()).expect("append");
        store.append(3, &sample_sim()).expect("append");
        let known: HashSet<u64> = [1, 3].into_iter().collect();
        assert_eq!(store.compact(&known).expect("compact"), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(2), None);
        // The rewrite kept the surviving lines in original order, and a
        // reload agrees.
        let reloaded = SweepStore::open(&path).expect("reload");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(1), Some(&sample_sim()));
        assert_eq!(reloaded.get(3), Some(&sample_sim()));
        // Compacting again drops nothing and leaves the bytes untouched.
        let before = std::fs::read(&path).expect("read");
        let mut reloaded = reloaded;
        assert_eq!(reloaded.compact(&known).expect("compact"), 0);
        assert_eq!(std::fs::read(&path).expect("read"), before);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compact_on_a_fresh_store_is_a_byte_level_noop() {
        let path = tmp("compact_noop");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(7, &sample_attack()).expect("append");
        store.append(9, &sample_sim()).expect("append");
        let before = std::fs::read(&path).expect("read");
        let known: HashSet<u64> = [7, 9, 11].into_iter().collect();
        assert_eq!(store.compact(&known).expect("compact"), 0);
        assert_eq!(std::fs::read(&path).expect("read"), before);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compact_can_empty_a_store() {
        let path = tmp("compact_all");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepStore::open(&path).expect("open");
        store.append(5, &sample_sim()).expect("append");
        assert_eq!(store.compact(&HashSet::new()).expect("compact"), 1);
        assert!(store.is_empty());
        assert_eq!(std::fs::read(&path).expect("read"), b"");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
