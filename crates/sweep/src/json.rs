//! A minimal recursive-descent JSON reader shared by the sweep store and
//! the campaign manifest parser.
//!
//! The workspace builds offline, so no external JSON dependency exists;
//! this reader covers exactly the grammar the workspace's own files use.
//! Numbers keep their raw token so integers round-trip at full `u64`
//! precision and floats parse with Rust's exact shortest-roundtrip
//! grammar — the property merged-store reports rely on to be
//! byte-identical with unsharded runs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The key/value pairs of an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a required object field.
pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Looks up an optional object field (`None` when absent).
pub fn opt<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A required string field.
pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    match get(obj, key)? {
        Value::Str(s) => Ok(s),
        other => Err(format!("field {key:?} is not a string: {other:?}")),
    }
}

/// A required `u64` field.
pub fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Value::Num(raw) => raw
            .parse::<u64>()
            .map_err(|e| format!("field {key:?}: {e}")),
        other => Err(format!("field {key:?} is not a number: {other:?}")),
    }
}

/// A required `f64` field.
pub fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Value::Num(raw) => raw
            .parse::<f64>()
            .map_err(|e| format!("field {key:?}: {e}")),
        other => Err(format!("field {key:?} is not a number: {other:?}")),
    }
}

/// An optional `u64` field (`Ok(None)` when absent, `Err` when present
/// but not an unsigned integer).
pub fn opt_u64(obj: &[(String, Value)], key: &str) -> Result<Option<u64>, String> {
    match opt(obj, key) {
        None => Ok(None),
        Some(_) => get_u64(obj, key).map(Some),
    }
}

/// An optional `f64` field (`Ok(None)` when absent, `Err` when present
/// but not a number).
pub fn opt_f64(obj: &[(String, Value)], key: &str) -> Result<Option<f64>, String> {
    match opt(obj, key) {
        None => Ok(None),
        Some(_) => get_f64(obj, key).map(Some),
    }
}

/// An optional boolean field (`Ok(None)` when absent, `Err` when present
/// but not a boolean).
pub fn opt_bool(obj: &[(String, Value)], key: &str) -> Result<Option<bool>, String> {
    match opt(obj, key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("field {key:?} is not a boolean: {other:?}")),
    }
}

/// An optional string field (`Ok(None)` when absent, `Err` when present
/// but not a string).
pub fn opt_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<Option<&'a str>, String> {
    match opt(obj, key) {
        None => Ok(None),
        Some(_) => get_str(obj, key).map(Some),
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("unexpected {other:?} in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("unexpected {other:?} in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // Validate the token parses as a float (covers integers too).
        raw.parse::<f64>()
            .map_err(|e| format!("bad number {raw:?}: {e}"))?;
        Ok(Value::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_store_grammar() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"s":"x\"\nA","b":true,"n":null}"#).expect("parse");
        let obj = v.as_object().expect("object");
        let arr = get(obj, "a").unwrap().as_array().expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(get_str(obj, "s").unwrap(), "x\"\nA");
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
        assert_eq!(
            get_u64(
                parse(r#"{"x":18446744073709551615}"#)
                    .unwrap()
                    .as_object()
                    .unwrap(),
                "x"
            )
            .unwrap(),
            u64::MAX,
            "u64 integers round-trip at full precision"
        );
    }

    #[test]
    fn optional_lookups_distinguish_absent_from_malformed() {
        let v = parse(r#"{"n":3,"f":1.5,"s":"x"}"#).expect("parse");
        let obj = v.as_object().expect("object");
        assert_eq!(opt_u64(obj, "n").unwrap(), Some(3));
        assert_eq!(opt_u64(obj, "missing").unwrap(), None);
        assert!(opt_u64(obj, "s").is_err(), "present but wrong type");
        assert_eq!(opt_f64(obj, "f").unwrap(), Some(1.5));
        assert_eq!(opt_f64(obj, "missing").unwrap(), None);
        assert_eq!(opt_str(obj, "s").unwrap(), Some("x"));
        assert_eq!(opt_str(obj, "missing").unwrap(), None);
        assert!(opt_str(obj, "n").is_err());
        assert!(opt(obj, "n").is_some());
        assert!(opt(obj, "missing").is_none());
    }
}
