//! The declarative sweep specification.
//!
//! A [`SweepSpec`] names the full experiment grid — predictors ×
//! mechanisms × switch intervals × benchmark cases × seed replicas — plus
//! the core configuration, execution mode and work budget. The planner
//! (`crate::plan`) turns it into a deduplicated job list; [`SweepSpec::run`]
//! does the whole pipeline in one call.

use serde::{Deserialize, Serialize};

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::BenchmarkCase;
use sbp_types::{SbpError, SweepReport};

/// One benchmark case: a named set of co-scheduled workloads. Workload 0
/// is the measured target on the single-core mode; on SMT every workload
/// gets its own hardware thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Case id used in reports ("case1", "custom", ...).
    pub id: String,
    /// Workload names (resolved via `sbp_trace::WorkloadProfile::by_name`).
    pub workloads: Vec<String>,
}

impl CaseSpec {
    /// Builds a case from borrowed names of any lifetime.
    pub fn new(id: &str, workloads: &[&str]) -> Self {
        CaseSpec {
            id: id.to_string(),
            workloads: workloads.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// The common target + background pair.
    pub fn pair(id: &str, target: &str, background: &str) -> Self {
        CaseSpec::new(id, &[target, background])
    }
}

impl From<&BenchmarkCase> for CaseSpec {
    fn from(case: &BenchmarkCase) -> Self {
        CaseSpec::pair(case.id, case.target, case.background)
    }
}

/// Converts a Table 3 case list into sweep cases.
pub fn cases_from(cases: &[BenchmarkCase]) -> Vec<CaseSpec> {
    cases.iter().map(CaseSpec::from).collect()
}

/// Which simulator executes the jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Timer-multiplexed single hardware thread (the FPGA experiments).
    SingleCore,
    /// One hardware thread per workload (the gem5 experiments).
    Smt,
}

impl SweepMode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            SweepMode::SingleCore => "single-core",
            SweepMode::Smt => "smt",
        }
    }
}

/// A declarative experiment grid.
///
/// Construct with [`SweepSpec::single`] / [`SweepSpec::smt`] for the
/// paper's defaults and override axes with the `with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Report name.
    pub name: String,
    /// Execution mode.
    pub mode: SweepMode,
    /// Core configuration (timing model + BTB geometry).
    pub core: CoreConfig,
    /// Predictor axis.
    pub predictors: Vec<PredictorKind>,
    /// Mechanism series. `Mechanism::Baseline` entries are ignored: the
    /// planner always schedules exactly one shared baseline per group.
    pub mechanisms: Vec<Mechanism>,
    /// Switch-interval axis.
    pub intervals: Vec<SwitchInterval>,
    /// Benchmark cases.
    pub cases: Vec<CaseSpec>,
    /// Per-run work amounts.
    pub budget: WorkBudget,
    /// Number of seed replicas per cell.
    pub seeds: u32,
    /// Master seed all per-group seeds are derived from.
    pub master_seed: u64,
}

impl SweepSpec {
    /// A single-core sweep with the paper's FPGA defaults: Gshare, all
    /// three switch intervals, the twelve Table 3 cases, the default
    /// single-core budget, one seed replica.
    pub fn single(name: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            mode: SweepMode::SingleCore,
            core: CoreConfig::fpga(),
            predictors: vec![PredictorKind::Gshare],
            mechanisms: Vec::new(),
            intervals: SwitchInterval::ALL.to_vec(),
            cases: cases_from(&sbp_trace::cases_single()),
            budget: WorkBudget::single_default(),
            seeds: 1,
            master_seed: 0,
        }
    }

    /// An SMT sweep with the paper's gem5 defaults: Tournament, the 8 M
    /// interval, the twelve SMT-2 Table 3 pairs, the default SMT budget,
    /// one seed replica.
    pub fn smt(name: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            mode: SweepMode::Smt,
            core: CoreConfig::gem5(),
            predictors: vec![PredictorKind::Tournament],
            mechanisms: Vec::new(),
            intervals: vec![SwitchInterval::M8],
            cases: cases_from(&sbp_trace::cases_smt2()),
            budget: WorkBudget::smt_default(),
            seeds: 1,
            master_seed: 0,
        }
    }

    /// Replaces the mechanism series.
    pub fn with_mechanisms(mut self, mechanisms: Vec<Mechanism>) -> Self {
        self.mechanisms = mechanisms;
        self
    }

    /// Replaces the predictor axis.
    pub fn with_predictors(mut self, predictors: Vec<PredictorKind>) -> Self {
        self.predictors = predictors;
        self
    }

    /// Replaces the switch-interval axis.
    pub fn with_intervals(mut self, intervals: Vec<SwitchInterval>) -> Self {
        self.intervals = intervals;
        self
    }

    /// Replaces the benchmark cases.
    pub fn with_cases(mut self, cases: Vec<CaseSpec>) -> Self {
        self.cases = cases;
        self
    }

    /// Replaces the core configuration.
    pub fn with_core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Replaces the work budget.
    pub fn with_budget(mut self, budget: WorkBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the number of seed replicas per cell.
    pub fn with_seeds(mut self, seeds: u32) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// The mechanism series the planner will schedule (explicit `Baseline`
    /// entries removed — the shared baseline is always planned).
    pub fn series_mechanisms(&self) -> Vec<Mechanism> {
        self.mechanisms
            .iter()
            .copied()
            .filter(|m| *m != Mechanism::Baseline)
            .collect()
    }

    /// Checks the grid is well-formed (non-empty axes, enough workloads
    /// per case for the mode).
    ///
    /// # Errors
    ///
    /// Returns a configuration error naming the offending axis.
    pub fn validate(&self) -> Result<(), SbpError> {
        if self.predictors.is_empty() {
            return Err(SbpError::config("sweep needs at least one predictor"));
        }
        if self.intervals.is_empty() {
            return Err(SbpError::config("sweep needs at least one switch interval"));
        }
        if self.cases.is_empty() {
            return Err(SbpError::config("sweep needs at least one case"));
        }
        if self.seeds == 0 {
            return Err(SbpError::config("sweep needs at least one seed replica"));
        }
        if self.budget.measure == 0 {
            return Err(SbpError::config(
                "sweep needs a positive measurement budget",
            ));
        }
        for case in &self.cases {
            if case.workloads.len() < 2 {
                return Err(SbpError::config(
                    "every case needs at least two workloads (target + background)",
                ));
            }
        }
        Ok(())
    }

    /// Plans, executes and aggregates the sweep: the whole pipeline.
    ///
    /// # Errors
    ///
    /// Returns validation errors and unknown-workload errors.
    pub fn run(&self) -> Result<SweepReport, SbpError> {
        self.validate()?;
        let plan = crate::plan::plan(self);
        let raw = crate::exec::execute(self, &plan)?;
        Ok(crate::build::build_report(self, &plan, &raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_spec_from_benchmark_case() {
        let case = &sbp_trace::cases_single()[0];
        let spec = CaseSpec::from(case);
        assert_eq!(spec.id, "case1");
        assert_eq!(spec.workloads, vec!["gcc", "calculix"]);
    }

    #[test]
    fn case_spec_accepts_non_static_names() {
        let owned = String::from("gcc");
        let spec = CaseSpec::pair("x", &owned, "calculix");
        assert_eq!(spec.workloads[0], "gcc");
    }

    #[test]
    fn defaults_cover_the_paper_grid() {
        let s = SweepSpec::single("fig");
        assert_eq!(s.cases.len(), 12);
        assert_eq!(s.intervals.len(), 3);
        assert_eq!(s.predictors, vec![PredictorKind::Gshare]);
        let s = SweepSpec::smt("fig");
        assert_eq!(s.cases.len(), 12);
        assert_eq!(s.intervals, vec![SwitchInterval::M8]);
    }

    #[test]
    fn baseline_is_filtered_from_series() {
        let s = SweepSpec::single("x")
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::CompleteFlush]);
        assert_eq!(s.series_mechanisms(), vec![Mechanism::CompleteFlush]);
    }

    #[test]
    fn validation_rejects_bad_grids() {
        assert!(SweepSpec::single("x")
            .with_predictors(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x")
            .with_intervals(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x")
            .with_cases(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x").with_seeds(0).validate().is_err());
        let one_workload = SweepSpec::single("x").with_cases(vec![CaseSpec::new("bad", &["gcc"])]);
        assert!(one_workload.validate().is_err());
        let zero_measure = SweepSpec::single("x").with_budget(WorkBudget {
            warmup: 0,
            measure: 0,
        });
        assert!(zero_measure.validate().is_err());
        assert!(SweepSpec::single("x").validate().is_ok());
    }
}
