//! The declarative sweep specification.
//!
//! A [`SweepSpec`] names the full experiment grid — predictors ×
//! mechanisms × switch intervals × benchmark cases × seed replicas — plus
//! the core configuration, execution mode and work budget. The planner
//! (`crate::plan`) turns it into a deduplicated job list; [`SweepSpec::run`]
//! does the whole pipeline in one call.

use serde::{Deserialize, Serialize};

use sbp_attack::AttackKind;
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{CoreConfig, GapMode, SamplingPlan, SwitchInterval, WorkBudget};
use sbp_trace::BenchmarkCase;
use sbp_types::{SbpError, SweepReport};

/// One benchmark case: a named set of co-scheduled workloads. Workload 0
/// is the measured target on the single-core mode; on SMT every workload
/// gets its own hardware thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Case id used in reports ("case1", "custom", ...).
    pub id: String,
    /// Workload names (resolved via `sbp_trace::WorkloadProfile::by_name`).
    pub workloads: Vec<String>,
}

impl CaseSpec {
    /// Builds a case from borrowed names of any lifetime.
    pub fn new(id: &str, workloads: &[&str]) -> Self {
        CaseSpec {
            id: id.to_string(),
            workloads: workloads.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// The common target + background pair.
    pub fn pair(id: &str, target: &str, background: &str) -> Self {
        CaseSpec::new(id, &[target, background])
    }
}

impl From<&BenchmarkCase> for CaseSpec {
    fn from(case: &BenchmarkCase) -> Self {
        CaseSpec::pair(case.id, case.target, case.background)
    }
}

/// Converts a Table 3 case list into sweep cases.
pub fn cases_from(cases: &[BenchmarkCase]) -> Vec<CaseSpec> {
    cases.iter().map(CaseSpec::from).collect()
}

/// Which simulator executes the jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Timer-multiplexed single hardware thread (the FPGA experiments).
    SingleCore,
    /// One hardware thread per workload (the gem5 experiments).
    Smt,
}

impl SweepMode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            SweepMode::SingleCore => "single-core",
            SweepMode::Smt => "smt",
        }
    }
}

/// What kind of jobs a sweep's grid expands into — the spec-level side of
/// the engine's polymorphic [`Job`](crate::plan::Job) payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PayloadSpec {
    /// Simulation jobs over the spec's predictor × mechanism × interval ×
    /// case axes (the figure/table overhead grids).
    Sim,
    /// Attack-PoC jobs over attack × mechanism × predictor × core-mode
    /// axes (the Table 1 security matrix and §5.5 accuracy experiments).
    Attack(AttackGridSpec),
}

/// The attack-specific axes of an attack sweep; combined with the spec's
/// `predictors`, `mechanisms` and `seeds` axes to form the full grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackGridSpec {
    /// Attack campaigns to run.
    pub attacks: Vec<AttackKind>,
    /// Core modes to attack under (time-sliced and/or concurrent SMT).
    pub modes: Vec<SweepMode>,
    /// Trials per campaign cell.
    pub trials: u64,
}

/// A declarative experiment grid.
///
/// Construct with [`SweepSpec::single`] / [`SweepSpec::smt`] for the
/// paper's simulation defaults, or [`SweepSpec::attack`] for an attack-PoC
/// grid, and override axes with the `with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Report name.
    pub name: String,
    /// Execution mode of simulation sweeps (attack sweeps carry their
    /// mode axis in the payload instead).
    pub mode: SweepMode,
    /// Core configuration (timing model + BTB geometry).
    pub core: CoreConfig,
    /// Predictor axis.
    pub predictors: Vec<PredictorKind>,
    /// Mechanism series. On simulation sweeps `Mechanism::Baseline`
    /// entries are ignored — the planner always schedules exactly one
    /// shared baseline per group; on attack sweeps `Baseline` is an
    /// ordinary series (the undefended comparison column).
    pub mechanisms: Vec<Mechanism>,
    /// Switch-interval axis (simulation sweeps only).
    pub intervals: Vec<SwitchInterval>,
    /// Benchmark cases (simulation sweeps only).
    pub cases: Vec<CaseSpec>,
    /// Per-run work amounts (simulation sweeps only).
    pub budget: WorkBudget,
    /// Stratified sampling plan (simulation sweeps only). `None` — the
    /// default everywhere — runs the exact reference path; `Some` runs
    /// warm-checkpointed window sampling with analytically weighted
    /// switch costs (see [`sbp_sim::sampling`]). Sampled and exact cells
    /// never share store fingerprints.
    #[serde(default)]
    pub sampling: Option<SamplingPlan>,
    /// Number of seed replicas per cell.
    pub seeds: u32,
    /// Master seed all per-job seeds are derived from.
    pub master_seed: u64,
    /// What the grid expands into: simulation or attack jobs.
    pub payload: PayloadSpec,
}

impl SweepSpec {
    /// A single-core sweep with the paper's FPGA defaults: Gshare, all
    /// three switch intervals, the twelve Table 3 cases, the default
    /// single-core budget, one seed replica.
    pub fn single(name: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            mode: SweepMode::SingleCore,
            core: CoreConfig::fpga(),
            predictors: vec![PredictorKind::Gshare],
            mechanisms: Vec::new(),
            intervals: SwitchInterval::ALL.to_vec(),
            cases: cases_from(&sbp_trace::cases_single()),
            budget: WorkBudget::single_default(),
            sampling: None,
            seeds: 1,
            master_seed: 0,
            payload: PayloadSpec::Sim,
        }
    }

    /// An SMT sweep with the paper's gem5 defaults: Tournament, the 8 M
    /// interval, the twelve SMT-2 Table 3 pairs, the default SMT budget,
    /// one seed replica.
    pub fn smt(name: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            mode: SweepMode::Smt,
            core: CoreConfig::gem5(),
            predictors: vec![PredictorKind::Tournament],
            mechanisms: Vec::new(),
            intervals: vec![SwitchInterval::M8],
            cases: cases_from(&sbp_trace::cases_smt2()),
            budget: WorkBudget::smt_default(),
            sampling: None,
            seeds: 1,
            master_seed: 0,
            payload: PayloadSpec::Sim,
        }
    }

    /// An attack-PoC sweep over the Table 1 campaigns in both core
    /// modes: Gshare front-end, 1000 trials per cell, one seed replica.
    /// Jump-over-ASLR is excluded from the default grid — it ignores the
    /// core-mode flag (concurrent by construction), so crossing it with
    /// the mode axis would report two seed-noise copies of one
    /// experiment; add it explicitly with [`SweepSpec::with_attacks`]
    /// and a single mode. Narrow the grid with `with_attacks` /
    /// [`SweepSpec::with_attack_modes`] / [`SweepSpec::with_trials`] and
    /// the shared `with_mechanisms` / `with_predictors` / `with_seeds`
    /// builders.
    pub fn attack(name: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            mode: SweepMode::SingleCore,
            core: CoreConfig::fpga(),
            predictors: vec![PredictorKind::Gshare],
            mechanisms: Vec::new(),
            intervals: vec![SwitchInterval::M8],
            cases: Vec::new(),
            budget: WorkBudget::quick(),
            sampling: None,
            seeds: 1,
            master_seed: 0,
            payload: PayloadSpec::Attack(AttackGridSpec {
                attacks: AttackKind::ALL
                    .into_iter()
                    .filter(|a| *a != AttackKind::JumpAslr)
                    .collect(),
                modes: vec![SweepMode::SingleCore, SweepMode::Smt],
                trials: 1000,
            }),
        }
    }

    /// Whether this spec plans attack jobs.
    pub fn is_attack(&self) -> bool {
        matches!(self.payload, PayloadSpec::Attack(_))
    }

    /// The attack grid, if this is an attack sweep.
    pub fn attack_grid(&self) -> Option<&AttackGridSpec> {
        match &self.payload {
            PayloadSpec::Attack(grid) => Some(grid),
            PayloadSpec::Sim => None,
        }
    }

    fn attack_grid_mut(&mut self) -> &mut AttackGridSpec {
        match &mut self.payload {
            PayloadSpec::Attack(grid) => grid,
            PayloadSpec::Sim => panic!("attack-axis builder used on a simulation sweep"),
        }
    }

    /// Replaces the attack axis (attack sweeps only).
    ///
    /// # Panics
    ///
    /// Panics when called on a simulation sweep.
    pub fn with_attacks(mut self, attacks: Vec<AttackKind>) -> Self {
        self.attack_grid_mut().attacks = attacks;
        self
    }

    /// Replaces the core-mode axis (attack sweeps only).
    ///
    /// # Panics
    ///
    /// Panics when called on a simulation sweep.
    pub fn with_attack_modes(mut self, modes: Vec<SweepMode>) -> Self {
        self.attack_grid_mut().modes = modes;
        self
    }

    /// Sets the trials per campaign cell (attack sweeps only).
    ///
    /// # Panics
    ///
    /// Panics when called on a simulation sweep.
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.attack_grid_mut().trials = trials;
        self
    }

    /// Replaces the mechanism series.
    pub fn with_mechanisms(mut self, mechanisms: Vec<Mechanism>) -> Self {
        self.mechanisms = mechanisms;
        self
    }

    /// Replaces the predictor axis.
    pub fn with_predictors(mut self, predictors: Vec<PredictorKind>) -> Self {
        self.predictors = predictors;
        self
    }

    /// Guards the sim-only builders: silently accepting (and ignoring) a
    /// sim axis on an attack sweep would be the mirror image of the
    /// attack-builder panic below.
    fn expect_sim(&self, builder: &str) {
        assert!(
            !self.is_attack(),
            "sim-axis builder {builder} used on an attack sweep"
        );
    }

    /// Replaces the switch-interval axis (simulation sweeps only).
    ///
    /// # Panics
    ///
    /// Panics when called on an attack sweep, which has no interval axis.
    pub fn with_intervals(mut self, intervals: Vec<SwitchInterval>) -> Self {
        self.expect_sim("with_intervals");
        self.intervals = intervals;
        self
    }

    /// Replaces the benchmark cases (simulation sweeps only).
    ///
    /// # Panics
    ///
    /// Panics when called on an attack sweep, which has no case axis.
    pub fn with_cases(mut self, cases: Vec<CaseSpec>) -> Self {
        self.expect_sim("with_cases");
        self.cases = cases;
        self
    }

    /// Replaces the core configuration (simulation sweeps only; the
    /// attack harness selects its core from the mode axis).
    ///
    /// # Panics
    ///
    /// Panics when called on an attack sweep.
    pub fn with_core(mut self, core: CoreConfig) -> Self {
        self.expect_sim("with_core");
        self.core = core;
        self
    }

    /// Replaces the work budget (simulation sweeps only; attack work is
    /// set by [`SweepSpec::with_trials`]).
    ///
    /// # Panics
    ///
    /// Panics when called on an attack sweep.
    pub fn with_budget(mut self, budget: WorkBudget) -> Self {
        self.expect_sim("with_budget");
        self.budget = budget;
        self
    }

    /// Enables (or, with `None`, disables) stratified sampling for this
    /// sweep's simulation jobs (simulation sweeps only). The exact path
    /// stays the default; sampled cells get distinct store fingerprints.
    ///
    /// # Panics
    ///
    /// Panics when called on an attack sweep, which has no simulation
    /// budget to sample.
    pub fn with_sampling(mut self, sampling: Option<SamplingPlan>) -> Self {
        self.expect_sim("with_sampling");
        self.sampling = sampling;
        self
    }

    /// Attaches the mode-appropriate default [`SamplingPlan`] — the
    /// single knob campaigns flip to run a whole catalog sampled. A
    /// no-op on attack sweeps (attack campaigns measure accuracy, not
    /// time; there is nothing to sample).
    pub fn with_default_sampling(self) -> Self {
        self.with_default_sampling_mode(GapMode::FastForward)
    }

    /// [`Self::with_default_sampling`] with an explicit gap strategy:
    /// [`GapMode::FastForward`] selects the classic skip-and-rewarm
    /// plans, [`GapMode::Functional`] the hybrid plans (state-exact
    /// executed gaps, zero rewarm — see `sbp_sim::sampling`). A no-op on
    /// attack sweeps.
    pub fn with_default_sampling_mode(self, gap_mode: GapMode) -> Self {
        if self.is_attack() {
            return self;
        }
        let plan = match (self.mode, gap_mode) {
            (SweepMode::SingleCore, GapMode::FastForward) => SamplingPlan::single_default(),
            (SweepMode::SingleCore, GapMode::Functional) => SamplingPlan::single_hybrid(),
            (SweepMode::Smt, GapMode::FastForward) => SamplingPlan::smt_default(),
            (SweepMode::Smt, GapMode::Functional) => SamplingPlan::smt_hybrid(),
        };
        self.with_sampling(Some(plan))
    }

    /// Sets the number of seed replicas per cell.
    pub fn with_seeds(mut self, seeds: u32) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// The mechanism series the planner will schedule (explicit `Baseline`
    /// entries removed — the shared baseline is always planned).
    pub fn series_mechanisms(&self) -> Vec<Mechanism> {
        self.mechanisms
            .iter()
            .copied()
            .filter(|m| *m != Mechanism::Baseline)
            .collect()
    }

    /// Checks the grid is well-formed: non-empty axes for the payload
    /// kind, and (on simulation sweeps) enough workloads per case for the
    /// mode.
    ///
    /// # Errors
    ///
    /// Returns a configuration error naming the offending axis.
    pub fn validate(&self) -> Result<(), SbpError> {
        if self.predictors.is_empty() {
            return Err(SbpError::config("sweep needs at least one predictor"));
        }
        if self.seeds == 0 {
            return Err(SbpError::config("sweep needs at least one seed replica"));
        }
        match &self.payload {
            PayloadSpec::Attack(grid) => {
                if grid.attacks.is_empty() {
                    return Err(SbpError::config("attack sweep needs at least one attack"));
                }
                if grid.modes.is_empty() {
                    return Err(SbpError::config(
                        "attack sweep needs at least one core mode",
                    ));
                }
                if self.mechanisms.is_empty() {
                    return Err(SbpError::config(
                        "attack sweep needs at least one mechanism series",
                    ));
                }
                if grid.trials == 0 {
                    return Err(SbpError::config(
                        "attack sweep needs a positive trial count",
                    ));
                }
            }
            PayloadSpec::Sim => {
                if self.intervals.is_empty() {
                    return Err(SbpError::config("sweep needs at least one switch interval"));
                }
                if self.cases.is_empty() {
                    return Err(SbpError::config("sweep needs at least one case"));
                }
                if self.budget.measure == 0 {
                    return Err(SbpError::config(
                        "sweep needs a positive measurement budget",
                    ));
                }
                for case in &self.cases {
                    if case.workloads.len() < 2 {
                        return Err(SbpError::config(
                            "every case needs at least two workloads (target + background)",
                        ));
                    }
                }
                if let Some(plan) = &self.sampling {
                    plan.validate()?;
                    if plan.phase_windows > 0 && self.mode != SweepMode::SingleCore {
                        return Err(SbpError::config(
                            "phase-clustered sampling (phase_windows > 0) is single-core only",
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Plans, executes and aggregates the sweep: the whole pipeline, with
    /// no persistence. See [`SweepSpec::run_with`] for the store-backed
    /// resumable/shardable variant.
    ///
    /// # Errors
    ///
    /// Returns validation errors and unknown-workload errors.
    pub fn run(&self) -> Result<SweepReport, SbpError> {
        self.validate()?;
        let plan = crate::plan::plan(self);
        let raw = crate::exec::execute(self, &plan)?;
        Ok(crate::build::build_report(self, &plan, &raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sampling_mode_selects_default_or_hybrid_plans() {
        let single = SweepSpec::single("s");
        assert_eq!(
            single.clone().with_default_sampling().sampling,
            Some(SamplingPlan::single_default())
        );
        assert_eq!(
            single
                .with_default_sampling_mode(GapMode::Functional)
                .sampling,
            Some(SamplingPlan::single_hybrid())
        );
        let smt = SweepSpec::smt("m");
        assert_eq!(
            smt.clone()
                .with_default_sampling_mode(GapMode::FastForward)
                .sampling,
            Some(SamplingPlan::smt_default())
        );
        assert_eq!(
            smt.with_default_sampling_mode(GapMode::Functional).sampling,
            Some(SamplingPlan::smt_hybrid())
        );
        let attack = SweepSpec::attack("a").with_default_sampling_mode(GapMode::Functional);
        assert!(attack.is_attack(), "attack sweeps pass through unchanged");
    }

    #[test]
    fn case_spec_from_benchmark_case() {
        let case = &sbp_trace::cases_single()[0];
        let spec = CaseSpec::from(case);
        assert_eq!(spec.id, "case1");
        assert_eq!(spec.workloads, vec!["gcc", "calculix"]);
    }

    #[test]
    fn case_spec_accepts_non_static_names() {
        let owned = String::from("gcc");
        let spec = CaseSpec::pair("x", &owned, "calculix");
        assert_eq!(spec.workloads[0], "gcc");
    }

    #[test]
    fn defaults_cover_the_paper_grid() {
        let s = SweepSpec::single("fig");
        assert_eq!(s.cases.len(), 12);
        assert_eq!(s.intervals.len(), 3);
        assert_eq!(s.predictors, vec![PredictorKind::Gshare]);
        let s = SweepSpec::smt("fig");
        assert_eq!(s.cases.len(), 12);
        assert_eq!(s.intervals, vec![SwitchInterval::M8]);
    }

    #[test]
    fn baseline_is_filtered_from_series() {
        let s = SweepSpec::single("x")
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::CompleteFlush]);
        assert_eq!(s.series_mechanisms(), vec![Mechanism::CompleteFlush]);
    }

    #[test]
    fn validation_rejects_bad_grids() {
        assert!(SweepSpec::single("x")
            .with_predictors(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x")
            .with_intervals(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x")
            .with_cases(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::single("x").with_seeds(0).validate().is_err());
        let one_workload = SweepSpec::single("x").with_cases(vec![CaseSpec::new("bad", &["gcc"])]);
        assert!(one_workload.validate().is_err());
        let zero_measure = SweepSpec::single("x").with_budget(WorkBudget {
            warmup: 0,
            measure: 0,
        });
        assert!(zero_measure.validate().is_err());
        assert!(SweepSpec::single("x").validate().is_ok());
        let mut phased = SamplingPlan::smt_default();
        phased.phase_windows = 4;
        assert!(
            SweepSpec::smt("x")
                .with_sampling(Some(phased))
                .validate()
                .is_err(),
            "phase-clustered sampling is single-core only"
        );
        let mut phased = SamplingPlan::single_default();
        phased.phase_windows = 4;
        assert!(SweepSpec::single("x")
            .with_sampling(Some(phased))
            .validate()
            .is_ok());
    }

    #[test]
    fn attack_spec_defaults_cover_the_matrix() {
        let s = SweepSpec::attack("tab01");
        assert!(s.is_attack());
        let grid = s.attack_grid().expect("attack grid");
        // Every campaign except mode-agnostic Jump-over-ASLR.
        assert_eq!(grid.attacks.len(), AttackKind::ALL.len() - 1);
        assert!(!grid.attacks.contains(&AttackKind::JumpAslr));
        assert_eq!(grid.modes, vec![SweepMode::SingleCore, SweepMode::Smt]);
        assert_eq!(grid.trials, 1000);
        assert_eq!(s.predictors, vec![PredictorKind::Gshare]);
        assert!(SweepSpec::single("sim").attack_grid().is_none());
    }

    #[test]
    fn attack_builders_replace_the_grid_axes() {
        let s = SweepSpec::attack("x")
            .with_attacks(vec![AttackKind::SpectreV2])
            .with_attack_modes(vec![SweepMode::Smt])
            .with_trials(77)
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::xor_bp()]);
        let grid = s.attack_grid().expect("grid");
        assert_eq!(grid.attacks, vec![AttackKind::SpectreV2]);
        assert_eq!(grid.modes, vec![SweepMode::Smt]);
        assert_eq!(grid.trials, 77);
        // Baseline stays a real series on attack sweeps.
        assert_eq!(s.mechanisms.len(), 2);
    }

    #[test]
    #[should_panic(expected = "attack-axis builder")]
    fn attack_builders_panic_on_sim_sweeps() {
        let _ = SweepSpec::single("x").with_trials(10);
    }

    #[test]
    #[should_panic(expected = "sim-axis builder")]
    fn sim_builders_panic_on_attack_sweeps() {
        let _ = SweepSpec::attack("x").with_budget(WorkBudget::quick());
    }

    #[test]
    fn attack_validation_rejects_bad_grids() {
        let base = || SweepSpec::attack("x").with_mechanisms(vec![Mechanism::Baseline]);
        assert!(base().validate().is_ok());
        assert!(base().with_attacks(vec![]).validate().is_err());
        assert!(base().with_attack_modes(vec![]).validate().is_err());
        assert!(base().with_trials(0).validate().is_err());
        assert!(SweepSpec::attack("x").validate().is_err(), "no mechanisms");
        assert!(base().with_predictors(vec![]).validate().is_err());
        assert!(base().with_seeds(0).validate().is_err());
        // Sim-only axes are irrelevant for attack sweeps.
        let mut s = base();
        s.cases.clear();
        s.intervals.clear();
        assert!(s.validate().is_ok());
    }
}
