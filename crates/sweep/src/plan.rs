//! Turning a [`SweepSpec`] into a deduplicated job plan.
//!
//! The grid is partitioned into **groups** — one per (predictor, interval,
//! case, seed replica) point. Every mechanism series in a group is
//! normalized against the *same* baseline simulation, so the planner
//! schedules exactly one `Baseline` job per group, shared by all series.
//! For `M` mechanisms this plans `M + 1` simulations per group where the
//! old per-series runners (`single_overhead` per mechanism) re-simulated
//! the baseline every time and needed `2·M`.
//!
//! Each group draws its workload-stream seed from
//! [`SplitMix64::derive`](sbp_types::rng::SplitMix64::derive) labeled with
//! the group's **(case, seed replica)** pair — deliberately *not* the
//! interval or predictor. Every job inside a group (baseline and all
//! mechanisms) replays the identical instruction stream — the requirement
//! for a meaningful `cycles(mech) / cycles(baseline)` ratio — and on top
//! of that, the interval and predictor columns of one case replay the
//! *same* stream too, so cross-interval trends (Figure 1/7/8/9) and
//! cross-predictor trends (Figure 10) measure the variable under study
//! rather than stream-to-stream variance, exactly like the old
//! `seed_base + case` runners. Seeds are pairwise distinct across
//! distinct (case, replica) pairs.

use serde::{Deserialize, Serialize};

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::SwitchInterval;
use sbp_types::rng::SplitMix64;

use crate::spec::SweepSpec;

/// One (predictor, interval, case, seed) grid point sharing a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGroup {
    /// Predictor under test.
    pub predictor: PredictorKind,
    /// Switch interval.
    pub interval: SwitchInterval,
    /// Index into `spec.cases`.
    pub case_index: usize,
    /// Seed replica index.
    pub seed_index: u32,
    /// Derived workload-stream seed shared by every job in the group.
    pub seed: u64,
}

/// One simulation to run: a group point plus the mechanism to apply
/// (`Mechanism::Baseline` marks the group's shared baseline job).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Index into [`SweepPlan::groups`].
    pub group: usize,
    /// Mechanism this job simulates.
    pub mechanism: Mechanism,
}

/// The planned job list for a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPlan {
    /// All (predictor, interval, case, seed) groups, grid order.
    pub groups: Vec<JobGroup>,
    /// All jobs; group-major, the baseline job first within each group.
    pub jobs: Vec<Job>,
}

impl SweepPlan {
    /// Number of planned baseline simulations.
    pub fn baseline_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.mechanism == Mechanism::Baseline)
            .count()
    }

    /// Job index of the `(group, mechanism)` pair given the series count
    /// (`mech_index = None` addresses the baseline job).
    pub(crate) fn job_index(
        &self,
        group: usize,
        mech_index: Option<usize>,
        series: usize,
    ) -> usize {
        group * (series + 1) + mech_index.map_or(0, |m| m + 1)
    }
}

/// Plans the deduplicated job list for `spec`.
///
/// Group seeds are `SplitMix64::derive(master_seed, case · S + replica)`:
/// pure in the spec (re-planning yields the identical plan), distinct
/// across (case, replica) pairs, and shared across the interval and
/// predictor axes so those columns compare like against like.
pub fn plan(spec: &SweepSpec) -> SweepPlan {
    let mechs = spec.series_mechanisms();
    let (i_len, c_len, s_len) = (spec.intervals.len(), spec.cases.len(), spec.seeds as usize);
    let mut groups = Vec::with_capacity(spec.predictors.len() * i_len * c_len * s_len);
    let mut jobs = Vec::with_capacity(groups.capacity() * (mechs.len() + 1));
    for &predictor in &spec.predictors {
        for &interval in &spec.intervals {
            for case_index in 0..c_len {
                for seed_index in 0..s_len {
                    let stream = (case_index * s_len + seed_index) as u64;
                    groups.push(JobGroup {
                        predictor,
                        interval,
                        case_index,
                        seed_index: seed_index as u32,
                        seed: SplitMix64::derive(spec.master_seed, stream),
                    });
                    let group = groups.len() - 1;
                    jobs.push(Job {
                        group,
                        mechanism: Mechanism::Baseline,
                    });
                    for &mechanism in &mechs {
                        jobs.push(Job { group, mechanism });
                    }
                }
            }
        }
    }
    SweepPlan { groups, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig07_style_spec() -> SweepSpec {
        // M = 2 mechanisms, I = 3 intervals, C = 12 cases, S = 1 seed.
        SweepSpec::single("fig07")
            .with_mechanisms(vec![Mechanism::xor_btb(), Mechanism::noisy_xor_btb()])
    }

    #[test]
    fn job_count_is_m_plus_one_per_group_not_two_m() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        let (m, i, c, s) = (2usize, 3usize, 12usize, 1usize);
        assert_eq!(plan.groups.len(), i * c * s);
        // The old per-series runners simulated 2·M·I·C·S = 144; the planner
        // schedules (M+1)·I·C·S = 108.
        assert_eq!(plan.jobs.len(), (m + 1) * i * c * s);
        assert!(plan.jobs.len() < 2 * m * i * c * s);
    }

    #[test]
    fn exactly_one_baseline_per_group() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        assert_eq!(plan.baseline_jobs(), plan.groups.len());
        for (g, _) in plan.groups.iter().enumerate() {
            let in_group: Vec<&Job> = plan.jobs.iter().filter(|j| j.group == g).collect();
            assert_eq!(
                in_group
                    .iter()
                    .filter(|j| j.mechanism == Mechanism::Baseline)
                    .count(),
                1,
                "group {g}"
            );
            assert_eq!(in_group.len(), 3);
        }
    }

    #[test]
    fn explicit_baseline_in_spec_is_not_duplicated() {
        let spec = SweepSpec::single("x")
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::CompleteFlush]);
        let plan = plan(&spec);
        assert_eq!(plan.jobs.len(), 2 * plan.groups.len());
    }

    #[test]
    fn planning_is_deterministic() {
        let spec = fig07_style_spec();
        assert_eq!(plan(&spec), plan(&spec));
    }

    #[test]
    fn group_seeds_are_keyed_by_case_and_replica_only() {
        // Two predictors × three intervals so both shared axes are present.
        let spec =
            fig07_style_spec().with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL]);
        let plan = plan(&spec);
        let mut by_case: std::collections::BTreeMap<(usize, u32), u64> =
            std::collections::BTreeMap::new();
        for g in &plan.groups {
            // Same (case, replica) ⇒ same stream across intervals and
            // predictors; first sighting registers the seed.
            let seed = *by_case
                .entry((g.case_index, g.seed_index))
                .or_insert(g.seed);
            assert_eq!(g.seed, seed, "case {} stream differs", g.case_index);
        }
        // Distinct (case, replica) pairs get pairwise distinct seeds.
        let distinct: std::collections::BTreeSet<u64> = by_case.values().copied().collect();
        assert_eq!(distinct.len(), by_case.len());
    }

    #[test]
    fn job_index_addresses_plan_order() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        let series = spec.series_mechanisms().len();
        for (g, _) in plan.groups.iter().enumerate() {
            let b = plan.job_index(g, None, series);
            assert_eq!(plan.jobs[b].group, g);
            assert_eq!(plan.jobs[b].mechanism, Mechanism::Baseline);
            for (mi, &m) in spec.series_mechanisms().iter().enumerate() {
                let idx = plan.job_index(g, Some(mi), series);
                assert_eq!(plan.jobs[idx].group, g);
                assert_eq!(plan.jobs[idx].mechanism, m);
            }
        }
    }

    #[test]
    fn master_seed_changes_every_group_seed() {
        let a = plan(&fig07_style_spec());
        let b = plan(&fig07_style_spec().with_master_seed(1));
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_ne!(ga.seed, gb.seed);
        }
    }
}
